"""ADS construction benchmarks (Section 3 / Appendix B.2).

Times the three builders on the same workloads, verifies they emit
identical sketch sets, and reports the work counters (relaxations,
insertions, evictions) behind the O(km log n) analysis, plus the churn
saved by the (1+eps)-approximate LOCALUPDATES variant.

``test_csr_vs_legacy_build`` additionally races the legacy
adjacency-dict backend against the integer-ID CSR backend on an
all-nodes bottom-k build at n ~ 2000 (``REPRO_BENCH_CSR_N`` overrides),
verifies the sketches are identical, and persists the series to
``BENCH_csr.json`` at the repository root.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from conftest import write_output
from repro.ads import AdsIndex, BuildStats, build_ads_set
from repro.eval.reporting import render_table
from repro.graph import barabasi_albert_graph, random_geometric_graph
from repro.rand.hashing import HashFamily

UNWEIGHTED = barabasi_albert_graph(400, 3, seed=2)
WEIGHTED = random_geometric_graph(250, 0.15, seed=3)
FAMILY = HashFamily(77)
K = 8

CSR_BENCH_N = int(os.environ.get("REPRO_BENCH_CSR_N", "2000"))
REPO_ROOT = Path(__file__).parent.parent


@pytest.mark.parametrize("method", ["pruned_dijkstra", "dp", "local_updates"])
def test_build_unweighted(benchmark, method):
    stats = BuildStats()
    ads_set = benchmark(
        build_ads_set, UNWEIGHTED, K, family=FAMILY, method=method,
        stats=stats, backend="legacy",
    )
    assert len(ads_set) == UNWEIGHTED.num_nodes
    bound = 16 * K * UNWEIGHTED.num_edges * math.log(UNWEIGHTED.num_nodes)
    assert stats.relaxations < bound


@pytest.mark.parametrize("method", ["pruned_dijkstra", "local_updates"])
def test_build_weighted(benchmark, method):
    ads_set = benchmark(
        build_ads_set, WEIGHTED, K, family=FAMILY, method=method,
        backend="legacy",
    )
    assert len(ads_set) == WEIGHTED.num_nodes


def test_builders_identical_and_work_profile(benchmark):
    def run():
        profiles = {}
        outputs = {}
        for method in ("pruned_dijkstra", "dp", "local_updates"):
            stats = BuildStats()
            outputs[method] = build_ads_set(
                UNWEIGHTED, K, family=FAMILY, method=method, stats=stats,
                backend="legacy",
            )
            profiles[method] = stats
        return profiles, outputs

    profiles, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = outputs["pruned_dijkstra"]
    for method in ("dp", "local_updates"):
        for v in UNWEIGHTED.nodes():
            assert [
                (e.node, e.distance) for e in outputs[method][v].entries
            ] == [(e.node, e.distance) for e in reference[v].entries]
    text = render_table(
        f"ADS builder work profile (BA graph n={UNWEIGHTED.num_nodes}, "
        f"m={UNWEIGHTED.num_edges}, k={K}); identical outputs verified",
        "metric",
        ["relaxations", "insertions", "evictions"],
        {
            method: [
                profiles[method].relaxations,
                profiles[method].insertions,
                profiles[method].evictions,
            ]
            for method in profiles
        },
        precision=0,
    )
    write_output("table_builders_profile.txt", text)


def test_csr_vs_legacy_build(benchmark):
    """Acceptance series: all-nodes bottom-k build, legacy vs CSR.

    The CSR flat path (``AdsIndex.build``) must be at least 3x faster
    than the legacy PRUNEDDIJKSTRA build at n ~ 2000 while producing
    identical sketches; the full timing series lands in BENCH_csr.json.
    """
    graph = barabasi_albert_graph(CSR_BENCH_N, 3, seed=42)
    csr = graph.to_csr()

    def best_of(rounds, fn):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            timings.append(time.perf_counter() - start)
        return min(timings), result

    def run():
        t_legacy_pd, legacy = best_of(
            2,
            lambda: build_ads_set(
                graph, K, family=FAMILY, method="pruned_dijkstra",
                backend="legacy",
            ),
        )
        t_legacy_auto, _ = best_of(
            2, lambda: build_ads_set(graph, K, family=FAMILY, backend="legacy")
        )
        t_csr_ads, csr_ads = best_of(
            2, lambda: build_ads_set(csr, K, family=FAMILY)
        )
        t_index, index = best_of(
            2, lambda: AdsIndex.build(csr, K, family=FAMILY)
        )
        return (
            legacy, csr_ads, index,
            {
                "legacy_pruned_dijkstra": t_legacy_pd,
                "legacy_auto": t_legacy_auto,
                "csr_build_ads_set": t_csr_ads,
                "csr_ads_index": t_index,
            },
        )

    legacy, csr_ads, index, timings = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    identical = all(
        [(e.node, e.distance, e.rank) for e in legacy[v].entries]
        == [(e.node, e.distance, e.rank) for e in csr_ads[v].entries]
        and legacy[v].cardinality_at(3.0) == index.node_cardinality_at(v, 3.0)
        for v in list(legacy)[:: max(1, CSR_BENCH_N // 50)]
    )
    assert identical

    series = {
        "benchmark": "all-nodes bottom-k ADS build, legacy vs CSR backend",
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "k": K,
        "graph": f"barabasi_albert_graph({CSR_BENCH_N}, 3, seed=42)",
        "timings_seconds": timings,
        "speedup_index_vs_legacy_pd": (
            timings["legacy_pruned_dijkstra"] / timings["csr_ads_index"]
        ),
        "speedup_index_vs_legacy_auto": (
            timings["legacy_auto"] / timings["csr_ads_index"]
        ),
        "speedup_ads_set_vs_legacy_pd": (
            timings["legacy_pruned_dijkstra"] / timings["csr_build_ads_set"]
        ),
        "identical_outputs": identical,
    }
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_csr.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_csr.json", payload)

    # Wall-clock ratios are only asserted at the full acceptance size;
    # scaled-down smoke runs (CI shared runners) just record the series,
    # and REPRO_BENCH_NO_ASSERT=1 opts out on loaded/throttled machines.
    if CSR_BENCH_N >= 2000 and os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        assert series["speedup_index_vs_legacy_pd"] >= 3.0
        assert series["speedup_index_vs_legacy_auto"] >= 1.5


def test_approximate_ads_reduces_churn(benchmark):
    def run():
        rows = []
        for eps in (0.0, 0.25, 1.0):
            stats = BuildStats()
            build_ads_set(
                WEIGHTED, K, family=FAMILY, method="local_updates",
                epsilon=eps, stats=stats,
            )
            rows.append((eps, stats.insertions, stats.evictions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "(1+eps)-approximate LOCALUPDATES churn (Section 3)",
        "eps",
        [r[0] for r in rows],
        {
            "insertions": [r[1] for r in rows],
            "evictions": [r[2] for r in rows],
        },
        precision=0,
    )
    write_output("table_approximate_churn.txt", text)
    assert rows[-1][1] <= rows[0][1]  # churn shrinks with eps
