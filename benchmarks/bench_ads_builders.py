"""ADS construction benchmarks (Section 3 / Appendix B.2).

Times the three builders on the same workloads, verifies they emit
identical sketch sets, and reports the work counters (relaxations,
insertions, evictions) behind the O(km log n) analysis, plus the churn
saved by the (1+eps)-approximate LOCALUPDATES variant.
"""

import math

import pytest

from conftest import write_output
from repro.ads import BuildStats, build_ads_set
from repro.eval.reporting import render_table
from repro.graph import barabasi_albert_graph, random_geometric_graph
from repro.rand.hashing import HashFamily

UNWEIGHTED = barabasi_albert_graph(400, 3, seed=2)
WEIGHTED = random_geometric_graph(250, 0.15, seed=3)
FAMILY = HashFamily(77)
K = 8


@pytest.mark.parametrize("method", ["pruned_dijkstra", "dp", "local_updates"])
def test_build_unweighted(benchmark, method):
    stats = BuildStats()
    ads_set = benchmark(
        build_ads_set, UNWEIGHTED, K, family=FAMILY, method=method,
        stats=stats,
    )
    assert len(ads_set) == UNWEIGHTED.num_nodes
    bound = 16 * K * UNWEIGHTED.num_edges * math.log(UNWEIGHTED.num_nodes)
    assert stats.relaxations < bound


@pytest.mark.parametrize("method", ["pruned_dijkstra", "local_updates"])
def test_build_weighted(benchmark, method):
    ads_set = benchmark(
        build_ads_set, WEIGHTED, K, family=FAMILY, method=method
    )
    assert len(ads_set) == WEIGHTED.num_nodes


def test_builders_identical_and_work_profile(benchmark):
    def run():
        profiles = {}
        outputs = {}
        for method in ("pruned_dijkstra", "dp", "local_updates"):
            stats = BuildStats()
            outputs[method] = build_ads_set(
                UNWEIGHTED, K, family=FAMILY, method=method, stats=stats
            )
            profiles[method] = stats
        return profiles, outputs

    profiles, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = outputs["pruned_dijkstra"]
    for method in ("dp", "local_updates"):
        for v in UNWEIGHTED.nodes():
            assert [
                (e.node, e.distance) for e in outputs[method][v].entries
            ] == [(e.node, e.distance) for e in reference[v].entries]
    text = render_table(
        f"ADS builder work profile (BA graph n={UNWEIGHTED.num_nodes}, "
        f"m={UNWEIGHTED.num_edges}, k={K}); identical outputs verified",
        "metric",
        ["relaxations", "insertions", "evictions"],
        {
            method: [
                profiles[method].relaxations,
                profiles[method].insertions,
                profiles[method].evictions,
            ]
            for method in profiles
        },
        precision=0,
    )
    write_output("table_builders_profile.txt", text)


def test_approximate_ads_reduces_churn(benchmark):
    def run():
        rows = []
        for eps in (0.0, 0.25, 1.0):
            stats = BuildStats()
            build_ads_set(
                WEIGHTED, K, family=FAMILY, method="local_updates",
                epsilon=eps, stats=stats,
            )
            rows.append((eps, stats.insertions, stats.evictions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "(1+eps)-approximate LOCALUPDATES churn (Section 3)",
        "eps",
        [r[0] for r in rows],
        {
            "insertions": [r[1] for r in rows],
            "evictions": [r[2] for r in rows],
        },
        precision=0,
    )
    write_output("table_approximate_churn.txt", text)
    assert rows[-1][1] <= rows[0][1]  # churn shrinks with eps
