"""Cluster serving benchmark (ISSUE 8 acceptance series).

The cluster tier's reason to exist is horizontal scaling: a batch
query scattered over N shard *worker processes* should complete
faster than the same batch against one process, because each worker
sweeps only its own node range on its own core.  This bench measures
that with real worker subprocesses (``python -m repro serve
--cluster START:STOP``) -- in-process workers would share one GIL and
could never show it -- fronted by an in-process
:class:`~repro.serve.cluster.RouterServer`.

Series persisted to ``BENCH_cluster.json``:

* ``single_server`` -- the no-router baseline: one worker process
  serving the full index, driven directly.
* ``cluster_1w`` / ``cluster_2w`` -- the same workload through the
  router over 1 and 2 shard workers.  Both worker counts run the
  identical range-sweep code path (the 1-worker cluster also gets an
  explicit node range), so the ratio isolates *fan-out parallelism*
  from per-node-vs-batch kernel differences.
* ``scaling.batch_speedup_2w_vs_1w`` -- the regression-gated ratio:
  batch-query throughput with 2 workers over 1 worker.  Gated only on
  multi-core machines (``cpu_count`` is recorded for the gate's
  single-core skip).
* ``router_overhead`` -- single-node request-response qps through the
  router over the direct-to-worker baseline (the price of a hop).

``REPRO_BENCH_CLUSTER_N`` (default 2000) scales the graph;
``REPRO_BENCH_NO_ASSERT=1`` opts out of hard assertions on loaded
machines.
"""

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.ads.index import shard_ranges
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import QueryClient, RouterServer

CLUSTER_BENCH_N = int(os.environ.get("REPRO_BENCH_CLUSTER_N", "2000"))
K = 8
FAMILY = HashFamily(77)
BATCH_SIZE = 200
BATCH_ROUNDS = 12
SINGLE_QUERIES = 300
REPO_ROOT = Path(__file__).parent.parent
_URL_LINE = re.compile(r"on (http://[\d.:]+)")


class _Worker:
    """One real ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, index_path, node_range=None):
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--index", str(index_path), "--port", "0", "--threads", "4",
        ]
        if node_range is not None:
            start, stop = node_range
            argv += ["--cluster", f"{start}:{'' if stop is None else stop}"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self.proc = subprocess.Popen(
            argv, stderr=subprocess.PIPE, text=True, env=env
        )
        banner = self.proc.stderr.readline()
        found = _URL_LINE.search(banner)
        if not found:
            self.proc.terminate()
            raise RuntimeError(f"worker failed to start: {banner!r}")
        self.url = found.group(1)

    def close(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()


def _batch_qps(url, nodes):
    """Scatter/merge throughput: node-queries/sec over batch POSTs."""
    with QueryClient(url, wire_mode="binary") as client:
        chunk = nodes[:BATCH_SIZE]
        client.cardinality_batch(chunk, d=3.0)  # warm every shard
        start = time.perf_counter()
        for i in range(BATCH_ROUNDS):
            lo = (i * BATCH_SIZE) % len(nodes)
            chunk = (nodes + nodes)[lo:lo + BATCH_SIZE]
            client.cardinality_batch(chunk, d=3.0)
        elapsed = time.perf_counter() - start
    return {
        "requests": BATCH_ROUNDS,
        "batch_size": BATCH_SIZE,
        "seconds": elapsed,
        "node_queries_per_second": BATCH_ROUNDS * BATCH_SIZE / elapsed,
    }


def _sweep_seconds(url):
    """One uncached whole-graph closeness sweep, fanned and merged."""
    with QueryClient(url, wire_mode="binary") as client:
        start = time.perf_counter()
        client.closeness(kind="harmonic")
        return time.perf_counter() - start


def _single_qps(url, nodes):
    with QueryClient(url, wire_mode="binary") as client:
        client.cardinality(node=nodes[0], d=3.0)  # warm
        start = time.perf_counter()
        for i in range(SINGLE_QUERIES):
            client.cardinality(node=nodes[i % len(nodes)], d=3.0)
        elapsed = time.perf_counter() - start
    return {
        "queries": SINGLE_QUERIES,
        "seconds": elapsed,
        "queries_per_second": SINGLE_QUERIES / elapsed,
    }


def _cluster_run(index, index_path, workers, nodes):
    """Spin *workers* shard subprocesses + a router, run the drivers."""
    ranges = [
        (start, None if i == workers - 1 else stop)
        for i, (start, stop) in enumerate(
            shard_ranges(index.num_nodes, workers)
        )
    ]
    procs = [_Worker(index_path, node_range=r) for r in ranges]
    router = RouterServer(
        index.nodes(),
        [(r, [w.url]) for r, w in zip(ranges, procs)],
        cache_size=0,
    )
    router.start()
    try:
        return {
            "workers": workers,
            "batch": _batch_qps(router.url, nodes),
            "sweep_closeness_seconds": _sweep_seconds(router.url),
            "single_node": _single_qps(router.url, nodes),
        }
    finally:
        router.shutdown()
        for worker in procs:
            worker.close()


def test_cluster_scaling(benchmark, tmp_path):
    graph = barabasi_albert_graph(CLUSTER_BENCH_N, 3, seed=42)
    index = AdsIndex.build(graph.to_csr(), K, family=FAMILY)
    index_path = tmp_path / "bench.adsidx"
    index.save(index_path)
    nodes = list(range(graph.num_nodes))

    def run():
        series = {}
        # Baseline: one full-index worker process, no router hop.
        baseline = _Worker(index_path)
        try:
            series["single_server"] = {
                "batch": _batch_qps(baseline.url, nodes),
                "single_node": _single_qps(baseline.url, nodes),
            }
        finally:
            baseline.close()
        series["cluster_1w"] = _cluster_run(
            index, index_path, 1, nodes
        )
        series["cluster_2w"] = _cluster_run(
            index, index_path, 2, nodes
        )
        batch_1w = series["cluster_1w"]["batch"][
            "node_queries_per_second"
        ]
        batch_2w = series["cluster_2w"]["batch"][
            "node_queries_per_second"
        ]
        series["scaling"] = {
            # The gated ratio: same router, same range-sweep code
            # path, only the worker count changes.
            "batch_speedup_2w_vs_1w": batch_2w / batch_1w,
            "sweep_speedup_2w_vs_1w": (
                series["cluster_1w"]["sweep_closeness_seconds"]
                / series["cluster_2w"]["sweep_closeness_seconds"]
            ),
        }
        series["router_overhead"] = {
            "single_node_qps_ratio": (
                series["cluster_1w"]["single_node"][
                    "queries_per_second"
                ]
                / series["single_server"]["single_node"][
                    "queries_per_second"
                ]
            ),
        }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    series.update({
        "benchmark": (
            "sharded cluster serving: fan-out scaling over real "
            "worker processes"
        ),
        "n": graph.num_nodes,
        "k": K,
        "cpu_count": os.cpu_count(),
    })
    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        # The cluster must answer correctly whatever the speedup; the
        # scaling ratio itself is enforced by the regression gate
        # (skipped on single-core machines), not a hard assert here.
        assert series["scaling"]["batch_speedup_2w_vs_1w"] > 0.0
    payload = json.dumps(series, indent=2, sort_keys=True)
    (REPO_ROOT / "BENCH_cluster.json").write_text(
        payload, encoding="utf-8"
    )
    write_output("BENCH_cluster.json", payload)
    print(payload)
