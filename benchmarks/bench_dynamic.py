"""Dynamic-maintenance benchmark (ISSUE 4 acceptance series).

The claim: absorbing a *small* edge batch with
:meth:`AdsIndex.apply_edges` must beat rebuilding the index from the
updated graph -- that is the entire point of incremental maintenance.
Measured on ``barabasi_albert_graph(REPRO_BENCH_DYN_N, 3)`` (default
1500 nodes) for a sweep of batch sizes; each point times

* ``incremental``: one ``apply_edges`` call on a fresh copy of the
  built index (the graph mutation included), and
* ``rebuild``: ``AdsIndex.build`` on the updated graph (the edge
  insertion itself excluded -- rebuild gets the cheapest possible
  accounting),

and records the speedup plus the dirty-node fraction that explains it
(the incremental path only rewrites the sketches the batch touched).
The series lands in ``BENCH_dynamic.json`` at the repository root and
is tracked by the CI bench-regression gate.  ``REPRO_BENCH_NO_ASSERT=1``
opts out of the hard assertions on loaded or throttled machines.
"""

import json
import os
import random
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

DYN_BENCH_N = int(os.environ.get("REPRO_BENCH_DYN_N", "1500"))
K = 8
FAMILY = HashFamily(2024)
BATCH_SIZES = (1, 8, 32, 128)
REPO_ROOT = Path(__file__).parent.parent


def _random_batch(rng, n, size):
    batch = []
    while len(batch) < size:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            batch.append((u, v))
    return batch


def _fresh_state(base_edges, nodes):
    graph = CSRGraph.from_edges(base_edges, directed=False, nodes=nodes)
    index = AdsIndex.build(graph, K, family=FAMILY)
    return graph, index


def test_incremental_apply_vs_rebuild(benchmark):
    base = barabasi_albert_graph(DYN_BENCH_N, 3, seed=7)
    base_edges = list(base.edges())
    nodes = base.nodes()
    rng = random.Random(13)

    def run():
        series = {"batches": []}
        build_start = time.perf_counter()
        graph, index = _fresh_state(base_edges, nodes)
        build_seconds = time.perf_counter() - build_start
        series["initial_build_seconds"] = build_seconds
        for size in BATCH_SIZES:
            batch = _random_batch(rng, graph.num_nodes, size)

            graph_inc, index_inc = _fresh_state(base_edges, nodes)
            start = time.perf_counter()
            result = index_inc.apply_edges(graph_inc, batch)
            incremental = time.perf_counter() - start

            updated_edges = list(graph_inc.edges())
            rebuild_graph = CSRGraph.from_edges(
                updated_edges, directed=False, nodes=graph_inc.nodes()
            )
            start = time.perf_counter()
            rebuilt = AdsIndex.build(rebuild_graph, K, family=FAMILY)
            rebuild = time.perf_counter() - start

            assert (
                index_inc.cardinality_at() == rebuilt.cardinality_at()
            ), "incremental apply diverged from the rebuild"
            series["batches"].append({
                "batch_edges": size,
                "applied_arcs": result.applied_arcs,
                "dirty_nodes": result.dirty_nodes,
                "dirty_fraction": result.dirty_nodes / index_inc.num_nodes,
                "incremental_seconds": incremental,
                "rebuild_seconds": rebuild,
                "speedup": rebuild / incremental if incremental > 0
                else float("inf"),
            })
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    series.update({
        "benchmark": "incremental apply_edges vs full rebuild",
        "n": DYN_BENCH_N,
        "m": len(base_edges),
        "k": K,
        "graph": f"barabasi_albert_graph({DYN_BENCH_N}, 3, seed=7)",
        "cpu_count": os.cpu_count() or 1,
        "note": (
            "each batch point mutates a fresh copy of the built index; "
            "rebuild times exclude the graph mutation itself"
        ),
    })
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_dynamic.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_dynamic.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        # Small batches are where incremental maintenance must win.
        for point in series["batches"]:
            if point["batch_edges"] <= 32:
                assert point["speedup"] > 1.0, (
                    f"batch of {point['batch_edges']}: incremental "
                    f"({point['incremental_seconds']:.3f}s) did not beat "
                    f"rebuild ({point['rebuild_seconds']:.3f}s)"
                )
        assert series["batches"][0]["speedup"] >= 5.0
