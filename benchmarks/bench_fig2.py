"""Figure 2: NRMSE and MRE of neighborhood-cardinality estimators.

Regenerates all six panels (NRMSE and MRE for k in {5, 10, 50}) at a
scaled-down run count, checks the paper's qualitative shape claims, and
persists the series.  Paper parameters: runs = {1000, 500, 250},
max n = {10^4, 10^4, 5*10^4}.
"""

import numpy as np
import pytest

from conftest import scaled_runs, write_output
from repro.eval.fig2 import Fig2Config, run_figure2
from repro.eval.reporting import render_table

PANELS = {
    5: dict(paper_runs=1000, max_n=10_000),
    10: dict(paper_runs=500, max_n=10_000),
    50: dict(paper_runs=250, max_n=50_000),
}


def _run_panel(k: int):
    spec = PANELS[k]
    config = Fig2Config(
        k=k,
        runs=scaled_runs(spec["paper_runs"]),
        max_n=spec["max_n"],
        seed=k,
    )
    return run_figure2(config)


def _check_and_write(result) -> None:
    k = result.config.k
    cp = result.checkpoints
    for metric_name, series in (("nrmse", result.nrmse), ("mre", result.mre)):
        text = render_table(
            f"Figure 2 ({metric_name.upper()}), k={k}, "
            f"runs={result.config.runs}, max_n={result.config.max_n}",
            "size",
            cp,
            {name: series[name] for name in series},
            notes=(
                f"reference lines: basic CV {result.references['basic_cv_ub']:.4f}, "
                f"HIP CV {result.references['hip_cv_ub']:.4f}, "
                f"basic MRE {result.references['basic_mre_ub']:.4f}, "
                f"HIP MRE {result.references['hip_mre_ref']:.4f}"
            ),
        )
        write_output(f"fig2_k{k}_{metric_name}.txt", text)

    # Shape assertions (the reproduction criteria from DESIGN.md).
    large = [j for j, c in enumerate(cp) if c >= 50 * k]
    hip = np.mean([result.nrmse["bottomk_hip"][j] for j in large])
    basic = np.mean([result.nrmse["bottomk_basic"][j] for j in large])
    perm = np.mean([result.nrmse["permutation"][j] for j in large])
    assert hip < basic, "HIP must beat the basic estimator at large n"
    assert perm <= hip * 1.15, "permutation must track or beat HIP"
    below_k = [j for j, c in enumerate(cp) if c < k]
    assert all(
        result.nrmse["bottomk_basic"][j] == 0.0 for j in below_k
    ), "bottom-k basic must be exact below k"


@pytest.mark.parametrize("k", sorted(PANELS))
def test_fig2_panel(benchmark, k):
    result = benchmark.pedantic(_run_panel, args=(k,), rounds=1, iterations=1)
    _check_and_write(result)
