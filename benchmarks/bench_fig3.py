"""Figure 3: HIP vs HyperLogLog distinct counting on the same sketch.

Regenerates all six panels (NRMSE and MRE for k in {16, 32, 64}) with
5-bit registers.  Paper parameters: runs = {5000, 5000, 2000},
max cardinality 10^6; scaled via REPRO_BENCH_SCALE / REPRO_BENCH_MAXN_FIG3.
"""

import numpy as np
import pytest

from conftest import fig3_max_n, scaled_runs, write_output
from repro.eval.fig3 import Fig3Config, run_figure3
from repro.eval.reporting import render_table

PANELS = {16: 5000, 32: 5000, 64: 2000}


def _run_panel(k: int):
    config = Fig3Config(
        k=k,
        runs=scaled_runs(PANELS[k]),
        max_n=fig3_max_n(),
        seed=k,
    )
    return run_figure3(config)


def _check_and_write(result) -> None:
    k = result.config.k
    cp = result.checkpoints
    for metric_name, series in (("nrmse", result.nrmse), ("mre", result.mre)):
        text = render_table(
            f"Figure 3 ({metric_name.upper()}), k={k}, "
            f"runs={result.config.runs}, max_n={result.config.max_n}, "
            "5-bit registers",
            "card",
            cp,
            {name: series[name] for name in series},
            notes=(
                "references: HIP base-2 CV "
                f"{result.references['hip_base2_cv']:.4f}, "
                f"HLL 1.08/sqrt(k) = {result.references['hll_reference']:.4f}"
            ),
        )
        write_output(f"fig3_k{k}_{metric_name}.txt", text)

    large = [j for j, c in enumerate(cp) if c >= result.config.max_n // 20]
    hip = np.mean([result.nrmse["hip"][j] for j in large])
    hll = np.mean([result.nrmse["hll"][j] for j in large])
    assert hip < hll, "HIP must beat bias-corrected HLL at large n"
    assert hip == pytest.approx(
        result.references["hip_base2_cv"], rel=0.35
    ), "HIP error must track the analytic sqrt((1+b)/(4(k-1))) line"
    small = [j for j, c in enumerate(cp) if c <= 3]
    raw_small = np.mean([result.nrmse["hll_raw"][j] for j in small])
    assert raw_small > 3 * hip, "raw HLL must show its small-n blowup"


@pytest.mark.parametrize("k", sorted(PANELS))
def test_fig3_panel(benchmark, k):
    result = benchmark.pedantic(_run_panel, args=(k,), rounds=1, iterations=1)
    _check_and_write(result)
