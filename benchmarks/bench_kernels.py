"""Kernel-backend benchmark (ISSUE 5 acceptance series).

The claim: the NumPy estimator kernel answers *batch* queries >= 10x
faster than the pure-Python reference loops at serving scale
(``REPRO_BENCH_KERN_N`` nodes, default 5000; k=8), in both load modes
that matter -- an eager in-memory index and the memory-mapped sharded
layout ``repro serve`` uses for big indexes.  Both backends are timed
on the *same persisted sketch set* (bit-identical answers, asserted),
steady-state: one warmup query materialises the cum-hip prefix column
and the kernel views, exactly like a serving daemon after its first
request.

Headline metrics (tracked by the CI regression gate):

* ``speedups.closeness_batch_eager`` / ``..._mmap`` -- the all-nodes
  harmonic-centrality sweep, the hottest pure-Python loop in the repo
  (one Python-level ``alpha`` call per entry; the NumPy kernel calls
  it once per distinct distance).
* ``speedups.cardinality_batch_mmap`` -- the all-nodes n_d sweep on
  the sharded layout, where the pure path pays a Python-level
  ``ShardedColumn`` access per bisect probe.

``cardinality_batch_eager`` is reported but not held to 10x: the pure
path there is already a C-level ``bisect`` per node, so vectorising
buys ~2-4x, not an order of magnitude -- the honest number is in the
series.  ``REPRO_BENCH_NO_ASSERT=1`` opts out of the hard assertions
on loaded or throttled machines.

The ``parallel`` block is the worker-scaling series for the
shard-parallel kernel tier (ISSUE 6): each batch kernel timed at
1/2/4/max(cpu) workers per load mode, with speedup-vs-serial and
parallel efficiency (speedup / workers).  Its tracked gate metric,
``parallel.peak_speedup_vs_serial``, is only meaningful on multi-core
runners -- ``check_regression.py`` skips it (with a notice) when the
fresh series reports ``cpu_count == 1``.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from conftest import write_output
from repro.ads import AdsIndex, kernels
from repro.estimators.statistics import harmonic_kernel
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily

KERN_BENCH_N = int(os.environ.get("REPRO_BENCH_KERN_N", "5000"))
K = 8
SHARDS = 8
FAMILY = HashFamily(2024)
REPO_ROOT = Path(__file__).parent.parent
# Worker-scaling series: 1 (serial reference), 2, 4, and every core.
WORKER_SERIES = sorted({1, 2, 4, os.cpu_count() or 1})


def _best_of(fn, rounds=3):
    fn()  # warmup: cum-hip, kernel views, unique-distance cache
    best = math.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_mode(load):
    """Time both backends over one persisted index; returns the series."""
    py = load("python")
    np_ = load("numpy")
    assert py.cardinality_at(2.0) == np_.cardinality_at(2.0)
    alpha = harmonic_kernel()
    mode = {}
    for metric, run in (
        ("cardinality_batch", lambda ix: ix.cardinality_at(2.0)),
        ("closeness_batch", lambda ix: ix.closeness_centrality(alpha=alpha)),
        ("closeness_classic", lambda ix: ix.closeness_centrality(
            classic=True)),
        ("neighborhood", lambda ix: ix.neighborhood_function()),
        ("cum_hip_recompute", lambda ix: ix._compute_cum_hip()),
    ):
        python_seconds = _best_of(lambda: run(py))
        numpy_seconds = _best_of(lambda: run(np_))
        mode[metric] = {
            "python_seconds": python_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": (
                python_seconds / numpy_seconds
                if numpy_seconds > 0 else float("inf")
            ),
        }
    return mode


def _measure_scaling(load, backend, metrics):
    """Worker-scaling series for one load mode and backend.

    ``load(backend, workers)`` must return a freshly loaded index.
    Serial (workers=1) is the reference; fanned results are asserted
    bit-identical to it before any timing counts.
    """
    alpha = harmonic_kernel()
    runs = {
        "cardinality_batch": lambda ix: ix.cardinality_at(2.0),
        "closeness_batch": lambda ix: ix.closeness_centrality(alpha=alpha),
        "neighborhood": lambda ix: ix.neighborhood_function(),
        "cum_hip_recompute": lambda ix: ix._compute_cum_hip(),
    }
    serial_index = load(backend, 1)
    fanned_index = load(backend, WORKER_SERIES[-1])
    assert serial_index.cardinality_at(2.0) == \
        fanned_index.cardinality_at(2.0)
    series = {}
    for metric in metrics:
        run = runs[metric]
        seconds = {}
        for workers in WORKER_SERIES:
            index = load(backend, workers)
            seconds[str(workers)] = _best_of(lambda: run(index))
        serial = seconds["1"]
        series[metric] = {
            "seconds": seconds,
            "speedup_vs_serial": {
                w: (serial / s if s > 0 else float("inf"))
                for w, s in seconds.items()
            },
            "efficiency": {
                w: (
                    serial / (s * int(w)) if s > 0 else float("inf")
                )
                for w, s in seconds.items()
                if int(w) > 1
            },
        }
    return series


def test_kernel_backends(benchmark, tmp_path):
    if not kernels.numpy_available():
        pytest.skip("NumPy not installed; nothing to compare against")

    graph = barabasi_albert_graph(KERN_BENCH_N, 3, seed=7).to_csr()
    built = AdsIndex.build(graph, K, family=FAMILY, backend="python")
    single = tmp_path / "kernels.adsidx"
    sharded = tmp_path / "kernels-sharded"
    built.save(single)
    built.save(sharded, shards=SHARDS)

    def load_eager(backend, workers=1):
        return AdsIndex.load(
            single, backend=backend, kernel_workers=workers
        )

    def load_sharded(backend, workers=1):
        return AdsIndex.load(
            sharded, mmap=True, backend=backend, kernel_workers=workers
        )

    def run():
        return {
            "eager": _measure_mode(load_eager),
            "mmap_sharded": _measure_mode(load_sharded),
        }

    modes = benchmark.pedantic(run, rounds=1, iterations=1)

    batch_metrics = (
        "cardinality_batch", "closeness_batch", "neighborhood",
        "cum_hip_recompute",
    )
    parallel = {
        "workers_series": WORKER_SERIES,
        "cpu_count": os.cpu_count() or 1,
        # The serving default: NumPy kernel, thread pool.
        "eager_numpy": _measure_scaling(load_eager, "numpy", batch_metrics),
        "mmap_sharded_numpy": _measure_scaling(
            load_sharded, "numpy", batch_metrics
        ),
        # The pure kernel's process-pool path over re-mmapped shards
        # (one metric keeps the pure sweep affordable at bench scale).
        "mmap_sharded_python": _measure_scaling(
            load_sharded, "python", ("closeness_batch",)
        ),
    }
    parallel["peak_speedup_vs_serial"] = max(
        speedup
        for key in ("eager_numpy", "mmap_sharded_numpy",
                    "mmap_sharded_python")
        for metric_series in parallel[key].values()
        for w, speedup in metric_series["speedup_vs_serial"].items()
        if w != "1"
    )
    import numpy

    series = {
        "benchmark": "estimator kernels: numpy vs pure-python batch queries",
        "n": KERN_BENCH_N,
        "m": graph.num_edges,
        "k": K,
        "entries": built.num_entries,
        "shards": SHARDS,
        "numpy_version": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "graph": f"barabasi_albert_graph({KERN_BENCH_N}, 3, seed=7)",
        "modes": modes,
        "parallel": parallel,
        "speedups": {
            "cardinality_batch_eager":
                modes["eager"]["cardinality_batch"]["speedup"],
            "cardinality_batch_mmap":
                modes["mmap_sharded"]["cardinality_batch"]["speedup"],
            "closeness_batch_eager":
                modes["eager"]["closeness_batch"]["speedup"],
            "closeness_batch_mmap":
                modes["mmap_sharded"]["closeness_batch"]["speedup"],
            "cum_hip_recompute_eager":
                modes["eager"]["cum_hip_recompute"]["speedup"],
        },
        "note": (
            "steady-state timings (warmed cum-hip/view caches, best of 3); "
            "closeness_batch is the harmonic sweep; eager cardinality is "
            "bisect-bound in C for the pure backend, so its speedup is "
            "honest but modest -- the >=10x batch-query claims are "
            "closeness (both modes) and cardinality on the sharded "
            "serving layout"
        ),
    }
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_kernels.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_kernels.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        speedups = series["speedups"]
        assert speedups["closeness_batch_eager"] >= 10.0, speedups
        assert speedups["closeness_batch_mmap"] >= 10.0, speedups
        assert speedups["cardinality_batch_mmap"] >= 10.0, speedups
        assert speedups["cardinality_batch_eager"] >= 1.2, speedups
        assert speedups["cum_hip_recompute_eager"] >= 3.0, speedups
        if (os.cpu_count() or 1) >= 4:
            # Fanning out must beat serial somewhere once there are
            # real cores; single/dual-core boxes only report the
            # series (the regression gate skips it at cpu_count==1).
            assert parallel["peak_speedup_vs_serial"] >= 1.2, parallel
