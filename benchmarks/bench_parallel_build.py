"""Sharded multi-process ADS build scaling (ISSUE 2 acceptance series).

Races ``AdsIndex.build(workers=w)`` for w in {1, 2, 4} against the plain
serial build on the acceptance workload (barabasi_albert_graph(2000, 3),
``REPRO_BENCH_PAR_N`` overrides), verifies every parallel result is
bit-identical to the serial index column-for-column, and persists the
scaling curve to ``BENCH_parallel.json`` at the repository root.

The >= 2x speedup assertion for workers=4 only applies when the machine
actually has 4+ cores (``os.cpu_count()``); on smaller machines the JSON
records ``speedup_capped_by_hardware`` so the cap is documented rather
than silently ignored.  ``REPRO_BENCH_NO_ASSERT=1`` opts out on loaded
or throttled machines, mirroring the CSR bench.
"""

import json
import os
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily

PAR_BENCH_N = int(os.environ.get("REPRO_BENCH_PAR_N", "2000"))
WORKER_SERIES = (1, 2, 4)
FAMILY = HashFamily(77)
K = 8
REPO_ROOT = Path(__file__).parent.parent


def _columns(index):
    return (
        index._offsets, index._node, index._dist, index._rank,
        index._tiebreak, index._aux, index._hip, index._cum_hip,
    )


def _best_of(rounds, fn):
    timings = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def test_parallel_build_scaling(benchmark):
    graph = barabasi_albert_graph(PAR_BENCH_N, 3, seed=42)
    csr = graph.to_csr()
    cpu_count = os.cpu_count() or 1

    def run():
        t_serial, serial = _best_of(
            2, lambda: AdsIndex.build(csr, K, family=FAMILY)
        )
        timings = {"serial": t_serial}
        identical = {}
        for workers in WORKER_SERIES:
            # Fixed shards=4 for every point so the shard/replay
            # overhead is constant and the curve isolates process
            # parallelism; workers=1 is the in-process sharded
            # pipeline, not a re-timing of the serial path.
            t_workers, index = _best_of(
                2,
                lambda w=workers: AdsIndex.build(
                    csr, K, family=FAMILY, workers=w, shards=4
                ),
            )
            timings[f"workers_{workers}"] = t_workers
            identical[f"workers_{workers}"] = (
                _columns(index) == _columns(serial)
            )
        return timings, identical

    timings, identical = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(identical.values()), identical

    speedup_4_vs_1 = timings["workers_1"] / timings["workers_4"]
    series = {
        "benchmark": "sharded multi-process ADS index build scaling",
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "k": K,
        "graph": f"barabasi_albert_graph({PAR_BENCH_N}, 3, seed=42)",
        "cpu_count": cpu_count,
        "timings_seconds": timings,
        "speedup_workers_4_vs_1": speedup_4_vs_1,
        "speedup_workers_2_vs_1": timings["workers_1"] / timings["workers_2"],
        "bit_identical_to_serial": identical,
        "speedup_capped_by_hardware": cpu_count < 4,
        "note": (
            "workers shard the candidate scans across processes (shards=4 "
            "at every point, so workers_1 is the in-process sharded "
            "pipeline and the curve isolates process parallelism) and "
            "merge by exact competition replay; with fewer than 4 physical "
            "cores the workers=4 run cannot reach the 2x acceptance "
            "speedup, which cpu_count documents"
        ),
    }
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_parallel.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_parallel.json", payload)

    # The scaling assertion needs the acceptance size, >= 4 cores to
    # scale onto, and an unloaded machine.
    if (
        PAR_BENCH_N >= 2000
        and cpu_count >= 4
        and os.environ.get("REPRO_BENCH_NO_ASSERT") != "1"
    ):
        assert speedup_4_vs_1 >= 2.0
