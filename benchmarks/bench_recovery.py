"""Durability-tier benchmark (ISSUE 10 acceptance series).

Three costs bound how cheap the crash-recovery machinery is allowed to
be:

* ``wal.update_overhead`` -- the per-batch price of durability: one
  fsync'd WAL append ahead of each ``apply_edges``, measured as the
  ratio of (append + apply) over plain apply.  Tracked lower-is-better
  as a collapse guard: the append must stay a small constant factor,
  never the dominant cost of an update.
* ``replay.throughput_vs_apply`` -- startup recovery speed: replaying
  N logged batches (scan + checksum + apply) against applying the same
  batches live.  Replay skips request parsing and label coercion
  (batches are logged post-coercion), so it must not fall behind the
  live path.  Tracked higher-is-better.
* ``resync.points`` -- self-healing latency vs index size: the full
  donor-snapshot -> install -> digest-verify -> flush round trip over
  real HTTP for a sweep of index sizes, with the snapshot/install
  split out.  Informational (wall times do not survive a change of
  machine), not gated.

Scale via ``REPRO_BENCH_RECOVERY_N`` (default 600 nodes) and
``REPRO_BENCH_RECOVERY_BATCHES`` (default 40 batches).  The series
lands in ``BENCH_recovery.json`` at the repository root and the two
ratios are tracked by the CI bench-regression gate.
``REPRO_BENCH_NO_ASSERT=1`` opts out of the hard assertions.
"""

import json
import os
import random
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.ads.wal import WriteAheadLog
from repro.graph import barabasi_albert_graph
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer
from repro.serve.membership import Replica

RECOVERY_N = int(os.environ.get("REPRO_BENCH_RECOVERY_N", "600"))
RECOVERY_BATCHES = int(
    os.environ.get("REPRO_BENCH_RECOVERY_BATCHES", "40")
)
K = 8
FAMILY = HashFamily(2024)
RESYNC_SIZES = (RECOVERY_N // 4, RECOVERY_N // 2, RECOVERY_N)
REPO_ROOT = Path(__file__).parent.parent


def _random_batches(rng, n, count, size=4):
    batches = []
    for _ in range(count):
        batch = []
        while len(batch) < size:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v))
        batches.append(batch)
    return batches


def _fresh_state(base_edges, nodes):
    graph = CSRGraph.from_edges(base_edges, directed=False, nodes=nodes)
    index = AdsIndex.build(graph, K, family=FAMILY)
    return graph, index


def _apply_all(graph, index, batches, wal=None):
    start = time.perf_counter()
    for batch in batches:
        if wal is not None:
            wal.append(batch)
        index.apply_edges(graph, batch)
    return time.perf_counter() - start


def test_wal_overhead_and_replay(benchmark, tmp_path):
    base = barabasi_albert_graph(RECOVERY_N, 3, seed=7)
    base_edges = list(base.edges())
    nodes = base.nodes()
    batches = _random_batches(
        random.Random(13), RECOVERY_N, RECOVERY_BATCHES
    )

    def run():
        # Plain updates: the price of an update with no durability.
        graph, index = _fresh_state(base_edges, nodes)
        plain = _apply_all(graph, index, batches)
        reference_digest = index.content_digest()

        # Durable updates: identical batches, one fsync'd append each.
        graph, index = _fresh_state(base_edges, nodes)
        wal = WriteAheadLog(tmp_path / "wal")
        walled = _apply_all(graph, index, batches, wal=wal)
        assert index.content_digest() == reference_digest
        wal.close()

        # Crash recovery: scan the log and replay every batch over a
        # fresh build (exactly what a restarting --wal-dir server does).
        graph, index = _fresh_state(base_edges, nodes)
        start = time.perf_counter()
        reopened = WriteAheadLog(tmp_path / "wal")
        records = reopened.pending()
        for record in records:
            index.apply_edges(graph, record.edges)
        replay = time.perf_counter() - start
        reopened.close()
        assert len(records) == len(batches)
        assert index.content_digest() == reference_digest

        return {
            "wal": {
                "batches": len(batches),
                "plain_apply_seconds": plain,
                "walled_apply_seconds": walled,
                "append_seconds_per_batch":
                    (walled - plain) / len(batches),
                "update_overhead": walled / plain if plain > 0
                else float("inf"),
            },
            "replay": {
                "replay_seconds": replay,
                "batches_per_second": len(records) / replay
                if replay > 0 else float("inf"),
                "throughput_vs_apply": plain / replay if replay > 0
                else float("inf"),
            },
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    series["resync"] = _resync_sweep()
    series.update({
        "benchmark": "WAL append overhead, replay throughput, "
        "resync latency",
        "n": RECOVERY_N,
        "k": K,
        "graph": f"barabasi_albert_graph({RECOVERY_N}, 3, seed=7)",
        "cpu_count": os.cpu_count() or 1,
        "note": (
            "update_overhead = durable/plain wall-time ratio over "
            f"{RECOVERY_BATCHES} 4-edge batches; resync points time "
            "the full HTTP snapshot->install->verify->flush round trip"
        ),
    })
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_recovery.json").write_text(
        payload, encoding="utf-8"
    )
    write_output("BENCH_recovery.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        # Durability must be a constant-factor tax, not the workload.
        assert series["wal"]["update_overhead"] < 10.0, (
            "fsync'd WAL appends dominate update cost: "
            f"{series['wal']['update_overhead']:.2f}x over plain apply"
        )
        # Replay re-runs the same kernels minus request handling; it
        # collapsing below half the live path means the scan went
        # quadratic or the log format got expensive to parse.
        assert series["replay"]["throughput_vs_apply"] > 0.5, (
            "WAL replay fell far behind live apply: "
            f"{series['replay']['throughput_vs_apply']:.2f}x"
        )


def _resync_sweep():
    """Time donor-snapshot -> install for a sweep of index sizes."""
    points = []
    for n in RESYNC_SIZES:
        base = barabasi_albert_graph(n, 3, seed=7)
        edges = list(base.edges())
        nodes = base.nodes()
        donor_graph, donor_index = _fresh_state(edges, nodes)
        stale_graph, stale_index = _fresh_state(edges, nodes)
        # The donor is ahead by one committed batch -- the exact state
        # a quarantined replica missed.
        donor_index.apply_edges(donor_graph, [(0, n - 1)])
        donor = AdsServer(donor_index, graph=donor_graph, threads=2)
        stale = AdsServer(stale_index, graph=stale_graph, threads=2)
        donor.start()
        stale.start()
        try:
            donor_rpc = Replica(donor.url)
            stale_rpc = Replica(stale.url)
            start = time.perf_counter()
            snapshot = donor_rpc.call("GET", "/sync/snapshot")
            snapshot_seconds = time.perf_counter() - start
            start = time.perf_counter()
            installed = stale_rpc.call(
                "POST", "/sync/install",
                payload={
                    "index_b64": snapshot["index_b64"],
                    "edges": snapshot["edges"],
                    "directed": snapshot["directed"],
                    "seq": snapshot.get("seq", 0),
                    "digest": snapshot.get("digest"),
                },
            )
            install_seconds = time.perf_counter() - start
            assert installed["digest"] == snapshot["digest"]
            donor_rpc.close()
            stale_rpc.close()
        finally:
            donor.shutdown()
            stale.shutdown()
        points.append({
            "nodes": n,
            "entries": donor_index.num_entries,
            "snapshot_seconds": snapshot_seconds,
            "install_seconds": install_seconds,
            "total_seconds": snapshot_seconds + install_seconds,
        })
    return {"points": points}
