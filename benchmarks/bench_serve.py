"""Serving-layer benchmark (ISSUE 3 + ISSUE 7 acceptance series).

Three claims are measured on the acceptance workload
(``barabasi_albert_graph(2000, 3)``; ``REPRO_BENCH_SERVE_N`` overrides)
and persisted to ``BENCH_serve.json`` at the repository root:

1. **Cold start** -- ``AdsIndex.load(path, mmap=True)`` must cost
   O(header + manifest), not O(entries): the series records eager vs
   mmap wall times for the single-file and sharded layouts and their
   speedups.
2. **Query throughput** -- a real ``AdsServer`` on a loopback socket,
   driven through the keep-alive ``QueryClient``, must clear >= 1000
   single-node cardinality queries/sec; batch POSTs and cached
   whole-graph rankings are recorded alongside for context.
3. **Async transport** -- the asyncio ``AsyncAdsServer`` serving the
   same index must clear >= 5x the threaded baseline's single-query
   qps when the client pipelines (the transport the async path was
   built for); request-response and binary-wire series are recorded
   alongside, and ``async_vs_threaded`` holds the dimensionless
   ratios the regression gate tracks.

``REPRO_BENCH_NO_ASSERT=1`` opts out of the hard assertions on loaded
or throttled machines, mirroring the other benches.
"""

import json
import os
import socket
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer, AsyncAdsServer, QueryClient
from repro.serve import wire

SERVE_BENCH_N = int(os.environ.get("REPRO_BENCH_SERVE_N", "2000"))
K = 8
FAMILY = HashFamily(77)
SINGLE_QUERIES = 2000
BATCH_SIZE = 100
BATCH_ROUNDS = 20
CACHED_QUERIES = 500
PIPELINE_DEPTH = 64
REPO_ROOT = Path(__file__).parent.parent


def _best_of(rounds, fn):
    timings = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def _load_timings(path):
    t_eager, _ = _best_of(3, lambda: AdsIndex.load(path))
    t_mmap, _ = _best_of(3, lambda: AdsIndex.load(path, mmap=True))
    return {
        "eager_seconds": t_eager,
        "mmap_seconds": t_mmap,
        "speedup": t_eager / t_mmap if t_mmap > 0 else float("inf"),
    }


def _read_responses(conn, count, buf):
    """Consume *count* Content-Length-framed responses from *conn*."""
    seen = 0
    while seen < count:
        while True:
            head_end = buf.find(b"\r\n\r\n")
            if head_end == -1:
                break
            length = 0
            for line in bytes(buf[:head_end]).split(b"\r\n")[1:]:
                name, _, value = line.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value)
            if len(buf) < head_end + 4 + length:
                break
            del buf[:head_end + 4 + length]
            seen += 1
            if seen == count:
                return
        chunk = conn.recv(1 << 20)
        if not chunk:
            raise ConnectionError("server closed mid-benchmark")
        buf += chunk


def _single_node_qps(server, nodes, queries):
    """Request-response qps through the stock ``QueryClient``."""
    with QueryClient(server.url) as client:
        client.cardinality(node=nodes[0], d=3.0)  # warm
        start = time.perf_counter()
        for i in range(queries):
            client.cardinality(node=nodes[i % len(nodes)], d=3.0)
        elapsed = time.perf_counter() - start
    return {
        "queries": queries,
        "seconds": elapsed,
        "queries_per_second": queries / elapsed,
    }


def _pipelined_qps(server, nodes, queries, binary=False):
    """Single-node qps with *PIPELINE_DEPTH* requests per segment.

    One keep-alive connection, raw HTTP/1.1: each batch goes out in a
    single ``sendall`` and the responses are drained before the next
    batch, so throughput reflects the transport's pipelining, not
    client round trips.
    """
    accept = (
        f"Accept: {wire.WIRE_CONTENT_TYPE}\r\n" if binary else ""
    )
    requests = [
        (
            f"GET /cardinality?node={node}&d=3.0 HTTP/1.1\r\n"
            f"Host: bench\r\n{accept}\r\n"
        ).encode("ascii")
        for node in nodes
    ]
    conn = socket.create_connection(
        (server.host, server.port), timeout=30
    )
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buf = bytearray()
        conn.sendall(requests[0])  # warm
        _read_responses(conn, 1, buf)
        sent = 0
        start = time.perf_counter()
        while sent < queries:
            depth = min(PIPELINE_DEPTH, queries - sent)
            batch = b"".join(
                requests[(sent + j) % len(requests)]
                for j in range(depth)
            )
            conn.sendall(batch)
            _read_responses(conn, depth, buf)
            sent += depth
        elapsed = time.perf_counter() - start
    finally:
        conn.close()
    return {
        "queries": queries,
        "depth": PIPELINE_DEPTH,
        "binary_wire": binary,
        "seconds": elapsed,
        "queries_per_second": queries / elapsed,
    }


def test_serve_cold_start_and_throughput(benchmark, tmp_path):
    graph = barabasi_albert_graph(SERVE_BENCH_N, 3, seed=42)
    index = AdsIndex.build(graph.to_csr(), K, family=FAMILY)
    single_path = tmp_path / "bench.adsidx"
    index.save(single_path)
    sharded_path = tmp_path / "bench-shards"
    index.save(sharded_path, shards=8)
    nodes = list(range(graph.num_nodes))

    def run():
        series = {
            "cold_start": {
                "single_file": _load_timings(single_path),
                "sharded_8": _load_timings(sharded_path),
            }
        }
        served = AdsIndex.load(single_path, mmap=True)
        with AdsServer(served, port=0, cache_size=64, threads=4) as server:
            series["single_node_http"] = _single_node_qps(
                server, nodes, SINGLE_QUERIES
            )
            series["pipelined_http"] = _pipelined_qps(
                server, nodes, SINGLE_QUERIES
            )
            with QueryClient(server.url) as client:
                client.healthz()  # connection + handler warm-up
                start = time.perf_counter()
                for i in range(BATCH_ROUNDS):
                    lo = (i * BATCH_SIZE) % len(nodes)
                    chunk = (nodes + nodes)[lo:lo + BATCH_SIZE]
                    client.cardinality_batch(chunk, d=3.0)
                elapsed = time.perf_counter() - start
                series["batch_http"] = {
                    "requests": BATCH_ROUNDS,
                    "batch_size": BATCH_SIZE,
                    "seconds": elapsed,
                    "node_queries_per_second": (
                        BATCH_ROUNDS * BATCH_SIZE / elapsed
                    ),
                }

                client.top_central(count=10, kind="harmonic")  # prime
                start = time.perf_counter()
                for _ in range(CACHED_QUERIES):
                    client.top_central(count=10, kind="harmonic")
                elapsed = time.perf_counter() - start
                series["cached_top_central_http"] = {
                    "queries": CACHED_QUERIES,
                    "seconds": elapsed,
                    "queries_per_second": CACHED_QUERIES / elapsed,
                }
                series["server_stats"] = client.stats()

        with AsyncAdsServer(served, port=0, cache_size=64) as server:
            series["async_http"] = {
                "single_node": _single_node_qps(
                    server, nodes, SINGLE_QUERIES
                ),
                "pipelined": _pipelined_qps(
                    server, nodes, SINGLE_QUERIES
                ),
                "pipelined_binary": _pipelined_qps(
                    server, nodes, SINGLE_QUERIES, binary=True
                ),
            }
            with QueryClient(server.url) as client:
                series["async_http"]["server_stats"] = client.stats()

        threaded_qps = series["single_node_http"]["queries_per_second"]
        threaded_pipe = series["pipelined_http"]["queries_per_second"]
        async_section = series["async_http"]
        series["async_vs_threaded"] = {
            # The acceptance ratio: the async transport's single-query
            # throughput (pipelined, the workload it exists for) over
            # the threaded server's request-response single-query qps
            # on the same index.
            "single_query_speedup": (
                async_section["pipelined"]["queries_per_second"]
                / threaded_qps
            ),
            "pipelined_speedup": (
                async_section["pipelined"]["queries_per_second"]
                / threaded_pipe
            ),
            "request_response_ratio": (
                async_section["single_node"]["queries_per_second"]
                / threaded_qps
            ),
            "binary_vs_json_pipelined": (
                async_section["pipelined_binary"]["queries_per_second"]
                / async_section["pipelined"]["queries_per_second"]
            ),
        }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    series.update({
        "benchmark": (
            "mmap cold start + HTTP serving throughput "
            "(threaded and async transports)"
        ),
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "k": K,
        "graph": f"barabasi_albert_graph({SERVE_BENCH_N}, 3, seed=42)",
        "index_bytes": os.path.getsize(single_path),
        "cpu_count": os.cpu_count() or 1,
        "note": (
            "single-node queries ride one keep-alive connection; "
            "pipelined series send PIPELINE_DEPTH raw HTTP/1.1 "
            "requests per segment and drain before the next batch; "
            "the mmap cold-start numbers are best-of-3 wall times of "
            "AdsIndex.load on each layout"
        ),
    })
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_serve.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_serve.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        assert series["cold_start"]["single_file"]["speedup"] >= 5.0
        assert series["cold_start"]["sharded_8"]["speedup"] >= 5.0
        if SERVE_BENCH_N >= 2000:
            assert (
                series["single_node_http"]["queries_per_second"] >= 1000.0
            )
            # ISSUE 7 acceptance: the async transport clears 5x the
            # threaded baseline's single-query qps on the same index.
            assert (
                series["async_vs_threaded"]["single_query_speedup"]
                >= 5.0
            )
