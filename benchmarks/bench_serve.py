"""Serving-layer benchmark (ISSUE 3 acceptance series).

Two claims are measured on the acceptance workload
(``barabasi_albert_graph(2000, 3)``; ``REPRO_BENCH_SERVE_N`` overrides)
and persisted to ``BENCH_serve.json`` at the repository root:

1. **Cold start** -- ``AdsIndex.load(path, mmap=True)`` must cost
   O(header + manifest), not O(entries): the series records eager vs
   mmap wall times for the single-file and sharded layouts and their
   speedups.
2. **Query throughput** -- a real ``AdsServer`` on a loopback socket,
   driven through the keep-alive ``QueryClient``, must clear >= 1000
   single-node cardinality queries/sec; batch POSTs and cached
   whole-graph rankings are recorded alongside for context.

``REPRO_BENCH_NO_ASSERT=1`` opts out of the hard assertions on loaded
or throttled machines, mirroring the other benches.
"""

import json
import os
import time
from pathlib import Path

from conftest import write_output
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer, QueryClient

SERVE_BENCH_N = int(os.environ.get("REPRO_BENCH_SERVE_N", "2000"))
K = 8
FAMILY = HashFamily(77)
SINGLE_QUERIES = 2000
BATCH_SIZE = 100
BATCH_ROUNDS = 20
CACHED_QUERIES = 500
REPO_ROOT = Path(__file__).parent.parent


def _best_of(rounds, fn):
    timings = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def _load_timings(path):
    t_eager, _ = _best_of(3, lambda: AdsIndex.load(path))
    t_mmap, _ = _best_of(3, lambda: AdsIndex.load(path, mmap=True))
    return {
        "eager_seconds": t_eager,
        "mmap_seconds": t_mmap,
        "speedup": t_eager / t_mmap if t_mmap > 0 else float("inf"),
    }


def test_serve_cold_start_and_throughput(benchmark, tmp_path):
    graph = barabasi_albert_graph(SERVE_BENCH_N, 3, seed=42)
    index = AdsIndex.build(graph.to_csr(), K, family=FAMILY)
    single_path = tmp_path / "bench.adsidx"
    index.save(single_path)
    sharded_path = tmp_path / "bench-shards"
    index.save(sharded_path, shards=8)
    nodes = list(range(graph.num_nodes))

    def run():
        series = {
            "cold_start": {
                "single_file": _load_timings(single_path),
                "sharded_8": _load_timings(sharded_path),
            }
        }
        served = AdsIndex.load(single_path, mmap=True)
        with AdsServer(served, port=0, cache_size=64, threads=4) as server:
            with QueryClient(server.url) as client:
                client.healthz()  # connection + handler warm-up

                start = time.perf_counter()
                for i in range(SINGLE_QUERIES):
                    client.cardinality(node=nodes[i % len(nodes)], d=3.0)
                elapsed = time.perf_counter() - start
                series["single_node_http"] = {
                    "queries": SINGLE_QUERIES,
                    "seconds": elapsed,
                    "queries_per_second": SINGLE_QUERIES / elapsed,
                }

                start = time.perf_counter()
                for i in range(BATCH_ROUNDS):
                    lo = (i * BATCH_SIZE) % len(nodes)
                    chunk = (nodes + nodes)[lo:lo + BATCH_SIZE]
                    client.cardinality_batch(chunk, d=3.0)
                elapsed = time.perf_counter() - start
                series["batch_http"] = {
                    "requests": BATCH_ROUNDS,
                    "batch_size": BATCH_SIZE,
                    "seconds": elapsed,
                    "node_queries_per_second": (
                        BATCH_ROUNDS * BATCH_SIZE / elapsed
                    ),
                }

                client.top_central(count=10, kind="harmonic")  # prime
                start = time.perf_counter()
                for _ in range(CACHED_QUERIES):
                    client.top_central(count=10, kind="harmonic")
                elapsed = time.perf_counter() - start
                series["cached_top_central_http"] = {
                    "queries": CACHED_QUERIES,
                    "seconds": elapsed,
                    "queries_per_second": CACHED_QUERIES / elapsed,
                }
                series["server_stats"] = client.stats()
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    series.update({
        "benchmark": "mmap cold start + HTTP serving throughput",
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "k": K,
        "graph": f"barabasi_albert_graph({SERVE_BENCH_N}, 3, seed=42)",
        "index_bytes": os.path.getsize(single_path),
        "cpu_count": os.cpu_count() or 1,
        "note": (
            "single-node queries ride one keep-alive connection; the "
            "mmap cold-start numbers are best-of-3 wall times of "
            "AdsIndex.load on each layout"
        ),
    })
    payload = json.dumps(series, indent=2) + "\n"
    (REPO_ROOT / "BENCH_serve.json").write_text(payload, encoding="utf-8")
    write_output("BENCH_serve.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        assert series["cold_start"]["single_file"]["speedup"] >= 5.0
        assert series["cold_start"]["sharded_8"]["speedup"] >= 5.0
        if SERVE_BENCH_N >= 2000:
            assert (
                series["single_node_http"]["queries_per_second"] >= 1000.0
            )
