"""Similarity / distance-oracle benchmark (ISSUE 9 acceptance series).

The service tier's pitch is that pairwise queries run on the flat
index columns -- no per-node sketch objects materialised -- and that
the NumPy kernel keeps batch pair queries ahead of the pure-Python
loops.  Both backends answer over the *same built index* and must
agree bit-for-bit before any timing counts.

Series persisted to ``BENCH_similarity.json``:

* ``throughput`` -- pairs/second per backend for the distance oracle
  (``pairs_distance_estimate``), the d-neighborhood Jaccard batch
  (``pairs_neighborhood_jaccard``), and the union-size batch, plus
  one ``most_similar`` nearest-neighbor scan per backend.
* ``speedups.distance_pairs`` / ``speedups.jaccard_pairs`` -- the
  regression-gated ratios: NumPy pairs/second over pure pairs/second.
  Pair queries touch two ~k*ln(n)-entry slices each, too small to
  amortise NumPy's per-call overhead, so the honest ratio sits near
  parity (slightly below 1.0 at k=8) -- the gate exists to catch
  either backend *collapsing*, not to claim vectorised wins the
  per-pair shape cannot deliver.  (The order-of-magnitude NumPy wins
  live in the whole-graph sweeps, gated via ``BENCH_kernels.json``.)

``REPRO_BENCH_SIM_N`` (default 3000) scales the graph,
``REPRO_BENCH_SIM_PAIRS`` (default 4000) the pair batch;
``REPRO_BENCH_NO_ASSERT=1`` opts out of hard assertions on loaded
machines.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from conftest import write_output
from repro.ads import AdsIndex, kernels
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily

SIM_BENCH_N = int(os.environ.get("REPRO_BENCH_SIM_N", "3000"))
SIM_BENCH_PAIRS = int(os.environ.get("REPRO_BENCH_SIM_PAIRS", "4000"))
K = 8
D = 2.0
FAMILY = HashFamily(99)
REPO_ROOT = Path(__file__).parent.parent


def _pair_batch(n, count):
    """A deterministic pseudo-random pair batch (no RNG dependency)."""
    return [
        ((i * 7919) % n, (i * 104729 + 13) % n) for i in range(count)
    ]


def _best_of(fn, rounds=3):
    fn()  # warmup: similarity views, sorted columns
    best = math.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(index, pairs):
    runs = {
        "distance_pairs": lambda: index.pairs_distance_estimate(pairs),
        "jaccard_pairs": lambda: index.pairs_neighborhood_jaccard(
            pairs, D
        ),
        "union_size_pairs": lambda: index.pairs_union_size_estimate(
            pairs, D
        ),
    }
    series = {}
    for metric, run in runs.items():
        seconds = _best_of(run)
        series[metric] = {
            "seconds": seconds,
            "pairs_per_second": (
                len(pairs) / seconds if seconds > 0 else float("inf")
            ),
        }
    scan_seconds = _best_of(
        lambda: index.most_similar(0, count=10, d=D)
    )
    series["most_similar_scan"] = {
        "seconds": scan_seconds,
        "candidates_per_second": (
            index.num_nodes / scan_seconds
            if scan_seconds > 0 else float("inf")
        ),
    }
    return series


def test_similarity_throughput(benchmark, tmp_path):
    if not kernels.numpy_available():
        pytest.skip("NumPy not installed; nothing to compare against")

    graph = barabasi_albert_graph(SIM_BENCH_N, 3, seed=7).to_csr()
    built = AdsIndex.build(graph, K, family=FAMILY, backend="python")
    path = tmp_path / "similarity.adsidx"
    built.save(path)
    pairs = _pair_batch(SIM_BENCH_N, SIM_BENCH_PAIRS)

    py = AdsIndex.load(path, backend="python")
    np_ = AdsIndex.load(path, backend="numpy")
    # Bit-identity first: timings of divergent answers are meaningless.
    probe = pairs[:200]
    assert py.pairs_distance_estimate(probe) == \
        np_.pairs_distance_estimate(probe)
    assert py.pairs_neighborhood_jaccard(probe, D) == \
        np_.pairs_neighborhood_jaccard(probe, D)
    assert py.most_similar(0, count=10, d=D) == \
        np_.most_similar(0, count=10, d=D)

    def run():
        return {
            "python": _measure(py, pairs),
            "numpy": _measure(np_, pairs),
        }

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {
        metric: (
            throughput["numpy"][metric]["pairs_per_second"]
            / throughput["python"][metric]["pairs_per_second"]
        )
        for metric in ("distance_pairs", "jaccard_pairs",
                       "union_size_pairs")
    }
    series = {
        "benchmark": (
            "similarity service tier: batch pair queries, numpy vs "
            "pure-python kernels"
        ),
        "n": SIM_BENCH_N,
        "m": graph.num_edges,
        "k": K,
        "d": D,
        "pairs": len(pairs),
        "cpu_count": os.cpu_count() or 1,
        "graph": f"barabasi_albert_graph({SIM_BENCH_N}, 3, seed=7)",
        "throughput": throughput,
        "speedups": speedups,
        "note": (
            "steady-state timings (warmed similarity views, best of "
            "3); both backends share the union-merge core, and "
            "per-pair slices are too small to amortise NumPy call "
            "overhead, so near-parity ratios are expected -- the "
            "gated metrics are collapse guards, not speedup claims"
        ),
    }
    payload = json.dumps(series, indent=2, sort_keys=True) + "\n"
    (REPO_ROOT / "BENCH_similarity.json").write_text(
        payload, encoding="utf-8"
    )
    write_output("BENCH_similarity.json", payload)

    if os.environ.get("REPRO_BENCH_NO_ASSERT") != "1":
        # Collapse guard, not a speedup claim: near-parity is the
        # honest steady state for per-pair work at k=8 (see module
        # docstring); a backend falling far below it means a fast
        # path broke.
        assert speedups["distance_pairs"] >= 0.25, speedups
        assert speedups["jaccard_pairs"] >= 0.25, speedups
