"""Micro-benchmarks: sketch update throughput and estimator evaluation.

Appendix B.2 discusses per-relaxation costs of the flavors; these benches
measure the analogous stream-update costs of our implementations, the
extra cost HIP adds to a HyperLogLog pipeline (one counter bump per
register change -- asymptotically negligible), and per-query estimator
latency on a built ADS.
"""

import pytest

from repro.ads import build_ads_set
from repro.counters import HipDistinctCounter
from repro.estimators.statistics import exponential_decay_kernel
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.sketches import (
    BottomKSketch,
    HyperLogLog,
    KMinsSketch,
    KPartitionSketch,
)

N_STREAM = 20_000


@pytest.mark.parametrize(
    "flavor,factory",
    [
        ("bottomk", lambda fam: BottomKSketch(32, fam)),
        ("kmins", lambda fam: KMinsSketch(32, fam)),
        ("kpartition", lambda fam: KPartitionSketch(32, fam)),
        ("hll", lambda fam: HyperLogLog(32, fam)),
    ],
)
def test_sketch_update_throughput(benchmark, flavor, factory):
    family = HashFamily(5)

    def run():
        sketch = factory(family)
        sketch.update(range(N_STREAM))
        return sketch

    sketch = benchmark(run)
    assert sketch.cardinality() > 0


def test_hll_with_hip_overhead(benchmark):
    """HIP adds one O(k) probability computation per register change;
    register changes are O(k log n), so the overhead is tiny."""
    family = HashFamily(6)

    def run():
        counter = HipDistinctCounter(HyperLogLog(32, family))
        counter.update(range(N_STREAM))
        return counter

    counter = benchmark(run)
    assert counter.estimate() == pytest.approx(N_STREAM, rel=0.5)


GRAPH = barabasi_albert_graph(300, 3, seed=4)
ADS_SET = build_ads_set(GRAPH, 16, family=HashFamily(9))


def test_query_cardinality(benchmark):
    ads = ADS_SET[7]
    value = benchmark(ads.cardinality_at, 2.0)
    assert value > 0


def test_query_decay_centrality(benchmark):
    ads = ADS_SET[7]
    kernel = exponential_decay_kernel()
    value = benchmark(ads.centrality, kernel)
    assert value > 0


def test_query_neighborhood_function(benchmark):
    ads = ADS_SET[7]
    series = benchmark(ads.neighborhood_function)
    assert series[-1][1] > 0
