"""Tables for the paper's lemmas and in-text constants (DESIGN.md index).

* Lemma 2.2 -- expected ADS sizes;
* Section 6 constants -- HLL 1.08/sqrt(k) vs HIP 0.866/sqrt(k) vs
  base-sqrt(2) HIP 0.777/sqrt(k);
* Section 5.6 -- base-b variance inflation (1+b)/2 for ADS HIP;
* Section 7 -- Morris counter bias/CV under unit and weighted updates;
* Section 8 -- the size-only estimator's unbiasedness;
* Intro / 5.1 -- HIP vs naive reachable-set estimation of Q_g.
"""

import math
import random
import statistics

import pytest

from conftest import scaled_runs, write_output
from repro.eval.reporting import render_table
from repro.eval.tables import (
    ads_size_table,
    baseb_variance_table,
    distinct_counter_constants_table,
    morris_counter_table,
    qg_variance_table,
)


def test_lemma22_ads_size(benchmark):
    rows = benchmark.pedantic(
        ads_size_table,
        args=([100, 1_000, 10_000], [1, 4, 16, 64]),
        kwargs=dict(runs=scaled_runs(2000, minimum=250)),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        "Lemma 2.2: expected ADS size, measured vs k + k(H_n - H_k) and "
        "k H_{n/k}",
        "row",
        list(range(len(rows))),
        {
            "k": [r["k"] for r in rows],
            "n": [r["n"] for r in rows],
            "botk_meas": [r["bottomk_measured"] for r in rows],
            "botk_pred": [r["bottomk_predicted"] for r in rows],
            "kpart_meas": [r["kpartition_measured"] for r in rows],
            "kpart_pred": [r["kpartition_predicted"] for r in rows],
        },
        precision=2,
    )
    write_output("table_lemma22_ads_size.txt", text)
    for r in rows:
        assert r["bottomk_measured"] == pytest.approx(
            r["bottomk_predicted"], rel=0.08
        )
        assert r["kpartition_measured"] == pytest.approx(
            r["kpartition_predicted"], rel=0.15
        )


def test_section6_constants(benchmark):
    rows = benchmark.pedantic(
        distinct_counter_constants_table,
        args=([16, 32, 64],),
        kwargs=dict(n=50_000, runs=scaled_runs(600, minimum=80)),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        "Section 6 constants: NRMSE * sqrt(k) "
        "(paper: HLL 1.08, HIP base-2 0.866, HIP base-sqrt2 0.777)",
        "k",
        [r["k"] for r in rows],
        {
            "hll": [r["hll_nrmse_sqrtk"] for r in rows],
            "hip_b2": [r["hip_b2_nrmse_sqrtk"] for r in rows],
            "hip_bsqrt2": [r["hip_bsqrt2_nrmse_sqrtk"] for r in rows],
            "paper_hip_b2": [r["paper_hip_b2"] for r in rows],
            "paper_bsqrt2": [r["paper_hip_bsqrt2"] for r in rows],
        },
    )
    write_output("table_section6_constants.txt", text)
    for r in rows:
        assert r["hip_b2_nrmse_sqrtk"] < r["hll_nrmse_sqrtk"]
        assert r["hip_b2_nrmse_sqrtk"] == pytest.approx(
            r["paper_hip_b2"], rel=0.3
        )


def test_section56_baseb_variance(benchmark):
    bases = [1.0, math.sqrt(2.0), 2.0, 4.0]
    rows = benchmark.pedantic(
        baseb_variance_table,
        args=(16, bases),
        kwargs=dict(n=10_000, runs=scaled_runs(500, minimum=100)),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        "Section 5.6: bottom-k HIP CV with base-b rounded ranks "
        "(prediction sqrt((1+b)/(4(k-1))); base 1.0 = full ranks)",
        "base",
        [round(r["base"], 4) for r in rows],
        {
            "measured_cv": [r["measured_cv"] for r in rows],
            "predicted_cv": [r["predicted_cv"] for r in rows],
        },
    )
    write_output("table_section56_baseb.txt", text)
    for r in rows:
        assert r["measured_cv"] == pytest.approx(r["predicted_cv"], rel=0.35)
    measured = [r["measured_cv"] for r in rows]
    assert measured == sorted(measured), "CV must grow with the base"


def test_section7_morris(benchmark):
    rows = benchmark.pedantic(
        morris_counter_table,
        args=([1.05, 1.25, 2.0],),
        kwargs=dict(total=5_000, runs=scaled_runs(800, minimum=120)),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        "Section 7: Morris counters, unit vs weighted updates "
        "(unbiased; error scale grows with base)",
        "base",
        [r["base"] for r in rows],
        {
            "unit_bias": [r["unit_bias"] for r in rows],
            "unit_cv": [r["unit_cv"] for r in rows],
            "wtd_bias": [r["weighted_bias"] for r in rows],
            "wtd_cv": [r["weighted_cv"] for r in rows],
        },
    )
    write_output("table_section7_morris.txt", text)
    for r in rows:
        assert abs(r["unit_bias"]) < 0.12
        assert abs(r["weighted_bias"]) < 0.12
    cvs = [r["unit_cv"] for r in rows]
    assert cvs == sorted(cvs)


def test_section8_size_estimator(benchmark):
    from repro.estimators.size import size_cardinality_estimate

    def run():
        n, k = 500, 8
        runs = scaled_runs(3000, minimum=400)
        rng = random.Random(2)
        values = []
        import heapq

        for _ in range(runs):
            heap, count = [], 0
            for _ in range(n):
                r = rng.random()
                if len(heap) < k:
                    heapq.heappush(heap, -r)
                    count += 1
                elif r < -heap[0]:
                    heapq.heapreplace(heap, -r)
                    count += 1
            values.append(size_cardinality_estimate(count, k))
        return n, values

    n, values = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = statistics.mean(values)
    cv = statistics.pstdev(values) / n
    text = render_table(
        "Section 8: size-only estimator E_s = k(1+1/k)^(s-k+1) - 1",
        "n",
        [n],
        {"mean_estimate": [mean], "bias": [mean / n - 1.0], "cv": [cv]},
    )
    write_output("table_section8_size_estimator.txt", text)
    assert mean == pytest.approx(n, rel=0.3)  # unbiased but heavy-tailed


def test_intro_qg_hip_vs_naive(benchmark):
    from repro.graph import barabasi_albert_graph
    from repro.graph.properties import closeness_centrality_exact

    graph = barabasi_albert_graph(200, 3, seed=6)
    g = lambda node, d: 2.0 ** (-d)  # concentrated on close nodes
    nodes = list(graph.nodes())[:15]
    exact = {
        v: closeness_centrality_exact(graph, v, alpha=lambda d: 2.0 ** (-d))
        + 1.0
        for v in nodes
    }

    result = benchmark.pedantic(
        qg_variance_table,
        args=(graph, 8, g, lambda v: exact[v], nodes,
              range(scaled_runs(200, minimum=20))),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        "Intro/Section 5.1: Q_g with distance-concentrated g "
        "(HIP vs naive reachable-set MinHash baseline)",
        "k",
        [result["k"]],
        {
            "hip_nrmse": [result["hip_nrmse"]],
            "naive_nrmse": [result["naive_nrmse"]],
            "var_ratio": [result["variance_ratio"]],
        },
    )
    write_output("table_intro_qg.txt", text)
    assert result["hip_nrmse"] < result["naive_nrmse"]
    assert result["variance_ratio"] > 2.0
