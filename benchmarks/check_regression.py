"""Bench-regression gate: compare fresh BENCH_*.json against baselines.

The CI bench-smoke job regenerates every ``BENCH_*.json`` series at a
fixed reduced scale, then runs this script to compare the *dimensionless*
tracked metrics (speedups -- ratios survive a change of machine; raw
wall times and queries/second do not) against the committed snapshots
under ``benchmarks/baselines/``.  A tracked metric that degrades beyond
the tolerance fails the job.

Tolerance: ``REPRO_BENCH_TOLERANCE`` (default 0.5) -- deliberately
generous, because shared CI runners are noisy; the gate exists to catch
"the mmap fast path stopped being fast" class regressions (a 10x
speedup collapsing to 1x), not 10% jitter.  A higher-is-better metric
fails below ``baseline * (1 - tolerance)``; a lower-is-better metric
fails above ``baseline / (1 - tolerance)``.

Usage::

    python benchmarks/check_regression.py \
        [--current-dir .] [--baseline-dir benchmarks/baselines]

Refreshing baselines after an intentional perf change: re-run the bench
suite at the CI scale (the env values in ``.github/workflows/ci.yml``)
and copy the regenerated ``BENCH_*.json`` files into
``benchmarks/baselines/``.
"""

import argparse
import json
import os
import re
import sys
from pathlib import Path

# (file, dotted metric path -- [i] indexes a list --, direction)
TRACKED = [
    ("BENCH_csr.json", "speedup_index_vs_legacy_pd", "higher"),
    ("BENCH_csr.json", "speedup_ads_set_vs_legacy_pd", "higher"),
    ("BENCH_serve.json", "cold_start.single_file.speedup", "higher"),
    ("BENCH_serve.json", "cold_start.sharded_8.speedup", "higher"),
    ("BENCH_dynamic.json", "batches[0].speedup", "higher"),
    # cpu_count on runners varies; workers-vs-serial only has to not
    # collapse relative to the (single-core, pessimistic) baseline.
    ("BENCH_parallel.json", "speedup_workers_2_vs_1", "higher"),
    # NumPy kernel backend: batch sweeps must stay an order of
    # magnitude ahead of the pure loops (ISSUE 5 acceptance).
    ("BENCH_kernels.json", "speedups.closeness_batch_eager", "higher"),
    ("BENCH_kernels.json", "speedups.closeness_batch_mmap", "higher"),
    ("BENCH_kernels.json", "speedups.cardinality_batch_mmap", "higher"),
    # Shard-parallel kernel tier: fanned batch queries must keep
    # beating serial (ISSUE 6 acceptance).
    ("BENCH_kernels.json", "parallel.peak_speedup_vs_serial", "higher"),
    # Async pipelined transport: single-query throughput over the
    # threaded request-response baseline (ISSUE 7 acceptance).
    ("BENCH_serve.json", "async_vs_threaded.single_query_speedup",
     "higher"),
    # Cluster fan-out: batch throughput over 2 worker processes must
    # not collapse relative to 1 (ISSUE 8 acceptance; real subprocess
    # workers, so the ratio needs real cores).
    ("BENCH_cluster.json", "scaling.batch_speedup_2w_vs_1w", "higher"),
    # Similarity tier: numpy-vs-pure pair-query ratios sit near parity
    # by construction (tiny per-pair slices); tracked as collapse
    # guards for either backend's pair path (ISSUE 9 acceptance).
    ("BENCH_similarity.json", "speedups.distance_pairs", "higher"),
    ("BENCH_similarity.json", "speedups.jaccard_pairs", "higher"),
    # Durability tier: the fsync'd WAL append must stay a small
    # constant factor on updates, and startup replay must not fall
    # behind the live apply path (ISSUE 10 acceptance).
    ("BENCH_recovery.json", "wal.update_overhead", "lower"),
    ("BENCH_recovery.json", "replay.throughput_vs_apply", "higher"),
]

# Metrics that only mean anything with real cores: skipped (with a
# printed notice) when the *fresh* series reports cpu_count == 1 --
# a single-core runner cannot show parallel speedup, and failing the
# gate there would only punish the hardware, not the code.
SKIP_ON_SINGLE_CPU = {
    ("BENCH_kernels.json", "parallel.peak_speedup_vs_serial"),
    ("BENCH_cluster.json", "scaling.batch_speedup_2w_vs_1w"),
}

_STEP = re.compile(r"([^.\[\]]+)(?:\[(\d+)\])?")


def extract(payload, dotted):
    """Resolve ``a.b[0].c`` inside nested dicts/lists."""
    value = payload
    for match in _STEP.finditer(dotted):
        key, index = match.group(1), match.group(2)
        if not isinstance(value, dict) or key not in value:
            raise KeyError(dotted)
        value = value[key]
        if index is not None:
            if not isinstance(value, list) or int(index) >= len(value):
                raise KeyError(dotted)
            value = value[int(index)]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise KeyError(f"{dotted} is not a number")
    return float(value)


def check(current_dir: Path, baseline_dir: Path, tolerance: float) -> int:
    failures = []
    rows = []
    for name, dotted, direction in TRACKED:
        baseline_path = baseline_dir / name
        current_path = current_dir / name
        try:
            baseline = extract(
                json.loads(baseline_path.read_text()), dotted
            )
        except (OSError, json.JSONDecodeError, KeyError) as error:
            failures.append(f"{name}:{dotted}: unreadable baseline ({error})")
            continue
        try:
            current_payload = json.loads(current_path.read_text())
            current = extract(current_payload, dotted)
        except (OSError, json.JSONDecodeError, KeyError) as error:
            failures.append(
                f"{name}:{dotted}: missing from the fresh bench run "
                f"({error}) -- did a bench stop emitting this series?"
            )
            continue
        if (name, dotted) in SKIP_ON_SINGLE_CPU and \
                current_payload.get("cpu_count") == 1:
            rows.append(
                f"  skip {name}:{dotted}: fresh series ran on a "
                "single-core machine (cpu_count=1); parallel speedup "
                "not meaningful there"
            )
            continue
        if direction == "higher":
            floor = baseline * (1.0 - tolerance)
            ok = current >= floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = baseline / (1.0 - tolerance)
            ok = current <= ceiling
            bound = f"<= {ceiling:.3f}"
        rows.append(
            f"  {'ok  ' if ok else 'FAIL'} {name}:{dotted}: "
            f"current={current:.3f} baseline={baseline:.3f} ({bound})"
        )
        if not ok:
            failures.append(
                f"{name}:{dotted}: {current:.3f} degraded beyond "
                f"{bound} (baseline {baseline:.3f}, "
                f"tolerance {tolerance})"
            )
    print(f"bench-regression gate (tolerance={tolerance}):")
    print("\n".join(rows))
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("all tracked metrics within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current-dir", default=".", type=Path,
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--baseline-dir", default=Path("benchmarks/baselines"), type=Path,
        help="directory holding the committed baseline snapshots",
    )
    args = parser.parse_args(argv)
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.5"))
    if not 0.0 <= tolerance < 1.0:
        print(f"REPRO_BENCH_TOLERANCE must be in [0, 1), got {tolerance}",
              file=sys.stderr)
        return 2
    return check(args.current_dir, args.baseline_dir, tolerance)


if __name__ == "__main__":
    sys.exit(main())
