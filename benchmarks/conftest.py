"""Shared configuration for the benchmark suite.

Every bench regenerates one of the paper's figures or quantitative claims
(see DESIGN.md's per-experiment index) and both prints and persists the
series under ``benchmarks/out/``.

Scaling: the paper's exact run counts would take tens of minutes in pure
Python, so each bench runs a scaled-down sweep by default.  Set the
environment variable ``REPRO_BENCH_SCALE`` (default 0.1) to scale run
counts toward the paper's, and ``REPRO_BENCH_MAXN_FIG3`` (default 100000)
for Figure 3's maximum cardinality (paper: 1000000).  EXPERIMENTS.md
records the parameters actually used for the committed results.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def scaled_runs(paper_runs: int, minimum: int = 30) -> int:
    return max(minimum, int(round(paper_runs * bench_scale())))


def fig3_max_n() -> int:
    return int(os.environ.get("REPRO_BENCH_MAXN_FIG3", "100000"))


def write_output(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text, encoding="utf-8")
    print(f"\n{text}")


@pytest.fixture
def out_writer():
    return write_output
