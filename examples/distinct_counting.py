"""Approximate distinct counting: HIP vs HyperLogLog on the same sketch.

Section 6 of the paper: maintain the standard HyperLogLog register array
over a stream, but *also* keep a running HIP count that is bumped by an
inverse-probability weight whenever a register changes.  Same memory
(plus one counter), same single pass -- noticeably lower error, no
bias-correction patches.

This example streams a heavy-tailed (Zipf) workload with many repeats,
tracks both estimators at checkpoints, and reports their errors.  It also
shows the fully-compressed variant where the HIP count itself lives in a
Morris approximate counter (Section 7).

Run:  python examples/distinct_counting.py
"""

from repro import HashFamily, HipDistinctCounter, HyperLogLog
from repro.streams import zipf_stream


def main() -> None:
    n_distinct = 200_000
    length = 400_000
    k = 64  # registers, 5 bits each
    print(
        f"stream: {length} entries over {n_distinct} distinct elements "
        f"(Zipf repeats)\nsketch: {k} five-bit registers "
        f"({k * 5 / 8:.0f} bytes)\n"
    )

    stream = zipf_stream(n_distinct, length, seed=3)
    counter = HipDistinctCounter(HyperLogLog(k, HashFamily(17)))

    seen = set()
    checkpoints = {1_000, 10_000, 50_000, 100_000, 200_000, 400_000}
    print(f"{'entries':>9} {'distinct':>9} {'HIP':>10} {'HLL':>10} "
          f"{'HIP err':>9} {'HLL err':>9}")
    for position, element in enumerate(stream, start=1):
        counter.add(element)
        seen.add(element)
        if position in checkpoints:
            truth = len(seen)
            hip = counter.estimate()
            hll = counter.sketch.estimate()
            print(
                f"{position:>9} {truth:>9} {hip:>10.0f} {hll:>10.0f} "
                f"{hip / truth - 1:>+9.2%} {hll / truth - 1:>+9.2%}"
            )

    # --- fully compressed: HIP count in a Morris approximate counter ----
    print("\nwith the count itself stored approximately "
          "(Morris counter, base 1 + 1/k):")
    compact = HipDistinctCounter(
        HyperLogLog(k, HashFamily(17)),
        approximate_counter_base=1.0 + 1.0 / k,
    )
    compact.update(zipf_stream(n_distinct, length, seed=3))
    truth = n_distinct
    print(
        f"  estimate {compact.estimate():.0f}  truth {truth}  "
        f"error {compact.estimate() / truth - 1:+.2%}"
    )


if __name__ == "__main__":
    main()
