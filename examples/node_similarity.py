"""Who is like me?  Node similarity search from coordinated sketches.

Because all ADSs are built from the same random permutation (Section 2's
coordination), the MinHash sketch of any node's d-neighborhood -- extracted
from its ADS -- is directly comparable with any other node's.  This example
runs a sketch-space "similar users" search on a grid-structured network
(where ground-truth similarity is spatial) and a multi-scale closeness
similarity between chosen pairs.

Run:  python examples/node_similarity.py
"""

from repro import HashFamily, build_ads_set
from repro.centrality import (
    closeness_similarity,
    effective_diameter_estimate,
    most_similar_nodes,
    neighborhood_jaccard,
)
from repro.graph import grid_graph


def main() -> None:
    graph = grid_graph(12, 12)
    print(f"graph: {graph} (12x12 grid; similarity should be spatial)")

    ads_set = build_ads_set(graph, k=24, family=HashFamily(23))
    print(
        "estimated effective diameter (90%):",
        effective_diameter_estimate(ads_set, 0.9),
    )

    query = (5, 5)
    print(f"\nnodes most similar to {query} (3-hop neighborhood Jaccard):")
    for node, score in most_similar_nodes(ads_set, query, d=3.0, count=6):
        manhattan = abs(node[0] - query[0]) + abs(node[1] - query[1])
        print(f"  {node}  score {score:.2f}  (grid distance {manhattan})")

    print("\npairwise multi-scale closeness similarity:")
    pairs = [((5, 5), (5, 6)), ((5, 5), (8, 8)), ((0, 0), (11, 11))]
    for a, b in pairs:
        jaccard_2 = neighborhood_jaccard(ads_set[a], ads_set[b], 2.0)
        profile = closeness_similarity(ads_set[a], ads_set[b])
        print(
            f"  {a} vs {b}:  2-hop Jaccard {jaccard_2:.2f}, "
            f"distance-profile similarity {profile:.2f}"
        )


if __name__ == "__main__":
    main()
