"""Quickstart: sketch a graph once, answer distance queries forever.

Builds the All-Distances Sketch of every node of a small social-style
graph, then answers neighborhood-size, reachability, and centrality
queries from the sketches alone -- comparing against exact values computed
by full traversals.

Run:  python examples/quickstart.py
"""

from repro import HashFamily, build_ads_set
from repro.graph import barabasi_albert_graph
from repro.graph.properties import (
    closeness_centrality_exact,
    neighborhood_cardinality,
    reachable_set,
)


def main() -> None:
    # A 500-node preferential-attachment graph ("social network").
    graph = barabasi_albert_graph(500, 3, seed=7)
    print(f"graph: {graph}")

    # One pass builds the sketch of EVERY node.  k controls accuracy:
    # HIP estimates have CV <= 1/sqrt(2(k-1)) ~ 0.13 for k = 32.
    family = HashFamily(seed=42)
    ads_set = build_ads_set(graph, k=32, family=family)
    sizes = [len(ads) for ads in ads_set.values()]
    print(
        f"built {len(ads_set)} sketches; "
        f"mean size {sum(sizes) / len(sizes):.1f} entries "
        f"(vs n = {graph.num_nodes} for exact distance lists)"
    )

    node = 123
    ads = ads_set[node]
    print(f"\nqueries for node {node}:")

    # 1. How many nodes within d hops?  (the distance distribution)
    for d in (1, 2, 3):
        estimate = ads.cardinality_at(d)
        exact = neighborhood_cardinality(graph, node, d)
        print(
            f"  |N_{d}| estimate {estimate:8.1f}   exact {exact:5d}   "
            f"error {estimate / exact - 1:+.1%}"
        )

    # 2. How many nodes reachable at all?
    estimate = ads.reachable_count()
    exact = len(reachable_set(graph, node))
    print(f"  reachable  estimate {estimate:8.1f}   exact {exact:5d}")

    # 3. Sum of distances (inverse classic closeness centrality).
    estimate = ads.centrality()
    exact = closeness_centrality_exact(graph, node)
    print(
        f"  sum of distances estimate {estimate:8.1f}   exact {exact:8.1f}  "
        f" error {estimate / exact - 1:+.1%}"
    )

    # 4. Distance-decay centrality with a filter chosen AFTER building:
    #    "how close is this node to even-numbered users?"
    even_reach = ads.centrality(
        alpha=lambda d: 2.0 ** (-d),
        beta=lambda u: 1.0 if u % 2 == 0 else 0.0,
    )
    print(f"  exp-decay centrality over even users: {even_reach:.2f}")


if __name__ == "__main__":
    main()
