"""Serve sketches over HTTP and query them like a client would.

The production shape of the paper's build-once / query-forever workflow:
build an index for a social-style graph, save it, memory-map it back
(cold start is O(header), not O(index)), stand up the ``repro.serve``
daemon, and fire single, batch, and whole-graph queries at it through
the keep-alive client -- printing the latency of each.

Run:  python examples/serving_queries.py
      (REPRO_SMOKE=1 shrinks the graph for CI smoke runs)
"""

import os
import statistics
import tempfile
import time

from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer, QueryClient

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
N = 200 if SMOKE else 1500


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"  {label:<42s} {elapsed:8.2f} ms")
    return result


def main() -> None:
    graph = barabasi_albert_graph(N, 3, seed=7)
    print(f"graph: {graph}")

    # Build once, save, and reload memory-mapped: the load cost is the
    # JSON header, not the column bytes.
    index = AdsIndex.build(graph.to_csr(), k=16, family=HashFamily(11))
    path = os.path.join(tempfile.mkdtemp(), "social.adsidx")
    index.save(path)
    print(f"index: {index} -> {os.path.getsize(path) / 1e6:.1f} MB on disk")
    served = timed(
        "AdsIndex.load(mmap=True) cold start",
        lambda: AdsIndex.load(path, mmap=True),
    )

    # The same daemon `python -m repro serve --index social.adsidx`
    # runs, embedded; port=0 grabs a free port.
    with AdsServer(served, port=0, cache_size=64, threads=4) as server:
        print(f"serving on {server.url}\n")
        with QueryClient(server.url) as client:
            print("single queries (one HTTP round trip each):")
            timed("GET /healthz", client.healthz)
            timed("GET /cardinality?node=42&d=3",
                  lambda: client.cardinality(node=42, d=3.0))
            timed("GET /closeness?node=42&kind=harmonic",
                  lambda: client.closeness(node=42, kind="harmonic"))
            timed("GET /node/42", lambda: client.node(42))

            print("\nbatch cardinality (100 nodes per POST):")
            nodes = list(range(min(100, N)))
            response = timed(
                "POST /cardinality x100 nodes",
                lambda: client.cardinality_batch(nodes, d=3.0),
            )
            values = [value for _, value in response["results"]]
            print(f"    mean |N_3| over the batch: "
                  f"{statistics.mean(values):.1f} nodes")

            print("\nwhole-graph queries (LRU-cached after first hit):")
            first = timed("GET /top-central (cold)",
                          lambda: client.top_central(count=5,
                                                     kind="harmonic"))
            timed("GET /top-central (cached)",
                  lambda: client.top_central(count=5, kind="harmonic"))
            print("    top-5 harmonic:",
                  [label for label, _ in first["results"]])

            stats = client.stats()
            print(f"\nserver stats: {stats['requests']} requests, "
                  f"cache {stats['cache']['hits']} hits / "
                  f"{stats['cache']['misses']} misses, "
                  f"mmap={stats['index']['mmap']}")


if __name__ == "__main__":
    main()
