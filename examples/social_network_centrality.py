"""Centrality analysis of a social network from one ADS set.

The paper's flagship application (Equation 2, Corollary 5.2): a single
near-linear sketching pass supports *every* C_{alpha,beta} centrality --
classic closeness, harmonic, exponentially decaying, and arbitrary
node-filtered variants decided after the fact.  This example ranks nodes
by three different centralities, validates the rankings against exact
computation, and demonstrates a post-hoc beta filter.

Run:  python examples/social_network_centrality.py
"""

import time

from repro import HashFamily, build_ads_set
from repro.centrality import (
    all_closeness_centralities,
    harmonic_centrality,
    top_k_central_nodes,
)
from repro.estimators.statistics import exponential_decay_kernel
from repro.graph import barabasi_albert_graph
from repro.graph.properties import harmonic_centrality_exact


def main() -> None:
    graph = barabasi_albert_graph(800, 4, seed=11)
    print(f"graph: {graph}")

    start = time.perf_counter()
    ads_set = build_ads_set(graph, k=24, family=HashFamily(13))
    build_time = time.perf_counter() - start
    print(f"ADS set built in {build_time:.2f}s\n")

    # --- classic closeness ranking ------------------------------------
    classic = all_closeness_centralities(ads_set, classic=True)
    print("top-5 by (estimated) classic closeness:")
    for node, value in top_k_central_nodes(classic, 5):
        print(f"  node {node:4d}  closeness {value:.4f}  degree "
              f"{graph.out_degree(node)}")

    # --- harmonic centrality vs exact ----------------------------------
    print("\nharmonic centrality, estimate vs exact (5 sample nodes):")
    for node in (0, 100, 300, 500, 799):
        estimate = harmonic_centrality(ads_set[node])
        exact = harmonic_centrality_exact(graph, node)
        print(
            f"  node {node:4d}  estimate {estimate:8.1f}  exact "
            f"{exact:8.1f}  error {estimate / exact - 1:+.1%}"
        )

    # --- exponential-decay centrality ----------------------------------
    decay = all_closeness_centralities(
        ads_set, alpha=exponential_decay_kernel()
    )
    print("\ntop-5 by exponential-decay centrality (alpha = 2^-d):")
    for node, value in top_k_central_nodes(decay, 5):
        print(f"  node {node:4d}  value {value:8.1f}")

    # --- beta filter decided after the sketches were built -------------
    # "Which nodes are closest to the early adopters (ids < 50)?"
    early = all_closeness_centralities(
        ads_set,
        alpha=exponential_decay_kernel(),
        beta=lambda u: 1.0 if u < 50 else 0.0,
    )
    print("\ntop-5 by proximity to early adopters (post-hoc beta filter):")
    for node, value in top_k_central_nodes(early, 5):
        print(f"  node {node:4d}  value {value:8.2f}")


if __name__ == "__main__":
    main()
