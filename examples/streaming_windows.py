"""Time-decaying stream statistics with a recency ADS (Section 3.1).

The second streaming variant of the paper: sketch elements by *most
recent* occurrence so that recent activity dominates.  The same HIP
machinery then answers sliding-window distinct counts and arbitrary
time-decay sums -- e.g. "how many distinct users were active in the last
hour?" or "activity mass with 30-minute half-life" -- from one small
sketch.

Run:  python examples/streaming_windows.py
"""

import random

from repro import HashFamily, RecentOccurrenceStreamADS


def main() -> None:
    horizon = 100_000.0  # any bound beyond the end of the stream
    k = 48
    ads = RecentOccurrenceStreamADS(k, HashFamily(29), horizon=horizon)

    # Simulate a day of user activity: 5000 users, Poisson-ish bursts;
    # users with smaller ids are more active.
    rng = random.Random(4)
    users = 5_000
    now = 0.0
    active_log = []  # (user, time) ground truth
    for _ in range(60_000):
        now += rng.expovariate(1.0)
        user = min(int(rng.paretovariate(1.2)), users - 1)
        ads.add(user, now)
        active_log.append((user, now))

    print(f"processed {len(active_log)} events, sketch holds {len(ads)} "
          f"entries (k = {k})\n")

    # --- sliding-window distinct users ---------------------------------
    print(f"{'window':>10} {'estimate':>10} {'exact':>8} {'error':>8}")
    for window in (100.0, 1_000.0, 10_000.0):
        estimate = ads.distinct_count_within(window, now=now)
        exact = len(
            {u for u, t in active_log if now - t <= window}
        )
        print(
            f"{window:>10.0f} {estimate:>10.1f} {exact:>8} "
            f"{estimate / exact - 1:>+8.1%}"
        )

    # --- exponentially decaying activity mass --------------------------
    half_life = 500.0
    estimate = ads.decayed_sum(
        lambda age: 2.0 ** (-age / half_life), now=now
    )
    last_seen = {}
    for u, t in active_log:
        last_seen[u] = max(t, last_seen.get(u, t))
    exact = sum(
        2.0 ** (-(now - t) / half_life) for t in last_seen.values()
    )
    print(
        f"\ndecayed activity (half-life {half_life:.0f}): "
        f"estimate {estimate:.1f}  exact {exact:.1f}  "
        f"error {estimate / exact - 1:+.1%}"
    )


if __name__ == "__main__":
    main()
