"""Distance distribution of a directed "Web graph" via hyperANF + HIP.

ANF/hyperANF (Appendix B.1) estimate the neighborhood function of every
node simultaneously with per-round sketch unions; the paper's proposal is
to read the estimates through HIP instead of the HLL estimator -- same
computation, better accuracy.  This example runs both on a directed
random graph, reports the estimated number of reachable pairs per radius
against exact values, and derives the effective diameter.

Run:  python examples/web_graph_distance_distribution.py
"""

from repro import HashFamily
from repro.centrality import HyperANF
from repro.graph import gnp_random_graph
from repro.graph.properties import distance_distribution


def main() -> None:
    graph = gnp_random_graph(600, 0.008, seed=15, directed=True)
    print(f"graph: {graph}")

    exact = dict(distance_distribution(graph))
    total_pairs = max(exact.values())

    anf = HyperANF(graph, k=64, family=HashFamily(31))
    print(f"\n{'radius':>7} {'HIP pairs':>12} {'HLL pairs':>12} "
          f"{'exact':>9} {'HIP err':>9} {'HLL err':>9}")
    radius = 0
    while anf.advance() and radius < 12:
        radius += 1
        hip = anf.total_pairs("hip")
        basic = anf.total_pairs("basic")
        true = exact.get(float(radius))
        if true is None:
            continue
        print(
            f"{radius:>7} {hip:>12.0f} {basic:>12.0f} {true:>9} "
            f"{hip / true - 1:>+9.1%} {basic / true - 1:>+9.1%}"
        )

    # Effective diameter: smallest d covering 90% of connected pairs.
    target = 0.9 * total_pairs
    estimate_d = None
    anf2 = HyperANF(graph, k=64, family=HashFamily(31))
    radius = 0
    while anf2.advance() and radius < 40:
        radius += 1
        if anf2.total_pairs("hip") >= target and estimate_d is None:
            estimate_d = radius
            break
    exact_d = next(d for d, c in sorted(exact.items()) if c >= target)
    print(
        f"\neffective diameter (90%): estimated {estimate_d}, "
        f"exact {exact_d:.0f}"
    )


if __name__ == "__main__":
    main()
