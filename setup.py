"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e . --no-use-pep517`` (legacy develop mode) works offline.
"""

from setuptools import setup

setup()
