"""adsketch: All-Distances Sketches with HIP estimators.

A complete, from-scratch reproduction of

    Edith Cohen, "All-Distances Sketches, Revisited: HIP Estimators for
    Massive Graphs Analysis", PODS 2014 (arXiv:1306.3284).

Quickstart
----------
>>> from repro import build_ads_set, HashFamily
>>> from repro.graph import barabasi_albert_graph
>>> graph = barabasi_albert_graph(500, 3, seed=1)
>>> ads = build_ads_set(graph, k=16, family=HashFamily(7))
>>> 0.8 < ads[0].reachable_count() / graph.num_nodes < 1.2  # ~1.0
True

Subpackages
-----------
``repro.graph``       graph substrate, generators, exact ground truth
``repro.rand``        hashing and rank assignments
``repro.sketches``    MinHash sketches (3 flavors) and HyperLogLog
``repro.ads``         All-Distances Sketches: containers and builders
``repro.estimators``  basic / HIP / permutation / size estimators, bounds
``repro.counters``    Morris counters and the streaming HIP counter
``repro.centrality``  closeness centralities and neighborhood functions
``repro.streams``     stream workload generators
``repro.eval``        the simulation harness behind the paper's figures
"""

from repro.ads import (
    AdsIndex,
    BottomKADS,
    BuildStats,
    FirstOccurrenceStreamADS,
    KMinsADS,
    KPartitionADS,
    RecentOccurrenceStreamADS,
    build_ads_set,
)
from repro.counters import HipDistinctCounter, MorrisCounter, algorithm3_counter
from repro.graph import CSRGraph, Graph
from repro.rand import HashFamily
from repro.sketches import (
    BottomKSketch,
    HyperLogLog,
    KMinsSketch,
    KPartitionSketch,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "CSRGraph",
    "AdsIndex",
    "HashFamily",
    "build_ads_set",
    "BuildStats",
    "BottomKADS",
    "KMinsADS",
    "KPartitionADS",
    "FirstOccurrenceStreamADS",
    "RecentOccurrenceStreamADS",
    "BottomKSketch",
    "KMinsSketch",
    "KPartitionSketch",
    "HyperLogLog",
    "MorrisCounter",
    "HipDistinctCounter",
    "algorithm3_counter",
    "__version__",
]
