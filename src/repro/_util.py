"""Small shared helpers used across subpackages."""

from __future__ import annotations

import heapq
import math
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

from repro.errors import ParameterError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ParameterError` with *message* unless *condition* holds."""
    if not condition:
        raise ParameterError(message)


@contextmanager
def atomic_output(path: Union[str, Path]) -> Iterator:
    """Yield a binary handle whose contents replace *path* atomically.

    The bytes land in a temp file in the same directory, are flushed
    and ``fsync``'d, and only then renamed over *path* (``os.replace``,
    atomic on POSIX) -- so readers, and a process restarting after a
    crash, observe either the complete old file or the complete new
    one, never a torn hybrid.  On failure the temp file is removed and
    *path* is untouched.  The parent directory is fsync'd afterwards
    (best effort) so the rename itself survives a power cut.
    """
    target = Path(path)
    tmp = target.parent / f".{target.name}.tmp.{os.getpid()}"
    handle = open(tmp, "wb")
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp, target)
    try:
        dir_fd = os.open(target.parent or Path("."), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - directories not fsync-able
        pass
    finally:
        os.close(dir_fd)


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number H_n = sum_{j=1}^{n} 1/j.

    Uses the exact sum for small ``n`` and the asymptotic expansion
    ``ln n + gamma + 1/(2n) - 1/(12 n^2)`` for large ``n`` (error < 1e-12
    already for n around 100, far below any tolerance used in this library).
    """
    require(n >= 0, f"harmonic_number requires n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n < 256:
        return sum(1.0 / j for j in range(1, n + 1))
    euler_gamma = 0.57721566490153286060651209008240243
    return math.log(n) + euler_gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def kth_smallest(values: Iterable[float], k: int, sup: float = 1.0) -> float:
    """Return the k-th smallest value, or *sup* if fewer than ``k`` values.

    This is the paper's ``kth_r(N)`` operator (Section 2): when ``|N| < k``
    the result is the supremum of the rank range (1 for uniform ranks,
    ``math.inf`` for exponential ranks).
    """
    require(k >= 1, f"kth_smallest requires k >= 1, got {k}")
    smallest = heapq.nsmallest(k, values)
    if len(smallest) < k:
        return sup
    return smallest[-1]


def is_sorted(seq: Sequence[float]) -> bool:
    """Return True when *seq* is non-decreasing."""
    return all(seq[i] <= seq[i + 1] for i in range(len(seq) - 1))


def log_spaced_checkpoints(max_value: int, per_decade: int = 10) -> list[int]:
    """Return sorted unique integers log-spaced in [1, max_value].

    Used by the evaluation harness to pick the cardinalities at which
    estimates are recorded (the paper's figures use log-scaled x axes).
    """
    require(max_value >= 1, f"max_value must be >= 1, got {max_value}")
    require(per_decade >= 1, f"per_decade must be >= 1, got {per_decade}")
    points: set[int] = {1, max_value}
    decades = math.log10(max_value)
    total = max(2, int(round(decades * per_decade)))
    for i in range(total + 1):
        value = int(round(10 ** (i * decades / total)))
        points.add(min(max(value, 1), max_value))
    return sorted(points)
