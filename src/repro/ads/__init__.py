"""All-Distances Sketches: containers, builders, stream variants.

The main entry point is :func:`build_ads_set`, which builds the ADS of
every node of a graph in any flavor ('bottomk', 'kmins', 'kpartition')
with any construction method ('pruned_dijkstra', 'dp', 'local_updates'),
in either direction ('forward' = distances from the node, 'backward' =
distances to the node), optionally (1+eps)-approximate, optionally with
Section-9 node weights.

All methods produce *identical* sketches for the same inputs (they share
the rank assignment and the Appendix-B.3 tie-broken scan order); they
differ only in work profile, which :class:`BuildStats` exposes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro._util import require
from repro.ads.base import (
    FLAVOR_CLASSES as _FLAVOR_CLASSES,
    BaseADS,
    BottomKADS,
    KMinsADS,
    KPartitionADS,
)
from repro.ads.csr_cores import (
    CSR_METHODS,
    build_flat_entries,
    dp_core_csr,
    pruned_dijkstra_core_csr,
    records_to_entries,
)
from repro.ads.dynamic import UpdateResult, propagate_edge_insertions
from repro.ads.dynamic_programming import dp_core
from repro.ads.entry import AdsEntry
from repro.ads.index import AdsIndex
from repro.ads.local_updates import local_updates_core
from repro.ads.no_tiebreak import NoTiebreakADS, build_no_tiebreak_ads
from repro.ads.parallel import build_flat_entries_sharded, plan_shards
from repro.ads.pruned_dijkstra import BuildStats, pruned_dijkstra_core
from repro.ads.streaming import (
    FirstOccurrenceStreamADS,
    RecentOccurrenceStreamADS,
)
from repro.ads.weighted import WeightedBottomKADS, exponential_rank_assignment
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Graph, Node
from repro.rand.hashing import HashFamily
from repro.rand.ranks import ExponentialRanks

__all__ = [
    "AdsEntry",
    "AdsIndex",
    "BaseADS",
    "BottomKADS",
    "KMinsADS",
    "KPartitionADS",
    "WeightedBottomKADS",
    "NoTiebreakADS",
    "build_no_tiebreak_ads",
    "BuildStats",
    "build_ads_set",
    "build_flat_entries_sharded",
    "plan_shards",
    "dp_core_csr",
    "pruned_dijkstra_core_csr",
    "FirstOccurrenceStreamADS",
    "RecentOccurrenceStreamADS",
    "UpdateResult",
    "propagate_edge_insertions",
    "exponential_rank_assignment",
]

_CORES = {
    "pruned_dijkstra": pruned_dijkstra_core,
    "dp": dp_core,
    "local_updates": local_updates_core,
}


def build_ads_set(
    graph: Graph,
    k: int,
    family: Optional[HashFamily] = None,
    flavor: str = "bottomk",
    method: str = "auto",
    direction: str = "forward",
    epsilon: float = 0.0,
    node_weights: Optional[Callable[[Hashable], float]] = None,
    seed: int = 0,
    stats: Optional[BuildStats] = None,
    backend: str = "auto",
    workers: int = 1,
    shards: Optional[int] = None,
) -> Dict[Node, BaseADS]:
    """Build the ADS of every node of *graph*.

    Parameters
    ----------
    graph:
        Directed or undirected, weighted or unweighted graph.
    k:
        Sketch parameter (expected ADS size is about k(1 + ln n - ln k),
        Lemma 2.2).
    family:
        Hash family for ranks/buckets/tiebreaks; defaults to
        ``HashFamily(seed)``.  Sketch sets built with the same family are
        coordinated across graphs and runs.
    flavor:
        'bottomk' (default), 'kmins', or 'kpartition'.
    method:
        'pruned_dijkstra' (any graph), 'dp' (unweighted only),
        'local_updates' (any graph, required for epsilon > 0), or 'auto'
        (= 'dp' on unweighted graphs, 'pruned_dijkstra' otherwise).
    direction:
        'forward' sketches distances *from* each node; 'backward'
        sketches distances *to* each node (runs on the transpose).
    epsilon:
        (1+eps)-approximate construction (LOCALUPDATES only; Section 3).
    node_weights:
        Section 9 beta: builds with Exp(beta) ranks and returns
        :class:`WeightedBottomKADS` objects (flavor must be 'bottomk').
    stats:
        Optional :class:`BuildStats` to receive work counters.
    backend:
        'legacy' (adjacency-dict cores), 'csr' (integer-ID flat-array
        cores; converts a ``Graph`` input via ``to_csr()``), or 'auto'
        (the default: 'csr' whenever the requested build is CSR-capable
        -- ``Graph`` inputs are converted, the O(n + m) conversion being
        dwarfed by the build itself -- and 'legacy' otherwise).  Both
        backends produce *identical* sketches; the CSR backend is the
        fast path but does not cover ``method='local_updates'``,
        ``epsilon > 0``, or ``node_weights``.
    workers / shards:
        ``workers > 1`` runs the sharded multi-process CSR build
        (:mod:`repro.ads.parallel`): candidates are split into *shards*
        shards (default: one per worker), scanned in worker processes,
        and merged by exact competition replay into the bit-identical
        serial sketch set.  Requires a CSR-capable request
        (``backend != 'legacy'``, exact methods, no node weights).

    Returns:
        A dict mapping each node to its ADS object (flavor class per
        the ``flavor`` argument).

    Raises:
        ParameterError: out-of-domain arguments or impossible
            method/flavor/backend combinations (each message names the
            offending argument).

    Example:
        >>> from repro.graph import path_graph
        >>> ads_set = build_ads_set(path_graph(4), k=4)
        >>> sorted(ads_set)
        [0, 1, 2, 3]
        >>> ads_set[0].cardinality_at(1.0)  # k >= n: estimates exact
        2.0
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    require(workers >= 1, f"workers must be >= 1, got {workers}")
    if shards is not None:
        require(shards >= 1, f"shards must be >= 1, got {shards}")
    parallel_requested = workers > 1 or shards is not None
    if family is None:
        family = HashFamily(seed)
    if direction not in ("forward", "backward"):
        raise ParameterError(f"unknown direction {direction!r}")
    if backend not in ("auto", "legacy", "csr"):
        raise ParameterError(
            f"unknown backend {backend!r}; expected 'auto', 'legacy', or 'csr'"
        )
    if direction == "backward":
        graph = graph.transpose()
    method_was_auto = method == "auto"
    if method_was_auto:
        method = "dp" if not graph.is_weighted() and epsilon == 0.0 else (
            "local_updates" if epsilon > 0.0 else "pruned_dijkstra"
        )
    if method not in _CORES:
        raise ParameterError(
            f"unknown method {method!r}; expected one of {sorted(_CORES)}"
        )
    if epsilon > 0.0 and method != "local_updates":
        raise ParameterError(
            "epsilon > 0 requires method='local_updates' (Section 3)"
        )
    if stats is None:
        stats = BuildStats()

    # ------------------------------------------------------------------
    # Backend dispatch: the CSR fast path covers the exact builders
    # (PRUNEDDIJKSTRA / DP) for the three standard flavors.
    # ------------------------------------------------------------------
    csr_capable = (
        method in CSR_METHODS
        and node_weights is None
        and flavor in _FLAVOR_CLASSES
    )
    if backend == "csr" and not csr_capable:
        raise ParameterError(
            "backend='csr' supports the exact builders "
            f"{sorted(CSR_METHODS)} for flavors "
            f"{sorted(_FLAVOR_CLASSES)} without node_weights; requested "
            f"method={method!r}, flavor={flavor!r}"
            + (", node_weights" if node_weights is not None else "")
        )
    use_csr = csr_capable and backend in ("csr", "auto")
    if parallel_requested and not use_csr:
        raise ParameterError(
            "workers/shards require the CSR backend (exact builders "
            f"{sorted(CSR_METHODS)}, no node_weights, backend != 'legacy'); "
            f"requested backend={backend!r}, method={method!r}"
            + (", node_weights" if node_weights is not None else "")
        )
    if use_csr:
        csr_graph = graph if isinstance(graph, CSRGraph) else graph.to_csr()
        if method_was_auto:
            # Both exact cores emit identical sketches; on the CSR
            # backend the scan-based core is the faster of the two.
            method = "pruned_dijkstra"
        if parallel_requested:
            flat = build_flat_entries_sharded(
                csr_graph, k, family, flavor, method, stats,
                workers=workers, shards=shards,
            )
        else:
            flat = build_flat_entries(
                csr_graph, k, family, flavor, method, stats
            )
        labels = csr_graph.nodes()
        flavor_class = _FLAVOR_CLASSES[flavor]
        return {
            labels[v]: flavor_class(
                labels[v], k, records_to_entries(flat[v], labels), family
            )
            for v in range(csr_graph.num_nodes)
        }
    if isinstance(graph, CSRGraph):
        graph = graph.to_graph()  # legacy cores need the adjacency dicts
    core = _CORES[method]
    kwargs = {"epsilon": epsilon} if method == "local_updates" else {}
    tiebreak_of = family.tiebreak
    nodes = graph.nodes()

    if node_weights is not None:
        if flavor != "bottomk":
            raise ParameterError(
                "node_weights (Section 9) is implemented for the bottom-k "
                "flavor"
            )
        rank_map = ExponentialRanks(family, weight=node_weights)
        entries = core(
            graph, nodes, k, rank_map.rank, tiebreak_of, stats, **kwargs
        )
        return {
            v: WeightedBottomKADS(v, k, entry_list, family, node_weights)
            for v, entry_list in entries.items()
        }

    if flavor == "bottomk":
        entries = core(
            graph, nodes, k, lambda u: family.rank(u, 0), tiebreak_of,
            stats, **kwargs,
        )
        return {
            v: BottomKADS(v, k, entry_list, family)
            for v, entry_list in entries.items()
        }

    if flavor == "kmins":
        merged: Dict[Node, list] = {v: [] for v in nodes}
        for h in range(k):
            run = core(
                graph, nodes, 1,
                lambda u, _h=h: family.rank(u, _h), tiebreak_of,
                stats, permutation=h, **kwargs,
            )
            for v, entry_list in run.items():
                merged[v].extend(entry_list)
        return {
            v: KMinsADS(v, k, entry_list, family)
            for v, entry_list in merged.items()
        }

    if flavor == "kpartition":
        merged = {v: [] for v in nodes}
        buckets: Dict[int, list] = {h: [] for h in range(k)}
        for u in nodes:
            buckets[family.bucket(u, k)].append(u)
        for h in range(k):
            if not buckets[h]:
                continue
            run = core(
                graph, buckets[h], 1,
                lambda u: family.rank(u, 0), tiebreak_of,
                stats, bucket=h, **kwargs,
            )
            for v, entry_list in run.items():
                merged[v].extend(entry_list)
        return {
            v: KPartitionADS(v, k, entry_list, family)
            for v, entry_list in merged.items()
        }

    raise ParameterError(
        f"unknown flavor {flavor!r}; expected 'bottomk', 'kmins', or "
        "'kpartition'"
    )
