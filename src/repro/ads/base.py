"""ADS container classes: bottom-k, k-mins, k-partition.

Each class stores the source node, the parameter k, and the entries in
scan order, and exposes the full estimator surface of the paper:

* ``minhash_at(d)`` -- the MinHash sketch of N_d(source) (Section 2);
* ``basic_cardinality_at(d)`` -- Section 4 estimators on that sketch;
* ``hip_weights()`` / ``cardinality_at(d)`` -- HIP (Section 5);
* ``size_cardinality_at(d)`` -- the ADS-size estimator (Section 8);
* ``q_statistic`` / ``centrality`` -- Q_g and C_{alpha,beta} (Eqs. 1-3);
* ``neighborhood_function()`` -- the estimated distance distribution.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro._util import require
from repro.errors import EstimatorError
from repro.ads.entry import AdsEntry
from repro.estimators.basic import (
    bottom_k_cardinality,
    k_mins_cardinality,
    k_partition_cardinality,
)
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)
from repro.estimators.naive import naive_q_statistic
from repro.estimators.size import size_cardinality_estimate
from repro.estimators.statistics import (
    closeness_centrality_estimate,
    q_statistic_estimate,
)
from repro.rand.hashing import HashFamily


class BaseADS:
    """Shared plumbing for the three ADS flavors."""

    flavor = "abstract"

    def __init__(
        self,
        source: Hashable,
        k: int,
        entries: Sequence[AdsEntry],
        family: HashFamily,
        rank_sup: float = 1.0,
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        self.source = source
        self.k = int(k)
        self.family = family
        self.rank_sup = float(rank_sup)
        self.entries: List[AdsEntry] = sorted(entries)
        self._distances = [e.distance for e in self.entries]
        self._entry_nodes = frozenset(e.node for e in self.entries)
        self._hip_weights: Optional[List[float]] = None
        if not self.entries or self.entries[0].node != source:
            raise EstimatorError(
                f"ADS of {source!r} must start with the source at distance 0"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._entry_nodes

    def nodes(self) -> List[Hashable]:
        return [e.node for e in self.entries]

    def distances(self) -> List[float]:
        return list(self._distances)

    def size_at(self, d: float = math.inf) -> int:
        """Number of entries within distance d (distinct nodes for
        bottom-k / k-partition; k-mins overrides to deduplicate)."""
        return bisect.bisect_right(self._distances, d)

    # ------------------------------------------------------------------
    # HIP estimation (flavor subclasses provide _compute_hip_weights)
    # ------------------------------------------------------------------
    def hip_weights(self) -> List[float]:
        """Adjusted weight a_{source,j} for each entry, in scan order."""
        if self._hip_weights is None:
            self._hip_weights = self._compute_hip_weights()
        return self._hip_weights

    def _compute_hip_weights(self) -> List[float]:
        raise NotImplementedError

    def cardinality_at(self, d: float = math.inf) -> float:
        """HIP estimate of n_d(source) -- sum of adjusted weights within d
        (Section 5).  Exact whenever n_d <= k."""
        weights = self.hip_weights()
        cutoff = self.size_at(d)
        return sum(weights[:cutoff])

    def reachable_count(self) -> float:
        """HIP estimate of the number of reachable nodes (alpha = 1)."""
        return self.cardinality_at(math.inf)

    def neighborhood_function(self) -> List[Tuple[float, float]]:
        """Estimated cumulative distance distribution of the source:
        ``(distance, n_distance-hat)`` at each distinct entry distance."""
        weights = self.hip_weights()
        result: List[Tuple[float, float]] = []
        running = 0.0
        for entry, weight in zip(self.entries, weights):
            running += weight
            if result and result[-1][0] == entry.distance:
                result[-1] = (entry.distance, running)
            else:
                result.append((entry.distance, running))
        return result

    def q_statistic(
        self,
        g: Callable[[Hashable, float], float],
        include_source: bool = True,
    ) -> float:
        """HIP estimate of Q_g(source) = sum_j g(j, d_ij)  (Equation 5)."""
        return q_statistic_estimate(
            self.nodes(), self._distances, self.hip_weights(), g,
            include_source=include_source,
        )

    def centrality(
        self,
        alpha: Optional[Callable[[float], float]] = None,
        beta: Optional[Callable[[Hashable], float]] = None,
    ) -> float:
        """HIP estimate of C_{alpha,beta}(source)  (Equation 3); with the
        default alpha=None this is the sum of distances (inverse classic
        closeness)."""
        return closeness_centrality_estimate(
            self.nodes(), self._distances, self.hip_weights(),
            alpha=alpha, beta=beta,
        )

    def naive_q_statistic(
        self,
        g: Callable[[Hashable, float], float],
        include_source: bool = True,
    ) -> float:
        """The introduction's baseline: reachable-set MinHash sample mean
        times estimated reachable count.  For variance comparisons."""
        triples = [(e.rank, e.node, e.distance) for e in self.entries]
        return naive_q_statistic(
            triples, self.k, g, include_source=include_source
        )

    # ------------------------------------------------------------------
    # Size-only estimation (Section 8)
    # ------------------------------------------------------------------
    def size_cardinality_at(self, d: float = math.inf) -> float:
        """Cardinality estimate using only the entry count (Lemma 8.1)."""
        return size_cardinality_estimate(self.size_at(d), self.k)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(source={self.source!r}, k={self.k}, "
            f"entries={len(self.entries)})"
        )


class BottomKADS(BaseADS):
    """Bottom-k flavor: entry iff rank among k smallest of closer nodes
    (Equation 4)."""

    flavor = "bottomk"

    def _compute_hip_weights(self) -> List[float]:
        return bottom_k_adjusted_weights(
            [e.rank for e in self.entries], self.k
        )

    def minhash_at(self, d: float = math.inf) -> List[Tuple[float, Hashable]]:
        """The bottom-k MinHash sketch of N_d(source): the k smallest
        (rank, node) pairs among entries within d (Section 2)."""
        cutoff = self.size_at(d)
        pairs = sorted(
            (e.rank, e.node) for e in self.entries[:cutoff]
        )
        return pairs[: self.k]

    def basic_cardinality_at(self, d: float = math.inf) -> float:
        """Basic bottom-k estimate on the extracted sketch (Section 4.2)."""
        sketch = self.minhash_at(d)
        tau = sketch[-1][0] if len(sketch) >= self.k else self.rank_sup
        return bottom_k_cardinality(
            len(sketch), tau, self.k, sup=self.rank_sup
        )


class KMinsADS(BaseADS):
    """k-mins flavor: k independent bottom-1 sketches (Section 2).

    Entries carry their ``permutation`` index; one node may appear in
    several permutations (at the same distance).  The *merged* view used
    for HIP deduplicates nodes and attaches the full rank vector.
    """

    flavor = "kmins"

    def __init__(self, source, k, entries, family, rank_sup=1.0):
        super().__init__(source, k, entries, family, rank_sup)
        # Merged scan order: distinct nodes by (distance, tiebreak).
        seen = set()
        merged: List[AdsEntry] = []
        for e in self.entries:
            if e.node in seen:
                continue
            seen.add(e.node)
            merged.append(e)
        self._merged = merged
        self._merged_distances = [e.distance for e in merged]

    def merged_entries(self) -> List[AdsEntry]:
        """Distinct nodes of the union of the k bottom-1 sketches."""
        return list(self._merged)

    def size_at(self, d: float = math.inf) -> int:
        """Distinct nodes within d (not raw per-permutation entries)."""
        return bisect.bisect_right(self._merged_distances, d)

    def _rank_vector(self, node: Hashable) -> List[float]:
        return [self.family.rank(node, h) for h in range(self.k)]

    def _compute_hip_weights(self) -> List[float]:
        vectors = [self._rank_vector(e.node) for e in self._merged]
        return k_mins_adjusted_weights(vectors, self.k)

    # HIP helpers operate on the merged view, so rebind the accessors.
    def nodes(self) -> List[Hashable]:
        return [e.node for e in self._merged]

    def distances(self) -> List[float]:
        return list(self._merged_distances)

    def cardinality_at(self, d: float = math.inf) -> float:
        weights = self.hip_weights()
        cutoff = self.size_at(d)
        return sum(weights[:cutoff])

    def neighborhood_function(self) -> List[Tuple[float, float]]:
        weights = self.hip_weights()
        result: List[Tuple[float, float]] = []
        running = 0.0
        for entry, weight in zip(self._merged, weights):
            running += weight
            if result and result[-1][0] == entry.distance:
                result[-1] = (entry.distance, running)
            else:
                result.append((entry.distance, running))
        return result

    def q_statistic(self, g, include_source: bool = True) -> float:
        return q_statistic_estimate(
            self.nodes(), self._merged_distances, self.hip_weights(), g,
            include_source=include_source,
        )

    def centrality(self, alpha=None, beta=None) -> float:
        return closeness_centrality_estimate(
            self.nodes(), self._merged_distances, self.hip_weights(),
            alpha=alpha, beta=beta,
        )

    def minhash_at(self, d: float = math.inf) -> List[float]:
        """The k-mins MinHash sketch of N_d(source): per-permutation
        minimum rank within distance d (1.0 when the permutation's
        bottom-1 ADS has no entry that close)."""
        minima = [1.0] * self.k
        for e in self.entries:
            if e.distance > d:
                break
            h = e.permutation
            if e.rank < minima[h]:
                minima[h] = e.rank
        return minima

    def basic_cardinality_at(self, d: float = math.inf) -> float:
        """Basic k-mins estimate (Section 4.1) on the extracted sketch."""
        return k_mins_cardinality(self.minhash_at(d))


class KPartitionADS(BaseADS):
    """k-partition flavor: per-bucket bottom-1 competition (Section 2)."""

    flavor = "kpartition"

    def _compute_hip_weights(self) -> List[float]:
        return k_partition_adjusted_weights(
            [(e.bucket, e.rank) for e in self.entries], self.k
        )

    def minhash_at(
        self, d: float = math.inf
    ) -> Tuple[List[float], List[Optional[Hashable]]]:
        """The k-partition MinHash sketch of N_d(source): per-bucket
        minimum rank and the achieving node (None for empty buckets)."""
        minima = [1.0] * self.k
        argmin: List[Optional[Hashable]] = [None] * self.k
        for e in self.entries:
            if e.distance > d:
                break
            if e.rank < minima[e.bucket] or argmin[e.bucket] is None:
                minima[e.bucket] = e.rank
                argmin[e.bucket] = e.node
        return minima, argmin

    def basic_cardinality_at(self, d: float = math.inf) -> float:
        """Basic k-partition estimate (Section 4.3)."""
        minima, argmin = self.minhash_at(d)
        return k_partition_cardinality(minima, argmin)


#: The one canonical flavor-name -> container-class mapping, shared by
#: ``build_ads_set`` and ``AdsIndex`` so the two paths can never disagree
#: on which flavors exist.
FLAVOR_CLASSES = {
    "bottomk": BottomKADS,
    "kmins": KMinsADS,
    "kpartition": KPartitionADS,
}
