"""Integer-ID ADS builder cores over the CSR graph backend.

These are the flat-array counterparts of :func:`pruned_dijkstra_core` and
:func:`dp_core`: same competitions, same Appendix-B.3 tie-broken scan
order, provably identical output sketches (the equivalence tests assert
it entry-by-entry), but node labels never appear inside the hot loops --
every per-node structure is a preallocated list indexed by dense id, and
the k-smallest-key competition at each node is a bounded max-heap instead
of an unbounded sorted insert (O(log k) per insertion instead of
O(sketch size)).

Entries are produced as plain *records* -- tuples
``(distance, tiebreak, node_id, rank, bucket, permutation)`` -- so the
caller chooses the materialisation: :func:`records_to_entries` boxes them
into :class:`AdsEntry` objects for the legacy ``BaseADS`` containers,
while :class:`~repro.ads.index.AdsIndex` packs them straight into flat
columns without ever creating per-entry objects.
"""

from __future__ import annotations

from heapq import heappop, heappush, heapreplace
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple

from repro.ads.entry import AdsEntry
from repro.ads.pruned_dijkstra import BuildStats
from repro.errors import GraphError, ParameterError
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

# (distance, tiebreak, node_id, rank, bucket, permutation) in scan order.
Record = Tuple[float, int, int, float, Optional[int], Optional[int]]

_SCAN_KEY = itemgetter(0, 1)


def pruned_dijkstra_core_csr(
    graph: CSRGraph,
    candidates: Sequence[int],
    k: int,
    ranks: Sequence[float],
    tiebreaks: Sequence[int],
    stats: BuildStats,
    bucket: Optional[int] = None,
    permutation: Optional[int] = None,
) -> List[List[Record]]:
    """One bottom-k competition among candidate *ids* (PRUNEDDIJKSTRA).

    *ranks* and *tiebreaks* are dense per-id arrays.  Scans run on the
    transpose arrays (forward ADS), BFS level-by-level on unweighted
    graphs (no heap at all) and heap-based Dijkstra otherwise.  Returns
    per-node record lists in insertion order (sort with
    ``records.sort(key=scan order)`` or let the caller do it).
    """
    n = graph.num_nodes
    entries: List[List[Record]] = [[] for _ in range(n)]
    # Per node: max-heap (negated keys) of the k smallest (d, tb) keys
    # inserted so far; the root is the k-th smallest competitor key.
    thresholds: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
    order = sorted(candidates, key=ranks.__getitem__)
    insertions = relaxations = 0
    push, replace = heappush, heapreplace
    adjacency = graph.transpose_adjacency_lists()

    if not graph.is_weighted():
        # Unweighted: level-synchronous BFS, no distance heap at all.
        # The competition runs at *enqueue* time (a node's threshold can
        # only change when it accepts this candidate itself, so testing
        # early is equivalent), which keeps pruned nodes out of the
        # frontier entirely.
        neighbor_lists = adjacency
        visit = [-1] * n
        for stamp, u in enumerate(order):
            r_u = ranks[u]
            tb_u = tiebreaks[u]
            ntb_u = -tb_u
            visit[u] = stamp
            heap = thresholds[u]
            # The source is the unique distance-0 node: always accepted.
            if len(heap) >= k:
                replace(heap, (0.0, ntb_u))
            else:
                push(heap, (0.0, ntb_u))
            entries[u].append((0.0, tb_u, u, r_u, bucket, permutation))
            insertions += 1
            frontier = [u]
            d = 1.0
            while frontier:
                key = (-d, ntb_u)
                neg_d = -d
                record = (d, tb_u, u, r_u, bucket, permutation)
                nxt: List[int] = []
                for v in frontier:
                    neighbors = neighbor_lists[v]
                    relaxations += len(neighbors)
                    for w in neighbors:
                        if visit[w] == stamp:
                            continue
                        visit[w] = stamp
                        heap = thresholds[w]
                        if len(heap) >= k:
                            worst_d, worst_tb = heap[0]
                            if worst_d > neg_d or (
                                worst_d == neg_d and worst_tb > ntb_u
                            ):
                                continue  # k strictly-closer entries: prune
                            replace(heap, key)
                        else:
                            push(heap, key)
                        entries[w].append(record)
                        insertions += 1
                        nxt.append(w)
                frontier = nxt
                d += 1.0
        stats.insertions += insertions
        stats.relaxations += relaxations
        return entries

    pop = heappop
    settled = [-1] * n
    for stamp, u in enumerate(order):
        r_u = ranks[u]
        tb_u = tiebreaks[u]
        ntb_u = -tb_u
        heap: List[Tuple[float, int, int]] = [(0.0, tiebreaks[u], u)]
        while heap:
            d, _, v = pop(heap)
            if settled[v] == stamp:
                continue
            settled[v] = stamp
            threshold = thresholds[v]
            neg_d = -d
            if len(threshold) >= k:
                worst_d, worst_tb = threshold[0]
                if worst_d > neg_d or (worst_d == neg_d and worst_tb > ntb_u):
                    continue  # prune: u cannot enter ADS(v) nor behind v
                replace(threshold, (neg_d, ntb_u))
            else:
                push(threshold, (neg_d, ntb_u))
            entries[v].append((d, tb_u, u, r_u, bucket, permutation))
            insertions += 1
            neighbors = adjacency[v]
            relaxations += len(neighbors)
            for w, weight in neighbors:
                if settled[w] != stamp:
                    push(heap, (d + weight, tiebreaks[w], w))
    stats.insertions += insertions
    stats.relaxations += relaxations
    return entries


def dp_core_csr(
    graph: CSRGraph,
    candidates: Sequence[int],
    k: int,
    ranks: Sequence[float],
    tiebreaks: Sequence[int],
    stats: BuildStats,
    bucket: Optional[int] = None,
    permutation: Optional[int] = None,
) -> List[List[Record]]:
    """One bottom-k competition via synchronous rounds (DP builder).

    Unweighted graphs only; rounds equal hop distances, and each node's
    rank competition keeps only the k smallest ranks in a bounded heap.
    """
    if graph.is_weighted():
        raise GraphError(
            "the DP builder requires an unweighted graph; use "
            "method='pruned_dijkstra' or 'local_updates' for weighted graphs"
        )
    n = graph.num_nodes
    in_neighbor_lists = graph.transpose_adjacency_lists()
    entries: List[List[Record]] = [[] for _ in range(n)]
    rank_heaps: List[List[float]] = [[] for _ in range(n)]  # negated ranks
    members: List[set] = [set() for _ in range(n)]

    frontier = {}
    for s in candidates:
        r_s, tb_s = ranks[s], tiebreaks[s]
        entries[s].append((0.0, tb_s, s, r_s, bucket, permutation))
        heappush(rank_heaps[s], -r_s)
        members[s].add(s)
        frontier[s] = [(s, r_s, tb_s)]
        stats.insertions += 1

    t = 0
    while frontier:
        t += 1
        stats.rounds = max(stats.rounds, t)
        distance = float(t)
        proposals: dict = {}
        for u, added in frontier.items():
            for v in in_neighbor_lists[u]:
                stats.relaxations += 1
                bucket_v = proposals.setdefault(v, {})
                member_v = members[v]
                for x, r_x, tb_x in added:
                    if x not in member_v:
                        bucket_v[x] = (r_x, tb_x)
        frontier = {}
        for v, cand in proposals.items():
            heap = rank_heaps[v]
            # Appendix B.3: same-distance candidates enter in tiebreak
            # order, each competing against everything already inserted.
            for x, (r_x, tb_x) in sorted(
                cand.items(), key=lambda item: item[1][1]
            ):
                if len(heap) >= k:
                    if r_x >= -heap[0]:
                        continue
                    heapreplace(heap, -r_x)
                else:
                    heappush(heap, -r_x)
                members[v].add(x)
                entries[v].append((distance, tb_x, x, r_x, bucket, permutation))
                stats.insertions += 1
                frontier.setdefault(v, []).append((x, r_x, tb_x))
    return entries


_CSR_CORES = {
    "pruned_dijkstra": pruned_dijkstra_core_csr,
    "dp": dp_core_csr,
}

CSR_METHODS = frozenset(_CSR_CORES)

# One rank-ordered bottom-k' competition of a flavor's fan-out:
# (k_eff, candidates, ranks, bucket, permutation).  The full flavor
# build is the concatenation of its competitions in list order.
Competition = Tuple[int, Sequence[int], Sequence[float], Optional[int],
                    Optional[int]]


def core_for_method(method: str):
    """The CSR builder core for *method* (ParameterError otherwise)."""
    if method not in _CSR_CORES:
        raise ParameterError(
            f"the CSR backend supports methods {sorted(_CSR_CORES)}, "
            f"got {method!r}"
        )
    return _CSR_CORES[method]


def flavor_competitions(
    graph: CSRGraph, k: int, family: HashFamily, flavor: str
) -> Tuple[List[int], List[Competition]]:
    """The per-id tiebreaks and the competition plan of one flavor.

    Mirrors the flavor fan-out of :func:`repro.ads.build_ads_set`:
    bottom-k is a single k-competition over all nodes, k-mins runs k
    bottom-1 competitions with per-permutation ranks, k-partition runs
    one bottom-1 competition per non-empty hash bucket.  Both the serial
    and the sharded builders execute exactly this plan, in this order --
    which is what makes their merged outputs comparable entry-for-entry.
    """
    labels = graph.nodes()
    n = graph.num_nodes
    tiebreaks = [family.tiebreak(label) for label in labels]
    competitions: List[Competition] = []
    if flavor == "bottomk":
        ranks = [family.rank(label, 0) for label in labels]
        competitions.append((k, range(n), ranks, None, None))
    elif flavor == "kmins":
        for h in range(k):
            ranks = [family.rank(label, h) for label in labels]
            competitions.append((1, range(n), ranks, None, h))
    elif flavor == "kpartition":
        ranks = [family.rank(label, 0) for label in labels]
        buckets: List[List[int]] = [[] for _ in range(k)]
        for node_id, label in enumerate(labels):
            buckets[family.bucket(label, k)].append(node_id)
        for h in range(k):
            if buckets[h]:
                competitions.append((1, buckets[h], ranks, h, None))
    else:
        raise ParameterError(
            f"unknown flavor {flavor!r}; expected 'bottomk', 'kmins', or "
            "'kpartition'"
        )
    return tiebreaks, competitions


def build_flat_entries(
    graph: CSRGraph,
    k: int,
    family: HashFamily,
    flavor: str,
    method: str,
    stats: BuildStats,
) -> List[List[Record]]:
    """All-nodes flat ADS build: one record list per node id, sorted in
    the scan total order (distance, tiebreak).

    Runs the :func:`flavor_competitions` plan serially; the sharded
    counterpart (:func:`repro.ads.parallel.build_flat_entries_sharded`)
    executes the same plan across worker processes and merges to the
    bit-identical result.
    """
    core = core_for_method(method)
    n = graph.num_nodes
    tiebreaks, competitions = flavor_competitions(graph, k, family, flavor)

    if len(competitions) == 1:
        k_eff, candidates, ranks, bucket, permutation = competitions[0]
        per_node = core(
            graph, candidates, k_eff, ranks, tiebreaks, stats,
            bucket, permutation,
        )
    else:
        per_node = [[] for _ in range(n)]
        for k_eff, candidates, ranks, bucket, permutation in competitions:
            run = core(
                graph, candidates, k_eff, ranks, tiebreaks, stats,
                bucket, permutation,
            )
            for v in range(n):
                per_node[v].extend(run[v])

    for records in per_node:
        records.sort(key=_SCAN_KEY)  # stable: k-mins permutations stay ordered
    return per_node


def records_to_entries(
    records: Sequence[Record], labels: Sequence
) -> List[AdsEntry]:
    """Box flat records into :class:`AdsEntry` objects (legacy containers)."""
    return [
        AdsEntry(
            node=labels[node_id],
            distance=distance,
            rank=rank,
            tiebreak=tiebreak,
            bucket=bucket,
            permutation=permutation,
        )
        for distance, tiebreak, node_id, rank, bucket, permutation in records
    ]
