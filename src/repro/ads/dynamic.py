"""Incremental ADS maintenance: pruned re-propagation for edge arrivals.

A sketch set is built once and queried forever -- until the graph
changes.  Rebuilding every sketch because one edge arrived is the
textbook waste the paper's message-passing LOCALUPDATES machinery
(Algorithm 2) avoids: an inserted edge ``(u, v)`` can only change the
ADS of nodes that now reach some entry *through* that edge, so the
update is a fixed-point re-propagation *seeded from the arc targets'
existing sketches* instead of from every node.

The correctness argument is the standard shortest-path relay property:
if ``x`` newly enters (or gets closer in) ``ADS_new(a)``, its new
shortest path crosses an inserted arc ``(u, w)``, and ``x`` belongs to
the updated ADS of *every* node on that path -- so seeding ``u`` with
``ADS(w)``'s entries shifted by the arc weight, then letting accepted
insertions relay along in-arcs exactly as in Algorithm 2, delivers every
new entry.  Eviction needs no extra machinery either: an entry can only
be evicted by smaller-rank entries that got closer, each of which is
itself (re)inserted during the propagation, and the Algorithm 2 clean-up
(:func:`~repro.ads.local_updates.exact_cleanup`) runs after every
insertion.  Distances accumulate hop-by-hop from the entry node outward,
the same float summation order as the from-scratch builders, which is
why the result is *bit-identical* to a rebuild -- the property the
equivalence tests assert column-for-column.

Entry points:

* :func:`propagate_edge_insertions` -- the core: given a graph that
  already contains the new arcs, the per-flavor competition replay over
  only the affected nodes; returns full replacement record lists for
  the dirty nodes.
* :class:`UpdateResult` -- what a batch changed (dirty counts, work
  counters), the shape :meth:`repro.ads.index.AdsIndex.apply_edges`
  returns and the serve layer reports.

The propagation itself is sequential (the relay is a fixed-point
computation over a shared frontier), but the per-slice HIP-weight
recompute it hands back to ``apply_edges`` is per-node independent --
an index wired with ``kernel_workers > 1`` fans the dirty slices
across workers (:mod:`repro.ads.kernels.parallel`), byte-identical to
the serial recompute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._util import require
from repro.ads.csr_cores import Record
from repro.ads.local_updates import NodeState, exact_cleanup
from repro.ads.pruned_dijkstra import BuildStats
from repro.errors import ParameterError
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

_SCAN_KEY = itemgetter(0, 1)

# An inserted/improved directed arc, as returned by CSRGraph.add_edges.
Arc = Tuple[int, int, float]


@dataclass
class UpdateResult:
    """What one ``apply_edges`` batch did to an index.

    Attributes:
        applied_arcs: Directed arcs actually inserted or improved (an
            undirected edge counts twice; duplicate arrivals count 0).
        dirty_nodes: Nodes whose sketch slice was rewritten.
        new_nodes: Labels appended to the index by this batch.
        insertions / evictions / relaxations: Propagation work counters
            (:class:`~repro.ads.pruned_dijkstra.BuildStats` semantics).
    """

    applied_arcs: int = 0
    dirty_nodes: int = 0
    new_nodes: int = 0
    insertions: int = 0
    evictions: int = 0
    relaxations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "applied_arcs": self.applied_arcs,
            "dirty_nodes": self.dirty_nodes,
            "new_nodes": self.new_nodes,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "relaxations": self.relaxations,
        }


@dataclass
class _Competition:
    """One rank competition of the flavor plan (see flavor_competitions)."""

    k_eff: int
    bucket: Optional[int]
    permutation: Optional[int]
    rank_index: int  # hash-permutation index for family.rank
    states: Dict[int, NodeState] = field(default_factory=dict)
    dirty: set = field(default_factory=set)

    def matches(self, record: Record) -> bool:
        if self.permutation is not None:
            return record[5] == self.permutation
        if self.bucket is not None:
            return record[4] == self.bucket
        return True


def _flavor_plan(flavor: str, k: int) -> List[_Competition]:
    """The competition list of *flavor*, in the canonical (builder) order.

    Mirrors :func:`repro.ads.csr_cores.flavor_competitions`: bottom-k is
    one k-competition, k-mins one bottom-1 competition per permutation,
    k-partition one bottom-1 competition per bucket.  Buckets that were
    empty at build time are included -- a new node may populate them.
    """
    if flavor == "bottomk":
        return [_Competition(k, None, None, 0)]
    if flavor == "kmins":
        return [_Competition(1, None, h, h) for h in range(k)]
    if flavor == "kpartition":
        return [_Competition(1, h, None, 0) for h in range(k)]
    raise ParameterError(
        f"unknown flavor {flavor!r}; expected 'bottomk', 'kmins', or "
        "'kpartition'"
    )


def propagate_edge_insertions(
    graph: CSRGraph,
    flavor: str,
    k: int,
    family: HashFamily,
    old_n: int,
    slice_records: Callable[[int], Sequence[Record]],
    new_arcs: Sequence[Arc],
    stats: BuildStats,
) -> Dict[int, List[Record]]:
    """Re-propagate after inserting *new_arcs* into *graph*.

    Args:
        graph: The updated graph (arcs already added; buffered overlay
            arcs are fine -- propagation reads
            ``in_neighbor_id_pairs``).  Node ids ``0..old_n-1`` must be
            the index's labels in id order; ids ``>= old_n`` are new.
        flavor / k / family: The index's sketch parameters.
        old_n: Node count of the index before this batch.
        slice_records: Callback returning the index's *current* record
            list of one node id (scan order), consulted lazily for
            nodes the propagation touches.
        new_arcs: Directed ``(source_id, target_id, weight)`` arcs that
            were inserted or whose weight decreased, exactly as
            :meth:`~repro.graph.csr.CSRGraph.add_edges` returns them.
        stats: Receives insertion/eviction/relaxation counters.

    Returns:
        ``{node_id: records}`` for every node whose sketch changed (new
        nodes included), each list complete, deduplicated across the
        flavor's competitions, and sorted in the scan total order --
        drop-in replacements for the index's column slices.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    labels = graph.nodes()
    n = graph.num_nodes
    require(old_n <= n, f"old_n {old_n} exceeds graph size {n}")
    old_records: Dict[int, Sequence[Record]] = {}

    def records_of(vid: int) -> Sequence[Record]:
        cached = old_records.get(vid)
        if cached is None:
            cached = slice_records(vid)
            old_records[vid] = cached
        return cached

    in_arc_cache: Dict[int, List[Tuple[int, float]]] = {}

    def in_arcs(vid: int) -> List[Tuple[int, float]]:
        cached = in_arc_cache.get(vid)
        if cached is None:
            cached = graph.in_neighbor_id_pairs(vid)
            in_arc_cache[vid] = cached
        return cached

    competitions = _flavor_plan(flavor, k)
    new_ids = range(old_n, n)
    new_tiebreaks = {vid: family.tiebreak(labels[vid]) for vid in new_ids}
    new_buckets = (
        {vid: family.bucket(labels[vid], k) for vid in new_ids}
        if flavor == "kpartition" else {}
    )

    for comp in competitions:
        states = comp.states
        dirty = comp.dirty
        k_eff = comp.k_eff
        queue: deque = deque()

        def get_state(vid: int) -> NodeState:
            st = states.get(vid)
            if st is None:
                st = NodeState()
                if vid < old_n:
                    # Old records are globally scan-sorted; the
                    # competition's subset is therefore sorted too, so
                    # the parallel arrays can be appended directly.
                    for record in records_of(vid):
                        if comp.matches(record):
                            d, tb, node_id, rank = record[:4]
                            st.keys.append((d, tb))
                            st.nodes.append(node_id)
                            st.ranks.append(rank)
                            st.held[node_id] = d
                states[vid] = st
            return st

        def send(v: int, x: int, r_x: float, tb_x: int, d: float) -> None:
            for w_id, weight in in_arcs(v):
                queue.append((w_id, x, r_x, tb_x, d + weight))
                stats.relaxations += 1

        # Seed 1: every inserted arc (a, b, w) re-offers b's current
        # entries to a, shifted by the arc weight; cascades across
        # multiple new arcs ride the normal relay (in_arcs includes
        # the new arcs).
        for a, b, w in new_arcs:
            source = get_state(b)
            for key, node_id, rank in zip(
                source.keys, source.nodes, source.ranks
            ):
                queue.append((a, node_id, rank, key[1], key[0] + w))
                stats.relaxations += 1

        # Seed 2: new nodes are new candidates of their competitions;
        # each holds itself at distance 0 and announces itself.
        for vid in new_ids:
            if comp.bucket is not None and new_buckets[vid] != comp.bucket:
                continue
            r_v = family.rank(labels[vid], comp.rank_index)
            tb_v = new_tiebreaks[vid]
            st = get_state(vid)
            st.insert((0.0, tb_v), vid, r_v)
            stats.insertions += 1
            dirty.add(vid)
            send(vid, vid, r_v, tb_v, 0.0)

        # Asynchronous fixed point (Algorithm 2, exact rule).
        while queue:
            v, x, r_x, tb_x, d = queue.popleft()
            st = get_state(v)
            existing = st.held.get(x)
            if existing is not None and existing <= d:
                continue  # held at least as close already
            if r_x >= st.exact_kth_competitor_rank(k_eff, (d, tb_x)):
                continue  # k smaller ranks strictly closer: pruned
            if existing is not None:
                st.remove_node(x, (existing, tb_x))
                stats.evictions += 1
            st.insert((d, tb_x), x, r_x)
            stats.insertions += 1
            exact_cleanup(st, k_eff, (d, tb_x), stats)
            dirty.add(v)
            send(v, x, r_x, tb_x, d)

    all_dirty: set = set()
    for comp in competitions:
        all_dirty |= comp.dirty

    result: Dict[int, List[Record]] = {}
    for vid in all_dirty:
        records: List[Record] = []
        for comp in competitions:
            st = comp.states.get(vid)
            if st is not None:
                records.extend(
                    (key[0], key[1], node_id, rank, comp.bucket,
                     comp.permutation)
                    for key, node_id, rank in zip(
                        st.keys, st.nodes, st.ranks
                    )
                )
            elif vid < old_n:
                records.extend(
                    record for record in records_of(vid)
                    if comp.matches(record)
                )
        # Stable: same-key records keep competition order, exactly like
        # the from-scratch builder's concatenate-then-sort.
        records.sort(key=_SCAN_KEY)
        result[vid] = records
    return result
