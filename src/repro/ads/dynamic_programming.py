"""DP ADS builder: node-centric Bellman-Ford rounds (unweighted graphs).

Section 3's second meta-approach (k-mins in ANF [41], k-partition in
hyperANF [6], here for all flavors).  Round t relaxes every edge (v, u)
whose sink ADS(u) changed in round t-1; candidates arrive in strictly
increasing hop distance, and within a round in tiebreak order (Appendix
B.3), so -- exactly like PRUNEDDIJKSTRA -- every inserted entry is final.
The two builders provably produce identical ADS sets; the tests assert it.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ads.entry import AdsEntry
from repro.ads.pruned_dijkstra import BuildStats
from repro.errors import GraphError
from repro.graph.digraph import Graph, Node


def dp_core(
    graph: Graph,
    candidates: Sequence[Node],
    k: int,
    rank_of: Callable[[Node], float],
    tiebreak_of: Callable[[Node], int],
    stats: BuildStats,
    bucket: Optional[int] = None,
    permutation: Optional[int] = None,
) -> Dict[Node, List[AdsEntry]]:
    """One bottom-k competition among *candidates* via synchronous rounds.

    Requires an unweighted graph (every edge weight 1); rounds equal hop
    distances.  Forward ADS: ADS(v) absorbs entries from ADS(u) for every
    edge (v, u), i.e. propagation runs along in-edges of the changed node.
    """
    if graph.is_weighted():
        raise GraphError(
            "the DP builder requires an unweighted graph; use "
            "method='pruned_dijkstra' or 'local_updates' for weighted graphs"
        )
    entries: Dict[Node, List[AdsEntry]] = {v: [] for v in graph.nodes()}
    rank_lists: Dict[Node, List[float]] = {v: [] for v in graph.nodes()}
    members: Dict[Node, set] = {v: set() for v in graph.nodes()}
    candidate_set = set(candidates)

    frontier: Dict[Node, List[Tuple[Node, float, int]]] = {}
    for s in graph.nodes():
        if s not in candidate_set:
            continue
        r_s, tb_s = rank_of(s), tiebreak_of(s)
        entries[s].append(
            AdsEntry(
                node=s, distance=0.0, rank=r_s, tiebreak=tb_s,
                bucket=bucket, permutation=permutation,
            )
        )
        insort(rank_lists[s], r_s)
        members[s].add(s)
        frontier[s] = [(s, r_s, tb_s)]
        stats.insertions += 1

    t = 0
    while frontier:
        t += 1
        stats.rounds = max(stats.rounds, t)
        # Gather proposals: entries added at u in the previous round are
        # candidates at hop distance t for every in-neighbor v of u.
        proposals: Dict[Node, Dict[Node, Tuple[float, int]]] = {}
        for u, added in frontier.items():
            for v, _ in graph.in_neighbors(u):
                stats.relaxations += 1
                bucket_v = proposals.setdefault(v, {})
                for x, r_x, tb_x in added:
                    if x not in members[v]:
                        bucket_v[x] = (r_x, tb_x)
        frontier = {}
        for v, cand in proposals.items():
            ranks = rank_lists[v]
            # Appendix B.3: same-distance candidates enter in tiebreak
            # order, each competing against everything already inserted.
            for x, (r_x, tb_x) in sorted(
                cand.items(), key=lambda item: item[1][1]
            ):
                if len(ranks) >= k and r_x >= ranks[k - 1]:
                    continue
                insort(ranks, r_x)
                members[v].add(x)
                entries[v].append(
                    AdsEntry(
                        node=x, distance=float(t), rank=r_x, tiebreak=tb_x,
                        bucket=bucket, permutation=permutation,
                    )
                )
                stats.insertions += 1
                frontier.setdefault(v, []).append((x, r_x, tb_x))
    return entries
