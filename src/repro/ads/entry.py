"""The ADS entry record and the scan total order.

An All-Distances Sketch is a set of (node, distance) pairs with the rank
that earned the node its place (Section 2).  The paper's definitions
assume unique distances; following Appendix B.3 we realise that as a total
order on ``(distance, tiebreak(node))`` where the tiebreak hash is
independent of ranks.  Every builder and every estimator in this library
uses this same order, which is why independently built sketches are
bit-identical and HIP weights are well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True)
class AdsEntry:
    """One sketch entry: *node* is at *distance* from the ADS source.

    ``bucket`` is set for k-partition entries; ``permutation`` for k-mins
    entries (which of the k independent bottom-1 sketches the entry
    belongs to).  ``tiebreak`` is the Appendix-B.3 symmetry-breaking hash.
    """

    node: Hashable
    distance: float
    rank: float
    tiebreak: int = 0
    bucket: Optional[int] = None
    permutation: Optional[int] = None

    @property
    def key(self) -> Tuple[float, int]:
        """The scan total order: nearer first, hash-tiebroken."""
        return (self.distance, self.tiebreak)

    def __lt__(self, other: "AdsEntry") -> bool:
        return self.key < other.key
