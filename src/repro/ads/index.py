"""``AdsIndex``: every node's sketch in parallel flat arrays.

A sketch *set* built once is typically queried many times (Section 1's
"build the sketches, then answer any C_{alpha,beta} query").  The legacy
``Dict[node, BaseADS]`` pays one Python object per entry plus one
container per node; this index stores the whole set as seven flat
columns in one pass and serves batch queries straight off them:

* ``offsets`` (n+1): node id i's entries live at ``offsets[i]:offsets[i+1]``;
* ``node`` / ``dist`` / ``rank`` / ``tiebreak``: one column each, in the
  scan total order (distance, tiebreak) within every node's slice;
* ``aux``: the k-partition bucket or k-mins permutation (-1 otherwise);
* ``hip``: HIP adjusted weights, computed once at build time for every
  node in a single pass (Section 5) -- the estimator plumbing every
  batch query below reuses.

Queries: :meth:`cardinality_at` (all nodes at once),
:meth:`neighborhood_function` (whole-graph ANF series),
:meth:`closeness_centrality` / :meth:`top_central` (Equation 2 for every
node), all bit-identical to the per-node ``BaseADS`` estimators.
Batch queries and the cum-hip materialisation run on a pluggable
estimator kernel (:mod:`repro.ads.kernels`): the stdlib reference
loops, or a NumPy backend that vectorises the same arithmetic over
zero-copy views of these columns -- selected per index
(``backend="auto"|"numpy"|"python"``, ``REPRO_BACKEND`` env override)
and bit-identical across backends by construction.
:meth:`save` / :meth:`load` persist the columns as raw little/big-endian
array bytes behind a JSON header, so an index built on a big graph is
built once and served many times; ``load(path, mmap=True)`` skips the
deserialisation copy entirely and serves queries off memory-mapped
column views (:mod:`repro.ads.mmap_io`), mapping sharded layouts one
shard at a time on first touch.  ``index[node]`` lazily materialises a
legacy ``BaseADS`` object for full backward compatibility.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import sys
import threading
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._util import atomic_output, require
from repro.ads import kernels
from repro.ads.kernels import parallel as kernel_parallel
from repro.ads.base import FLAVOR_CLASSES as _FLAVOR_CLASSES, BaseADS
from repro.ads.csr_cores import Record, build_flat_entries
from repro.ads.dynamic import UpdateResult, propagate_edge_insertions
from repro.ads.entry import AdsEntry
from repro.ads.mmap_io import ShardMaps, ShardSpec, ShardedColumn, \
    map_file_columns
from repro.ads.parallel import build_flat_entries_sharded
from repro.ads.pruned_dijkstra import BuildStats
from repro.errors import EstimatorError, ParameterError
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)
from repro.estimators.statistics import closeness_centrality_estimate
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

_MAGIC = b"ADSIDX01"
_SHARD_MAGIC = b"ADSSHD01"
MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "adsidx-sharded"
_COLUMN_TYPECODES = ("q", "d", "d", "Q", "q", "d")  # entry columns


def _labels_digest(labels: Sequence[Hashable]) -> str:
    """Stable fingerprint of the node label list (id order included).

    Shard files embed it so a loader can reject shards that were built
    against a different graph or interning order -- entry node ids are
    global, so mixing shards from different builds would silently
    mislabel entries otherwise.
    """
    payload = json.dumps(
        list(labels), ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _write_manifest(path: Path, manifest: dict) -> None:
    """Atomically replace a sharded layout's ``manifest.json``."""
    payload = json.dumps(manifest, ensure_ascii=False, indent=2) + "\n"
    with atomic_output(path) as handle:
        handle.write(payload.encode("utf-8"))


def shard_ranges(n: int, shards: int) -> List[Tuple[int, int]]:
    """Split ids ``0..n`` into *shards* contiguous, balanced ranges."""
    require(shards >= 1, f"shards must be >= 1, got {shards}")
    base, extra = divmod(n, shards)
    ranges = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _read_exact(handle, count: int, path) -> bytes:
    payload = handle.read(count)
    if len(payload) != count:
        raise EstimatorError(f"{path}: truncated file")
    return payload


def _read_json_header(handle, path, magic: bytes, kind: str) -> dict:
    got = handle.read(len(magic))
    if got != magic:
        raise EstimatorError(f"{path}: not an {kind} file")
    header_len = int.from_bytes(_read_exact(handle, 8, path), "little")
    if not 0 < header_len <= (1 << 30):
        raise EstimatorError(f"{path}: implausible header length")
    header_bytes = _read_exact(handle, header_len, path)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EstimatorError(f"{path}: corrupt header ({error})")
    if not isinstance(header, dict):
        raise EstimatorError(f"{path}: corrupt header (not an object)")
    return header


def _read_column(handle, path, typecode: str, count: int, swap: bool) -> array:
    column = array(typecode)
    column.frombytes(_read_exact(handle, 8 * count, path))
    if swap:
        column.byteswap()
    return column


def _parse_manifest(manifest_path: Path) -> dict:
    """Read and structurally validate a sharded-layout manifest.

    Raises :class:`EstimatorError` for anything a corrupted or
    hand-edited manifest could get wrong: bad JSON, wrong format tag,
    missing fields, and shard ranges that do not tile ``0..n`` exactly.
    """
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        raise EstimatorError(f"{manifest_path}: unreadable manifest ({error})")
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise EstimatorError(f"{manifest_path}: corrupt manifest ({error})")
    if not isinstance(manifest, dict):
        raise EstimatorError(f"{manifest_path}: manifest is not an object")
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise EstimatorError(
            f"{manifest_path}: not an {_MANIFEST_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != 1:
        raise EstimatorError(
            f"{manifest_path}: unsupported manifest version "
            f"{manifest.get('version')!r}"
        )
    for field in ("flavor", "k", "seed", "rank_sup", "n", "entries",
                  "labels_digest", "shards"):
        if field not in manifest:
            raise EstimatorError(
                f"{manifest_path}: manifest is missing {field!r}"
            )
    n, shards = manifest["n"], manifest["shards"]
    if not (isinstance(n, int) and n >= 0 and isinstance(shards, list)
            and isinstance(manifest["entries"], int)
            and manifest["entries"] >= 0):
        raise EstimatorError(f"{manifest_path}: corrupt manifest counts")
    position = 0
    for shard in shards:
        if not isinstance(shard, dict):
            raise EstimatorError(f"{manifest_path}: corrupt shard entry")
        for field in ("file", "start", "stop", "entries"):
            if field not in shard:
                raise EstimatorError(
                    f"{manifest_path}: shard entry is missing {field!r}"
                )
        start, stop = shard["start"], shard["stop"]
        if not (isinstance(shard["entries"], int) and shard["entries"] >= 0):
            raise EstimatorError(
                f"{manifest_path}: corrupt shard entry count "
                f"{shard['entries']!r}"
            )
        if not (isinstance(start, int) and isinstance(stop, int)
                and start == position and stop >= start):
            raise EstimatorError(
                f"{manifest_path}: shard ranges must tile 0..{n} "
                f"contiguously (got [{start}, {stop}) at position "
                f"{position})"
            )
        if not isinstance(shard["file"], str) or "/" in shard["file"] or (
            "\\" in shard["file"] or shard["file"].startswith(".")
        ):
            raise EstimatorError(
                f"{manifest_path}: suspicious shard file name "
                f"{shard['file']!r}"
            )
        position = stop
    if position != n:
        raise EstimatorError(
            f"{manifest_path}: shard ranges cover 0..{position}, "
            f"manifest claims n={n}"
        )
    return manifest


class AdsIndex:
    """All-nodes ADS storage in parallel flat arrays (see module docs).

    Build with :meth:`build`, reload with :meth:`load`; the raw
    constructor wires pre-validated columns.
    """

    def __init__(
        self,
        flavor: str,
        k: int,
        seed: int,
        labels: Sequence[Hashable],
        offsets: array,
        node_column: array,
        dist_column: array,
        rank_column: array,
        tiebreak_column: array,
        aux_column: array,
        hip_column: array,
        rank_sup: float = 1.0,
        validate_columns: bool = True,
        backend: str = "auto",
        kernel_workers=None,
    ):
        if flavor not in _FLAVOR_CLASSES:
            raise ParameterError(
                f"unknown flavor {flavor!r}; expected one of "
                f"{sorted(_FLAVOR_CLASSES)}"
            )
        require(k >= 1, f"k must be >= 1, got {k}")
        # The estimator kernel behind every batch query: the pure
        # reference loops, or the NumPy backend (bit-identical floats;
        # see repro.ads.kernels).  Resolved before validation -- the
        # eager cum-hip pass below already runs on it.  _wire_kernel
        # below may wrap it in the partition-parallel dispatcher.
        self._kernel_base = kernels.resolve(backend)
        self._kernel = self._kernel_base
        self.backend = self._kernel_base.NAME
        self._views_cache: Optional[Any] = None
        self._sim_views_cache: Optional[Any] = None
        self.flavor = flavor
        self.k = int(k)
        self.seed = int(seed)
        self.family = HashFamily(seed)
        self.rank_sup = float(rank_sup)
        self._labels = list(labels)
        self._ids = {label: i for i, label in enumerate(self._labels)}
        self._offsets = offsets
        self._node = node_column
        self._dist = dist_column
        self._rank = rank_column
        self._tiebreak = tiebreak_column
        self._aux = aux_column
        self._hip = hip_column
        self._wire_kernel(kernel_workers)
        # Validate the layout before walking it (a corrupted file must
        # fail with EstimatorError, not an IndexError mid-computation).
        if len(offsets) != len(self._labels) + 1:
            raise EstimatorError("offsets length must be n + 1")
        columns = (node_column, dist_column, rank_column, tiebreak_column,
                   aux_column, hip_column)
        if len({len(c) for c in columns}) != 1:
            raise EstimatorError("entry columns must have equal lengths")
        if offsets[0] != 0 or offsets[-1] != len(hip_column):
            raise EstimatorError("offsets must rise from 0 to the entry count")
        if validate_columns:
            # Full-column sanity scans.  mmap-backed loads skip these --
            # walking every entry would page the whole file in, which is
            # exactly what mmap=True exists to avoid; the header,
            # manifest, and byte-length checks still ran.
            if any(
                offsets[i] > offsets[i + 1] for i in range(len(offsets) - 1)
            ):
                raise EstimatorError(
                    "offsets must rise from 0 to the entry count"
                )
            if len(node_column) and not (
                0 <= min(node_column) and max(node_column) < len(self._labels)
            ):
                raise EstimatorError("entry node ids must lie in [0, n)")
            self._cum_cache: Optional[array] = self._compute_cum_hip()
        else:
            self._cum_cache = None
        self.mmap_backed = False
        self._mmap_paths: frozenset = frozenset()
        self._cum_lock = threading.Lock()
        self._materialised: Dict[Hashable, BaseADS] = {}
        # Dynamic-update bookkeeping: one delta-log entry per applied
        # batch, plus the node ids rewritten since the last compaction
        # (what compact() uses to pick the shards to refresh).
        self.delta_log: List[Dict[str, int]] = []
        self._dirty_ids: set = set()

    def _kernel_views(self):
        """The active kernel's prepared view of the entry columns.

        Cached until a dynamic update splices the columns.  For the
        pure kernel this is a free wrapper; the NumPy kernel builds
        zero-copy ``frombuffer`` views (assembling sharded-mmap columns
        once).  Unlocked: a racing first touch builds the same
        immutable views twice and one copy wins, which is benign.
        """
        views = self._views_cache
        if views is None:
            views = self._kernel.prepare_views(
                self._offsets, self._dist, self._hip
            )
            self._views_cache = views
        return views

    def _similarity_views(self):
        """The base kernel's prepared view of the similarity columns
        (entry nodes, distances, ranks).

        Similarity ops are per-pair / per-candidate work dispatched
        serially on the base kernel -- the partition-parallel wrapper
        never sees them, so results are trivially worker-count
        independent.  Cached until a dynamic update splices the
        columns (same benign-race rules as :meth:`_kernel_views`).
        """
        views = self._sim_views_cache
        if views is None:
            views = self._kernel_base.prepare_similarity_views(
                self._offsets, self._node, self._dist, self._rank
            )
            self._sim_views_cache = views
        return views

    def _wire_kernel(self, kernel_workers) -> None:
        """Resolve the effective kernel-worker count and (re)wrap the
        base kernel in the partition-parallel dispatcher when > 1.

        ``kernel_workers`` is ``"auto"``/``None`` (consult
        ``REPRO_KERNEL_WORKERS``, then size to the hardware and layout;
        serial below the measured crossover) or an explicit count,
        which is always honoured.  Results are bit-identical at any
        worker count; only the wall-clock changes.
        """
        workers = kernel_parallel.resolve_workers(
            kernel_workers,
            entries=len(self._hip),
            shards=getattr(self._dist, "shard_count", None),
        )
        self.kernel_workers = workers
        if workers > 1:
            self._kernel = kernel_parallel.ParallelKernel(
                self._kernel_base, workers,
                kernel_parallel.resolve_pool(self.backend),
            )
        else:
            self._kernel = self._kernel_base
        self._views_cache = None
        self._sim_views_cache = None

    def set_kernel_workers(self, kernel_workers) -> None:
        """Re-wire the kernel worker count on a live index.

        The serving layer uses this to cap oversubscription (request
        threads x kernel workers); queries in flight keep the views
        they already hold, new queries see the new fan-out.  Floats are
        unchanged either way.
        """
        self._wire_kernel(kernel_workers)

    def _compute_cum_hip(self) -> array:
        # Per-node running prefix sums of the HIP column: cardinality
        # queries become one bisect plus one lookup.  Summation order is
        # left-to-right within each slice, exactly like BaseADS, so the
        # floats agree bit-for-bit -- on either kernel backend.
        return self._kernel.compute_cum_hip(self._kernel_views())

    @property
    def _cum_hip(self) -> array:
        """Prefix-sum column, computed on first use for lazy loads.

        Locked: concurrent first batch queries from a threaded server
        must not each run the O(entries) pass (and each allocate the
        full 8-bytes-per-entry array) on a freshly mapped index.
        """
        cumulative = self._cum_cache
        if cumulative is None:
            with self._cum_lock:
                cumulative = self._cum_cache
                if cumulative is None:
                    cumulative = self._compute_cum_hip()
                    self._cum_cache = cumulative
        return cumulative

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph,
        k: int,
        family: Optional[HashFamily] = None,
        flavor: str = "bottomk",
        method: str = "auto",
        direction: str = "forward",
        seed: int = 0,
        stats: Optional[BuildStats] = None,
        workers: int = 1,
        shards: Optional[int] = None,
        backend: str = "auto",
        kernel_workers=None,
    ) -> "AdsIndex":
        """Build the index for every node of *graph* in one pass.

        *graph* may be a :class:`CSRGraph` or an adjacency-dict
        ``Graph`` (converted via ``to_csr()``).  Methods are the exact
        CSR builders: 'pruned_dijkstra', 'dp', or 'auto' (=
        'pruned_dijkstra', the faster core on this backend; both emit
        identical sketches).

        ``workers > 1`` runs the sharded multi-process build
        (:mod:`repro.ads.parallel`): candidates are dealt into *shards*
        shards (default: one per worker), scanned in worker processes,
        and merged by exact competition replay -- the resulting index is
        bit-identical to the serial build, columns included.
        ``workers=1`` with ``shards > 1`` runs the same shard/replay
        pipeline in-process.

        ``backend`` picks the estimator kernel the built index answers
        batch queries with (:mod:`repro.ads.kernels`): ``"auto"``
        (NumPy when installed, honouring ``REPRO_BACKEND``),
        ``"numpy"``, or ``"python"``.  The sketch columns themselves
        are backend-independent.  ``kernel_workers`` fans batch
        queries out across that many cores (``"auto"``/``None`` sizes
        to the hardware, honouring ``REPRO_KERNEL_WORKERS``; results
        are bit-identical at any count).

        Returns:
            The fully built index (every node, HIP column included).

        Raises:
            ParameterError: unknown flavor/method/direction, ``k < 1``,
                or a parallel request the CSR cores cannot serve.

        Example:
            >>> from repro.graph import path_graph
            >>> AdsIndex.build(path_graph(4).to_csr(), k=4)
            AdsIndex(flavor='bottomk', k=4, n=4, entries=16)
        """
        require(k >= 1, f"k must be >= 1, got {k}")
        require(workers >= 1, f"workers must be >= 1, got {workers}")
        if shards is not None:
            require(shards >= 1, f"shards must be >= 1, got {shards}")
        if family is None:
            family = HashFamily(seed)
        if direction not in ("forward", "backward"):
            raise ParameterError(f"unknown direction {direction!r}")
        if flavor not in _FLAVOR_CLASSES:
            raise ParameterError(
                f"unknown flavor {flavor!r}; expected one of "
                f"{sorted(_FLAVOR_CLASSES)}"
            )
        csr = graph if isinstance(graph, CSRGraph) else graph.to_csr()
        if direction == "backward":
            csr = csr.transpose()
        if method == "auto":
            method = "pruned_dijkstra"
        if stats is None:
            stats = BuildStats()
        if workers > 1 or shards is not None:
            per_node = build_flat_entries_sharded(
                csr, k, family, flavor, method, stats,
                workers=workers, shards=shards,
            )
        else:
            per_node = build_flat_entries(
                csr, k, family, flavor, method, stats
            )
        labels = csr.nodes()

        total = sum(len(records) for records in per_node)
        offsets = array("q", [0] * (len(labels) + 1))
        node_column = array("q", bytes(8 * total))
        dist_column = array("d", bytes(8 * total))
        rank_column = array("d", bytes(8 * total))
        tiebreak_column = array("Q", bytes(8 * total))
        aux_column = array("q", bytes(8 * total))
        slot = 0
        for i, records in enumerate(per_node):
            for distance, tiebreak, node_id, rank, bucket, permutation in records:
                node_column[slot] = node_id
                dist_column[slot] = distance
                rank_column[slot] = rank
                tiebreak_column[slot] = tiebreak
                aux = bucket if bucket is not None else permutation
                aux_column[slot] = -1 if aux is None else aux
                slot += 1
            offsets[i + 1] = slot
        hip_column = cls._compute_hip_column(
            flavor, k, family, labels, offsets,
            node_column, dist_column, rank_column, aux_column,
        )
        return cls(
            flavor, k, family.seed, labels, offsets, node_column,
            dist_column, rank_column, tiebreak_column, aux_column,
            hip_column, backend=backend, kernel_workers=kernel_workers,
        )

    @staticmethod
    def _compute_hip_column(
        flavor: str,
        k: int,
        family: HashFamily,
        labels: Sequence[Hashable],
        offsets: array,
        node_column: array,
        dist_column: array,
        rank_column: array,
        aux_column: array,
    ) -> array:
        """One pass of Section-5 adjusted weights over every node slice.

        For k-mins the weights live on the *merged* (first-occurrence)
        view; duplicate per-permutation entries get weight 0 so that
        prefix sums over the raw slice equal the merged cumulative
        estimates exactly.
        """
        hip = array("d", bytes(8 * len(node_column)))
        if flavor == "kmins":
            # One dense rank list per permutation, shared by every
            # node's merged view below: O(n*k) hash calls instead of
            # O(total merged entries * k).
            ranks_by_permutation = [
                [family.rank(label, h) for label in labels] for h in range(k)
            ]
        for i in range(len(labels)):
            lo, hi = offsets[i], offsets[i + 1]
            if lo == hi:
                continue
            if flavor == "bottomk":
                weights = bottom_k_adjusted_weights(rank_column[lo:hi], k)
                hip[lo:hi] = array("d", weights)
            elif flavor == "kpartition":
                weights = k_partition_adjusted_weights(
                    [(aux_column[s], rank_column[s]) for s in range(lo, hi)],
                    k,
                )
                hip[lo:hi] = array("d", weights)
            else:  # kmins: merged first-occurrence view
                seen = set()
                merged_slots = []
                for s in range(lo, hi):
                    entry_node = node_column[s]
                    if entry_node in seen:
                        continue
                    seen.add(entry_node)
                    merged_slots.append(s)
                vectors = [
                    [ranks_by_permutation[h][node_column[s]] for h in range(k)]
                    for s in merged_slots
                ]
                weights = k_mins_adjusted_weights(vectors, k)
                for s, weight in zip(merged_slots, weights):
                    hip[s] = weight
        return hip

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_entries(self) -> int:
        return len(self._node)

    @property
    def mapped_shards(self) -> Optional[int]:
        """How many shard files a lazy sharded load has mapped so far.

        ``None`` for eager and single-file-mmap backings, where the
        notion does not apply; serving dashboards surface it to show a
        cold index warming up.
        """
        return getattr(self._node, "mapped_shards", None)

    def nodes(self) -> List[Hashable]:
        return list(self._labels)

    def label_type(self) -> Optional[type]:
        """``int`` when every label is a (non-bool) int, ``str`` when
        every label is a str, ``None`` for empty or mixed label sets.

        The single source of truth for label-type inference: the CLI
        parses graph/edge-batch files with this type, and the serve
        layer coerces JSON batch labels to it, so the two surfaces can
        never disagree about what ``"7"`` names.
        """
        if not self._labels:
            return None
        if all(
            isinstance(label, int) and not isinstance(label, bool)
            for label in self._labels
        ):
            return int
        if all(isinstance(label, str) for label in self._labels):
            return str
        return None

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    def __repr__(self) -> str:
        return (
            f"AdsIndex(flavor={self.flavor!r}, k={self.k}, "
            f"n={self.num_nodes}, entries={self.num_entries})"
        )

    def _slice(self, label: Hashable) -> Tuple[int, int]:
        i = self._id_of(label)
        return self._offsets[i], self._offsets[i + 1]

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------
    def cardinality_at(self, d: float = math.inf) -> Dict[Hashable, float]:
        """HIP estimate of n_d(v) for *every* node v.

        One bisect per node over the distance column plus a prefix-sum
        lookup (Section 5); exact (not just unbiased) whenever a node's
        d-neighborhood fits in the sketch.

        Args:
            d: Distance threshold; the default ``inf`` counts every
                reachable node.

        Returns:
            ``{label: estimated |N_d(label)|}`` for every indexed node,
            the node itself included.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.cardinality_at(1.0)
            {0: 2.0, 1: 3.0, 2: 3.0, 3: 2.0}
        """
        values = self._kernel.batch_cardinality(
            self._kernel_views(), self._cum_hip, d
        )
        return dict(zip(self._labels, values))

    def reachable_counts(self) -> Dict[Hashable, float]:
        """HIP estimate of the reachable-set size of every node.

        Returns:
            ``{label: estimated |reachable(label)|}``, i.e.
            :meth:`cardinality_at` at ``d=inf``.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(3).to_csr(), k=4)
            >>> index.reachable_counts()
            {0: 3.0, 1: 3.0, 2: 3.0}
        """
        return self.cardinality_at(math.inf)

    def node_cardinality_at(self, label: Hashable, d: float = math.inf) -> float:
        """HIP estimate of n_d(label) (single-node form).

        Args:
            label: An indexed node label.
            d: Distance threshold (default: all reachable nodes).

        Returns:
            The estimated number of nodes within distance *d* of
            *label* -- same float as ``cardinality_at(d)[label]``.

        Raises:
            EstimatorError: if *label* is not in the index.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.node_cardinality_at(0, 1.0)
            2.0
        """
        lo, hi = self._slice(label)
        cutoff = bisect_right(self._dist, d, lo, hi)
        return self._slice_hip_sum(lo, cutoff)

    def nodes_cardinality_at(
        self, labels: Sequence[Hashable], d: float = math.inf
    ) -> List[float]:
        """n_d estimates for an explicit subset of nodes, in one call.

        The serving layer's micro-batch entry point: batch POSTs and
        the async server's coalesced single-node queries resolve here,
        so a whole batch costs one index call (and one lock
        acquisition server-side) instead of a round trip per node.
        Exactly ``[node_cardinality_at(label, d) for label in labels]``
        -- same bisect over the distance column, same left-to-right
        HIP summation, bit-identical floats.

        Args:
            labels: Indexed node labels (order preserved in the result).
            d: Distance threshold (default: all reachable nodes).

        Raises:
            EstimatorError: if any label is not in the index.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.nodes_cardinality_at([0, 3], 1.0)
            [2.0, 2.0]
        """
        dist = self._dist
        values: List[float] = []
        for label in labels:
            lo, hi = self._slice(label)
            cutoff = bisect_right(dist, d, lo, hi)
            values.append(self._slice_hip_sum(lo, cutoff))
        return values

    def _slice_hip_sum(self, lo: int, hi: int) -> float:
        """Left-to-right sum of ``hip[lo:hi]`` -- ``cum_hip[hi - 1]`` by
        construction, summed locally when the prefix column has not been
        materialised (a lazy load serving one node must not pay an
        all-entries pass)."""
        return kernels.pure.slice_hip_sum(
            self._hip, self._cum_cache, lo, hi
        )

    def neighborhood_function(self) -> List[Tuple[float, float]]:
        """Whole-graph neighborhood function (the ANF statistic).

        Returns:
            ``[(d, estimate), ...]`` for every distinct positive
            distance, where *estimate* is the estimated number of
            ordered node pairs within distance *d*, cumulatively.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.neighborhood_function()
            [(1.0, 6.0), (2.0, 10.0), (3.0, 12.0)]
        """
        return self._kernel.neighborhood_series(self._kernel_views())

    def accumulate_neighborhood_jumps(
        self,
        jumps: Dict[float, float],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Dict[float, float]:
        """Fold node rows ``[start, stop)`` into per-distance HIP sums.

        This is the accumulation half of :meth:`neighborhood_function`,
        exposed so a cluster router can *chain* it across node-sharded
        workers: each worker folds its own rows, in slot order, into
        the running ``{distance: weight_sum}`` dict seeded by the
        previous worker.  Because the per-distance sums are built by
        the exact left-to-right fold the reference kernel uses
        (``jumps[d] = jumps.get(d, 0.0) + weight``, zero distances
        skipped), chaining contiguous ranges in node order replays the
        single-index float-op sequence addition-for-addition -- the
        merged series is bit-identical, not merely close.

        Args:
            jumps: Running per-distance sums; mutated in place (pass
                ``{}`` for the first range) and also returned.
            start / stop: Node-row range to fold; ``stop=None`` means
                through the last row.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> jumps = index.accumulate_neighborhood_jumps({}, 0, 2)
            >>> jumps = index.accumulate_neighborhood_jumps(jumps, 2)
            >>> series, running = [], 0.0
            >>> for d in sorted(jumps):
            ...     running += jumps[d]
            ...     series.append((d, running))
            >>> series == index.neighborhood_function()
            True
        """
        n = self.num_nodes
        stop = n if stop is None else stop
        require(
            0 <= start <= stop <= n,
            f"node range [{start}, {stop}) must lie within [0, {n})",
        )
        lo, hi = self._offsets[start], self._offsets[stop]
        for d, weight in zip(self._dist[lo:hi], self._hip[lo:hi]):
            if d <= 0.0:
                continue
            jumps[d] = jumps.get(d, 0.0) + weight
        return jumps

    def node_neighborhood_function(
        self, label: Hashable
    ) -> List[Tuple[float, float]]:
        """Estimated cumulative distance distribution of one node.

        Args:
            label: An indexed node label.

        Returns:
            ``[(d, estimated |N_d(label)|), ...]`` per distinct
            distance, the node itself included at ``d = 0``.

        Raises:
            EstimatorError: if *label* is not in the index.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.node_neighborhood_function(0)
            [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]
        """
        lo, hi = self._slice(label)
        series: List[Tuple[float, float]] = []
        running = 0.0
        for d, weight in zip(self._dist[lo:hi], self._hip[lo:hi]):
            running += weight
            if series and series[-1][0] == d:
                series[-1] = (d, running)
            else:
                series.append((d, running))
        return series

    def closeness_centrality(
        self,
        alpha: Optional[Callable[[float], float]] = None,
        beta: Optional[Callable[[Hashable], float]] = None,
        classic: bool = False,
    ) -> Dict[Hashable, float]:
        """C_{alpha,beta} (Equation 2) for every node in one sweep.

        Mirrors :func:`repro.centrality.closeness.closeness_centrality`
        float-for-float.

        Args:
            alpha: Non-increasing nonnegative distance kernel; ``None``
                means the raw sum of distances.
            beta: Per-node filter weight applied to the *other* node
                (decided after the build -- Corollary 5.2).
            classic: Bavelas's ``reachable / sum-of-distances`` instead
                of the kernel form; excludes ``alpha``/``beta``.

        Returns:
            ``{label: estimated centrality}`` for every indexed node.

        Raises:
            EstimatorError: for ``classic=True`` combined with
                ``alpha``/``beta``, or a kernel that goes negative.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.closeness_centrality(classic=True)
            {0: 0.5, 1: 0.75, 2: 0.75, 3: 0.5}
        """
        if classic and (alpha is not None or beta is not None):
            raise EstimatorError(
                "classic=True computes (n-1)/sum(d); alpha/beta do not apply"
            )
        if beta is not None:
            # A node filter consumes entry labels through a Python
            # callable; that stays on the per-slice reference loop
            # whatever the kernel backend.
            offsets = self._offsets
            return {
                label: self._closeness_for_slice(
                    offsets[i], offsets[i + 1], alpha, beta, classic
                )
                for i, label in enumerate(self._labels)
            }
        values = self._kernel.batch_closeness(
            self._kernel_views(), alpha, classic, cum=self._cum_cache
        )
        return dict(zip(self._labels, values))

    def _closeness_for_slice(
        self,
        lo: int,
        hi: int,
        alpha: Optional[Callable[[float], float]],
        beta: Optional[Callable[[Hashable], float]],
        classic: bool,
    ) -> float:
        if beta is not None and not classic:
            # Only a node filter ever consumes the entry labels; skip
            # the per-entry interner lookups otherwise.
            label_of = self._labels.__getitem__
            entry_labels = [label_of(node_id) for node_id in
                            self._node[lo:hi]]
            return closeness_centrality_estimate(
                entry_labels, self._dist[lo:hi], self._hip[lo:hi],
                alpha=alpha, beta=beta,
            )
        # beta-free sum: the reference slice loop (single-node queries
        # are O(sketch size); the batch sweep above vectorises the same
        # arithmetic and returns the same floats).
        return kernels.pure.closeness_for_slice(
            self._dist, self._hip, lo, hi, alpha, classic, self._cum_cache
        )

    def node_closeness_centrality(
        self,
        label: Hashable,
        alpha: Optional[Callable[[float], float]] = None,
        beta: Optional[Callable[[Hashable], float]] = None,
        classic: bool = False,
    ) -> float:
        """One node's C_{alpha,beta}: O(sketch size), same floats as the
        batch :meth:`closeness_centrality` entry.

        Args:
            label: An indexed node label; the remaining arguments are
                those of :meth:`closeness_centrality`.

        Returns:
            The node's estimated centrality.

        Raises:
            EstimatorError: unknown *label*, or invalid
                ``classic``/``alpha``/``beta`` combinations.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.node_closeness_centrality(1, classic=True)
            0.75
        """
        if classic and (alpha is not None or beta is not None):
            raise EstimatorError(
                "classic=True computes (n-1)/sum(d); alpha/beta do not apply"
            )
        lo, hi = self._slice(label)
        return self._closeness_for_slice(lo, hi, alpha, beta, classic)

    def top_central(
        self,
        count: int,
        alpha: Optional[Callable[[float], float]] = None,
        beta: Optional[Callable[[Hashable], float]] = None,
        classic: bool = False,
        largest: bool = True,
    ) -> List[Tuple[Hashable, float]]:
        """The *count* most (or least) central nodes.

        Args:
            count: How many nodes to return (fewer when the graph is
                smaller).
            alpha / beta / classic: Centrality form, exactly as in
                :meth:`closeness_centrality`.
            largest: ``False`` ranks ascending instead.

        Returns:
            ``[(label, value), ...]`` sorted by value, ties broken by
            node repr -- same contract as ``top_k_central_nodes``
            (which heap-selects the *count* winners in O(n log count)
            instead of fully sorting all n values).

        Raises:
            EstimatorError: invalid ``classic``/``alpha``/``beta``
                combinations.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.top_central(2, classic=True)
            [(1, 0.75), (2, 0.75)]
        """
        # Lazy import: repro.centrality imports repro.ads at module load.
        from repro.centrality.closeness import top_k_central_nodes

        values = self.closeness_centrality(alpha=alpha, beta=beta, classic=classic)
        return top_k_central_nodes(values, count, largest=largest)

    # ------------------------------------------------------------------
    # Similarity and distance-oracle queries (bottom-k flavor)
    # ------------------------------------------------------------------
    def _id_of(self, label: Hashable) -> int:
        try:
            return self._ids[label]
        except KeyError:
            raise EstimatorError(f"node {label!r} is not in the index")

    def _require_bottomk(self) -> None:
        if self.flavor != "bottomk":
            raise EstimatorError(
                "similarity queries need a bottom-k index (the flavor "
                "whose extracted MinHash sketches are k-samples without "
                f"replacement); this index's flavor is {self.flavor!r}"
            )

    def _pair_ids(
        self, pairs: Sequence[Sequence[Hashable]]
    ) -> List[Tuple[int, int]]:
        resolved: List[Tuple[int, int]] = []
        for pair in pairs:
            u, v = pair
            resolved.append((self._id_of(u), self._id_of(v)))
        return resolved

    def pairs_distance_estimate(
        self, pairs: Sequence[Sequence[Hashable]]
    ) -> List[float]:
        """Sketch-space distance upper bounds for ``(u, v)`` pairs.

        The ADS columns double as a 2-hop-cover distance oracle: the
        estimate is the minimum of ``d(u, w) + d(v, w)`` over entries
        *w* common to both sketches -- an upper bound on the true
        distance for symmetric metrics, and ``inf`` when the sketches
        share no entry (e.g. disconnected components).

        Args:
            pairs: ``(u, v)`` label pairs (order preserved).

        Raises:
            EstimatorError: non-bottom-k flavor, or an unknown label.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.pairs_distance_estimate([(0, 3), (1, 1)])
            [3.0, 0.0]
        """
        self._require_bottomk()
        return self._kernel_base.pairs_distance(
            self._similarity_views(), self._pair_ids(pairs)
        )

    def pairs_neighborhood_jaccard(
        self, pairs: Sequence[Sequence[Hashable]], d: float = math.inf
    ) -> List[float]:
        """MinHash Jaccard estimates of ``N_d(u)`` vs ``N_d(v)``.

        Same floats as
        :func:`repro.centrality.similarity.neighborhood_jaccard` over
        the materialised per-node sketches, computed straight off the
        flat columns.

        Args:
            pairs: ``(u, v)`` label pairs (order preserved).
            d: Neighborhood threshold (default: full reachable sets).

        Raises:
            EstimatorError: non-bottom-k flavor, or an unknown label.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.pairs_neighborhood_jaccard([(0, 1)], d=1.0)
            [0.6666666666666666]
        """
        self._require_bottomk()
        return self._kernel_base.pairs_jaccard(
            self._similarity_views(), self._pair_ids(pairs), d, self.k
        )

    def pairs_union_size_estimate(
        self, pairs: Sequence[Sequence[Hashable]], d: float = math.inf
    ) -> List[float]:
        """Estimated ``|N_d(u) ∪ N_d(v)|`` from merged bottom-k sketches.

        Same estimator as
        :func:`repro.sketches.similarity.union_size_estimate`: exact
        when the union sketch holds fewer than k samples, conditional
        inverse-probability otherwise.

        Args:
            pairs: ``(u, v)`` label pairs (order preserved).
            d: Neighborhood threshold (default: full reachable sets).

        Raises:
            EstimatorError: non-bottom-k flavor, or an unknown label.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.pairs_union_size_estimate([(0, 1)], d=1.0)
            [3.0]
        """
        self._require_bottomk()
        return self._kernel_base.pairs_union_size(
            self._similarity_views(), self._pair_ids(pairs), d, self.k,
            self.rank_sup,
        )

    def pairs_closeness_similarity(
        self, pairs: Sequence[Sequence[Hashable]]
    ) -> List[float]:
        """Closeness similarity (Section 5.3) for ``(u, v)`` pairs.

        The uniform-weight average of neighborhood Jaccard over the
        union of the two sketches' distinct entry distances -- same
        floats as
        :func:`repro.centrality.similarity.closeness_similarity` with
        default distances and weights.

        Args:
            pairs: ``(u, v)`` label pairs (order preserved).

        Raises:
            EstimatorError: non-bottom-k flavor, or an unknown label.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.pairs_closeness_similarity([(1, 2), (0, 0)])
            [0.5, 1.0]
        """
        self._require_bottomk()
        return self._kernel_base.pairs_closeness_similarity(
            self._similarity_views(), self._pair_ids(pairs), self.k
        )

    def most_similar(
        self,
        label: Hashable,
        count: int = 10,
        d: float = math.inf,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> List[Tuple[Hashable, float]]:
        """The *count* nodes most similar to *label* by neighborhood
        Jaccard at threshold *d*.

        One kernel sweep over the candidate id range plus a heap
        selection -- the batch-layer replacement for
        ``repro.centrality.similarity.most_similar_nodes`` (same
        comparator: value descending, ties by node repr).  ``start`` /
        ``stop`` restrict the *candidate* ids so sharded workers can
        sweep disjoint ranges whose per-range winners merge exactly.

        Args:
            label: The query node (never returned as its own match).
            count: How many matches (fewer when the range is smaller).
            d: Neighborhood threshold (default: full reachable sets).
            start / stop: Candidate node-id range; ``stop=None`` means
                through the last id.

        Raises:
            EstimatorError: non-bottom-k flavor, unknown *label*,
                ``count < 1``, or a range outside ``[0, n)``.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.most_similar(0, count=2, d=1.0)
            [(1, 0.6666666666666666), (2, 0.25)]
        """
        require(count >= 1, f"count must be >= 1, got {count}")
        self._require_bottomk()
        query = self._id_of(label)
        n = self.num_nodes
        stop = n if stop is None else stop
        require(
            0 <= start <= stop <= n,
            f"node range [{start}, {stop}) must lie within [0, {n})",
        )
        scores = self._kernel_base.similarity_scan(
            self._similarity_views(), query, d, self.k, start, stop
        )
        # Lazy import: repro.centrality imports repro.ads at module load.
        from repro.centrality.closeness import top_k_central_nodes

        label_of = self._labels.__getitem__
        values = {label_of(i): score for i, score in scores}
        return top_k_central_nodes(values, count, largest=True)

    def distance_distribution(self) -> List[Tuple[float, float, float]]:
        """The ANF curve: the neighborhood function with each point's
        fraction of the final (all-distances) pair count.

        Returns:
            ``[(d, estimated pairs within d, fraction of total), ...]``
            per distinct positive distance; empty for an edgeless graph.

        Example:
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> index.distance_distribution()
            [(1.0, 6.0, 0.5), (2.0, 10.0, 0.8333333333333334), (3.0, 12.0, 1.0)]
        """
        series = self.neighborhood_function()
        if not series:
            return []
        total = series[-1][1]
        return [(d, running, running / total) for d, running in series]

    # ------------------------------------------------------------------
    # Backward compatibility: lazy BaseADS materialisation
    # ------------------------------------------------------------------
    def __getitem__(self, label: Hashable) -> BaseADS:
        """Materialise (and cache) the legacy ADS object of one node."""
        cached = self._materialised.get(label)
        if cached is not None:
            return cached
        lo, hi = self._slice(label)
        label_of = self._labels.__getitem__
        entries = []
        for node_id, distance, rank, tiebreak, aux in zip(
            self._node[lo:hi], self._dist[lo:hi], self._rank[lo:hi],
            self._tiebreak[lo:hi], self._aux[lo:hi],
        ):
            entries.append(
                AdsEntry(
                    node=label_of(node_id),
                    distance=distance,
                    rank=rank,
                    tiebreak=tiebreak,
                    bucket=(
                        aux if self.flavor == "kpartition" and aux >= 0 else None
                    ),
                    permutation=(
                        aux if self.flavor == "kmins" and aux >= 0 else None
                    ),
                )
            )
        ads = _FLAVOR_CLASSES[self.flavor](
            label, self.k, entries, self.family, rank_sup=self.rank_sup
        )
        self._materialised[label] = ads
        return ads

    def get(self, label: Hashable) -> Optional[BaseADS]:
        return self[label] if label in self._ids else None

    def to_ads_set(self) -> Dict[Hashable, BaseADS]:
        """Materialise every node's ADS (the legacy ``build_ads_set``
        return shape)."""
        return {label: self[label] for label in self._labels}

    # ------------------------------------------------------------------
    # Dynamic maintenance: incremental edge application
    # ------------------------------------------------------------------
    def _slice_records(self, i: int) -> List[Record]:
        """Node id *i*'s entries as builder records (scan order)."""
        lo, hi = self._offsets[i], self._offsets[i + 1]
        flavor = self.flavor
        records: List[Record] = []
        for node_id, distance, rank, tiebreak, aux in zip(
            self._node[lo:hi], self._dist[lo:hi], self._rank[lo:hi],
            self._tiebreak[lo:hi], self._aux[lo:hi],
        ):
            records.append((
                distance, tiebreak, node_id, rank,
                aux if flavor == "kpartition" and aux >= 0 else None,
                aux if flavor == "kmins" and aux >= 0 else None,
            ))
        return records

    def _hip_weights_for_records(
        self, records: Sequence[Record], labels: Sequence[Hashable]
    ) -> List[float]:
        """Section-5 adjusted weights of one rewritten slice.

        Must agree float-for-float with :meth:`_compute_hip_column` on
        the same slice -- it runs the identical per-flavor estimator
        over the identical scan order (on the active kernel backend,
        whose weight functions are bit-identical to the pure
        estimators), so a patched slice carries the same weights a
        from-scratch build would.  The shared implementation lives in
        :func:`repro.ads.kernels.parallel.slice_hip_weights` so the
        parallel dispatcher can run it in worker pools.
        """
        return kernel_parallel.slice_hip_weights(
            self._kernel, self.flavor, self.k, records,
            self._entry_labels(records, labels), self.family,
        )

    def _entry_labels(
        self, records: Sequence[Record], labels: Sequence[Hashable]
    ) -> Optional[List[Hashable]]:
        """Each record's node label, resolved up front -- only k-mins
        hashes labels, and pre-resolving keeps worker-process payloads
        free of the whole label list."""
        if self.flavor != "kmins":
            return None
        return [labels[record[2]] for record in records]

    def _dirty_slice_weights(
        self,
        dirty_records: Dict[int, List[Record]],
        labels_after: Sequence[Hashable],
    ) -> Dict[int, List[float]]:
        """HIP weights for every dirty slice, fanned out across kernel
        workers when the active kernel is the parallel dispatcher (the
        dominant cost of a splice for large batches); the serial
        per-slice path otherwise -- same floats either way."""
        items = [
            (
                vid,
                dirty_records[vid],
                self._entry_labels(dirty_records[vid], labels_after),
            )
            for vid in sorted(dirty_records)
        ]
        kernel = self._kernel
        if isinstance(kernel, kernel_parallel.ParallelKernel):
            weights_map = kernel.slice_weights_map(
                self.flavor, self.k, self.family, items
            )
            if weights_map is not None:
                return weights_map
        return {
            vid: kernel_parallel.slice_hip_weights(
                kernel, self.flavor, self.k, records, entry_labels,
                self.family,
            )
            for vid, records, entry_labels in items
        }

    def apply_edges(self, graph, edges: Iterable[Tuple]) -> UpdateResult:
        """Absorb an edge-insertion batch without a full rebuild.

        Adds *edges* (``(u, v)`` / ``(u, v, weight)`` label tuples) to
        *graph* -- the :class:`~repro.graph.csr.CSRGraph` this index was
        built from, in the build orientation -- and patches the index
        columns in place by pruned re-propagation seeded from the
        inserted arcs' endpoint sketches
        (:func:`repro.ads.dynamic.propagate_edge_insertions`).  The
        result is bit-identical to rebuilding the index from the
        updated graph; only the touched node slices are rewritten.
        New endpoint labels are appended to both graph and index.

        The batch is recorded in :attr:`delta_log` and the rewritten
        node ids accumulate until :meth:`compact` flushes them to disk.

        Args:
            graph: The index's graph (same labels in the same id
                order); mutated in place via
                :meth:`~repro.graph.csr.CSRGraph.add_edges`.
            edges: Edge tuples to insert; duplicates of existing edges
                (at no smaller weight) are no-ops.

        Returns:
            An :class:`~repro.ads.dynamic.UpdateResult` with dirty/new
            node counts and propagation work counters.

        Raises:
            EstimatorError: read-only (mmap-backed) index, a graph
                whose labels disagree with the index, or an index
                flavor/rank assignment the dynamic path does not cover.
            GraphError: malformed edge tuples (self-loops, non-positive
                weights).

        Example:
            >>> from repro.graph import path_graph
            >>> graph = path_graph(4).to_csr()
            >>> index = AdsIndex.build(graph, k=4)
            >>> index.apply_edges(graph, [(0, 3)]).applied_arcs
            2
            >>> index.cardinality_at(1.0)
            {0: 3.0, 1: 3.0, 2: 3.0, 3: 3.0}
        """
        if self.mmap_backed:
            raise EstimatorError(
                "this index is memory-mapped read-only; reload it with "
                "mmap=False to apply updates"
            )
        if self.rank_sup != 1.0:
            raise EstimatorError(
                "dynamic updates support indexes built by AdsIndex.build "
                f"(uniform ranks); this index has rank_sup={self.rank_sup}"
            )
        if not isinstance(graph, CSRGraph):
            raise ParameterError(
                "apply_edges requires the CSRGraph the index was built "
                f"from, got {type(graph).__name__}"
            )
        if graph.nodes() != self._labels:
            raise EstimatorError(
                "graph/index mismatch: the graph must carry exactly the "
                "index's node labels in id order (build the index from "
                "this graph, or reload the matching graph)"
            )
        old_n = self.num_nodes
        arcs = graph.add_edges(edges)
        labels_after = graph.nodes()
        new_labels = labels_after[old_n:]
        stats = BuildStats()
        if not arcs:
            result = UpdateResult()
        else:
            dirty_records = propagate_edge_insertions(
                graph, self.flavor, self.k, self.family, old_n,
                self._slice_records, arcs, stats,
            )
            self._splice_slices(dirty_records, labels_after, old_n)
            for label in new_labels:
                self._ids[label] = len(self._labels)
                self._labels.append(label)
            for vid in dirty_records:
                if vid < old_n:
                    self._materialised.pop(labels_after[vid], None)
            self._dirty_ids.update(dirty_records)
            result = UpdateResult(
                applied_arcs=len(arcs),
                dirty_nodes=len(dirty_records),
                new_nodes=len(new_labels),
                insertions=stats.insertions,
                evictions=stats.evictions,
                relaxations=stats.relaxations,
            )
        self.delta_log.append({
            "batch": len(self.delta_log) + 1,
            **result.to_dict(),
        })
        return result

    def _splice_slices(
        self,
        dirty_records: Dict[int, List[Record]],
        labels_after: Sequence[Hashable],
        old_n: int,
    ) -> None:
        """Rewrite the flat columns with *dirty_records* patched in.

        Unchanged slices are block-copied (C-speed ``array`` slicing);
        dirty slices are refilled from their replacement records with
        freshly derived HIP weights.

        The cached ``_cum_hip`` prefix column is spliced alongside
        instead of being dropped: an unchanged slice's prefix sums
        restart at 0.0 per slice, so they are position-shifted copies,
        and only the dirty slices' prefixes are recomputed (from the
        very weights being written).  Without this, every batch would
        re-run the O(entries) cum-hip pass on the next query.  An
        unmaterialised cache stays unmaterialised.
        """
        old_offsets = self._offsets
        old_columns = (self._node, self._dist, self._rank, self._tiebreak,
                       self._aux, self._hip)
        old_cum = self._cum_cache
        new_cum = None if old_cum is None else array("d")
        # All dirty slices' weights up front: one parallel fan-out over
        # the slices instead of one serial recompute per splice step.
        dirty_weights = self._dirty_slice_weights(
            dirty_records, labels_after
        )
        new_n = len(labels_after)
        new_offsets = array("q", bytes(8 * (new_n + 1)))
        new_columns = tuple(
            array(typecode) for typecode in _COLUMN_TYPECODES
        )
        (node_column, dist_column, rank_column, tiebreak_column,
         aux_column, hip_column) = new_columns
        for i in range(new_n):
            records = dirty_records.get(i)
            if records is None:
                if i < old_n:
                    lo, hi = old_offsets[i], old_offsets[i + 1]
                    if hi > lo:
                        for column, old in zip(new_columns, old_columns):
                            column.extend(old[lo:hi])
                        if new_cum is not None:
                            new_cum.extend(old_cum[lo:hi])
                # else: an untouched new node (cannot arise from
                # add_edges, which only interns edge endpoints) gets an
                # empty slice.
            else:
                weights = dirty_weights[i]
                running = 0.0
                for record, weight in zip(records, weights):
                    distance, tiebreak, node_id, rank, bucket, permutation \
                        = record
                    node_column.append(node_id)
                    dist_column.append(distance)
                    rank_column.append(rank)
                    tiebreak_column.append(tiebreak)
                    aux = bucket if bucket is not None else permutation
                    aux_column.append(-1 if aux is None else aux)
                    hip_column.append(weight)
                    if new_cum is not None:
                        running += weight
                        new_cum.append(running)
            new_offsets[i + 1] = len(node_column)
        self._offsets = new_offsets
        (self._node, self._dist, self._rank, self._tiebreak,
         self._aux, self._hip) = new_columns
        self._cum_cache = new_cum
        # The spliced columns are new objects; any kernel views over
        # the old ones are stale.
        self._views_cache = None
        self._sim_views_cache = None

    def compact(
        self, path: Union[str, Path], shards: Optional[int] = None
    ) -> Dict[str, Any]:
        """Flush applied updates to the persisted layout at *path*.

        When *path* is an existing sharded layout (directory or its
        ``manifest.json``) still describing this index's node set, only
        the shards holding dirty node ids are rewritten, via
        :meth:`write_shard`.  Anything else -- a single-file index, a
        fresh path, or a layout whose node count changed because the
        batch added nodes -- is rewritten in full (``shards`` picks the
        layout for fresh paths; an incompatible existing layout keeps
        its shard count).  Clears the dirty set and the delta log.

        Returns:
            A summary dict: ``layout`` ('single' or 'sharded'),
            ``full_rewrite``, ``rewritten_shards`` (sharded only), and
            ``flushed_batches``.

        Raises:
            EstimatorError: read-only (mmap-backed) index, or an
                unwritable/corrupt destination layout.
        """
        if self.mmap_backed:
            raise EstimatorError(
                "this index is memory-mapped read-only; reload it with "
                "mmap=False before compacting"
            )
        path = Path(path)
        manifest_path: Optional[Path] = None
        directory = path
        if path.is_dir():
            candidate = path / MANIFEST_NAME
            if candidate.exists():
                manifest_path = candidate
        elif path.name == MANIFEST_NAME and path.exists():
            manifest_path = path
            directory = path.parent
        flushed = len(self.delta_log)
        info: Dict[str, Any]
        if manifest_path is not None:
            manifest = _parse_manifest(manifest_path)
            compatible = (
                manifest["n"] == self.num_nodes
                and manifest["flavor"] == self.flavor
                and manifest["k"] == self.k
                and manifest["seed"] == self.seed
                and manifest["rank_sup"] == self.rank_sup
                and manifest["labels_digest"] == _labels_digest(self._labels)
            )
            shard_entries = manifest["shards"]
            if compatible:
                starts = [shard["start"] for shard in shard_entries]
                dirty_shards = sorted({
                    bisect_right(starts, vid) - 1 for vid in self._dirty_ids
                })
                for shard_index in dirty_shards:
                    self.write_shard(directory, shard_index)
                info = {
                    "layout": "sharded",
                    "full_rewrite": False,
                    "rewritten_shards": dirty_shards,
                    "total_shards": len(shard_entries),
                }
            else:
                self.save(directory, shards=len(shard_entries))
                info = {
                    "layout": "sharded",
                    "full_rewrite": True,
                    "rewritten_shards": list(range(len(shard_entries))),
                    "total_shards": len(shard_entries),
                }
        elif shards is not None:
            self.save(path, shards=shards)
            info = {
                "layout": "sharded",
                "full_rewrite": True,
                "rewritten_shards": list(range(shards)),
                "total_shards": shards,
            }
        else:
            self.save(path)
            info = {"layout": "single", "full_rewrite": True}
        self._dirty_ids.clear()
        self.delta_log.clear()
        info["flushed_batches"] = flushed
        return info

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(
        self, path: Union[str, Path], shards: Optional[int] = None
    ) -> None:
        """Persist the index.

        With ``shards=None`` (default) *path* becomes a single binary
        file: a JSON header followed by the raw bytes of each column.
        With ``shards=N`` *path* becomes a **directory** holding a
        ``manifest.json`` plus N shard files, each carrying a contiguous
        node-id range's slice of every column -- the layout
        :meth:`write_shard` can refresh one shard of at a time.  Node
        labels must be ints or strings (anything JSON round-trips
        exactly) in both layouts.

        Args:
            path: Output file (or directory, with ``shards``).
            shards: Shard count for the directory layout; ``None``
                writes one flat file.

        Raises:
            EstimatorError: non-int/str node labels.
            OSError: unwritable destination.
        """
        self._check_saveable_labels()
        if shards is not None:
            self._save_sharded(Path(path), shards)
            return
        self._guard_mmap_overwrite(Path(path))
        # Crash-atomic: the bytes land in a same-directory temp file and
        # replace *path* only once fsync'd, so a crash mid-save can
        # never leave a torn index behind.
        with atomic_output(path) as handle:
            self._write_single(handle)

    def _write_single(self, handle) -> None:
        """Serialise the single-file layout onto an open binary handle."""
        header = {
            "flavor": self.flavor,
            "k": self.k,
            "seed": self.seed,
            "rank_sup": self.rank_sup,
            "n": self.num_nodes,
            "entries": self.num_entries,
            "byteorder": sys.byteorder,
            "labels": self._labels,
        }
        header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
        handle.write(_MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        for column in (
            self._offsets, self._node, self._dist, self._rank,
            self._tiebreak, self._aux, self._hip,
        ):
            handle.write(column.tobytes())

    def to_bytes(self) -> bytes:
        """The single-file layout as in-memory bytes (what :meth:`save`
        would write), ready to ship to a resyncing replica."""
        self._check_saveable_labels()
        if self.mmap_backed:
            raise EstimatorError(
                "to_bytes needs an eagerly loaded index: memory-mapped "
                "columns are views, reload with mmap=False first"
            )
        buffer = io.BytesIO()
        self._write_single(buffer)
        return buffer.getvalue()

    @classmethod
    def from_bytes(
        cls, data: bytes, backend: str = "auto", kernel_workers=None
    ) -> "AdsIndex":
        """Rebuild an index from :meth:`to_bytes` output (always eager)."""
        kernels.resolve(backend)
        kernel_parallel.parse_workers(kernel_workers)
        origin = "<index bytes>"
        handle = io.BytesIO(data)
        header = _read_json_header(handle, origin, _MAGIC, "AdsIndex")
        try:
            flavor = header["flavor"]
            k = header["k"]
            seed = header["seed"]
            rank_sup = header["rank_sup"]
            labels = header["labels"]
            n = header["n"]
            entries = header["entries"]
            swap = header["byteorder"] != sys.byteorder
        except KeyError as error:
            raise EstimatorError(f"{origin}: corrupt header ({error})")
        if not (isinstance(n, int) and isinstance(entries, int)
                and n >= 0 and entries >= 0):
            raise EstimatorError(f"{origin}: corrupt header counts")
        offsets = _read_column(handle, origin, "q", n + 1, swap)
        columns = [
            _read_column(handle, origin, typecode, entries, swap)
            for typecode in _COLUMN_TYPECODES
        ]
        try:
            return cls(
                flavor, k, seed, labels, offsets, *columns,
                rank_sup=rank_sup, backend=backend,
                kernel_workers=kernel_workers,
            )
        except (ParameterError, TypeError, ValueError) as error:
            raise EstimatorError(f"{origin}: corrupt header ({error})")

    def labels_digest(self) -> str:
        """Fingerprint of the node label list (id order included) --
        what topology validation compares across router and workers."""
        return _labels_digest(self._labels)

    def content_digest(self) -> str:
        """Fingerprint of the full sketch state: parameters, labels,
        and every column's raw bytes.

        Two indexes agree here iff they answer every query identically,
        so the resync protocol uses it to prove a re-seeded replica
        matches its donor bit for bit.  Eager indexes only (a mapped
        column is a view, and mmap workers never take writes anyway).
        """
        if self.mmap_backed:
            raise EstimatorError(
                "content_digest needs an eagerly loaded index; reload "
                "with mmap=False"
            )
        digest = hashlib.blake2b(digest_size=16)
        params = json.dumps(
            [self.flavor, self.k, self.seed, self.rank_sup,
             self.num_nodes, self.num_entries, sys.byteorder],
            ensure_ascii=False, separators=(",", ":"),
        ).encode("utf-8")
        digest.update(params)
        digest.update(_labels_digest(self._labels).encode("ascii"))
        for column in (
            self._offsets, self._node, self._dist, self._rank,
            self._tiebreak, self._aux, self._hip,
        ):
            digest.update(column.tobytes())
        return digest.hexdigest()

    def _check_saveable_labels(self) -> None:
        for label in self._labels:
            if not isinstance(label, (int, str)) or isinstance(label, bool):
                raise EstimatorError(
                    "AdsIndex.save supports int/str node labels, got "
                    f"{type(label).__name__}"
                )

    def _guard_mmap_overwrite(self, destination: Path) -> None:
        """Refuse to write a file this index's columns are mapped from.

        Truncating a memory-mapped file makes the next column read a
        SIGBUS -- a hard interpreter crash, not an exception -- and the
        write would be reading its own half-clobbered source anyway.
        Save to a different path, or reload eagerly first.
        """
        if not self._mmap_paths:
            return
        try:
            resolved = destination.resolve()
        except OSError:  # pragma: no cover - unresolvable exotic paths
            return
        if resolved in self._mmap_paths:
            raise EstimatorError(
                f"{destination}: this index is memory-mapped from that "
                "file; save to a different path or reload with "
                "mmap=False before overwriting it"
            )

    # -- sharded directory layout --------------------------------------
    def _save_sharded(self, directory: Path, shards: int) -> None:
        require(shards >= 1, f"shards must be >= 1, got {shards}")
        directory.mkdir(parents=True, exist_ok=True)
        digest = _labels_digest(self._labels)
        manifest_shards = []
        for i, (start, stop) in enumerate(shard_ranges(len(self._labels),
                                                       shards)):
            file_name = f"shard-{i:05d}.adsshd"
            self._write_shard_file(directory / file_name, start, stop, digest)
            manifest_shards.append({
                "file": file_name,
                "start": start,
                "stop": stop,
                "entries": self._offsets[stop] - self._offsets[start],
            })
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": 1,
            "flavor": self.flavor,
            "k": self.k,
            "seed": self.seed,
            "rank_sup": self.rank_sup,
            "n": self.num_nodes,
            "entries": self.num_entries,
            "labels_digest": digest,
            "shards": manifest_shards,
        }
        # The manifest lands last and atomically: a crashed save leaves
        # either the old manifest or orphan shard files with none, never
        # a manifest pointing at torn shards.
        _write_manifest(directory / MANIFEST_NAME, manifest)

    def _write_shard_file(
        self, path: Path, start: int, stop: int, digest: str
    ) -> None:
        lo, hi = self._offsets[start], self._offsets[stop]
        header = {
            "format": "adsidx-shard",
            "version": 1,
            "flavor": self.flavor,
            "k": self.k,
            "seed": self.seed,
            "rank_sup": self.rank_sup,
            "n": self.num_nodes,
            "start": start,
            "stop": stop,
            "entries": hi - lo,
            "byteorder": sys.byteorder,
            "labels": self._labels[start:stop],
            "labels_digest": digest,
        }
        header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
        offsets = array("q", (self._offsets[i] - lo
                              for i in range(start, stop + 1)))
        self._guard_mmap_overwrite(path)
        with atomic_output(path) as handle:
            handle.write(_SHARD_MAGIC)
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(header_bytes)
            handle.write(offsets.tobytes())
            for column in (
                self._node, self._dist, self._rank,
                self._tiebreak, self._aux, self._hip,
            ):
                handle.write(column[lo:hi].tobytes())

    def write_shard(
        self, directory: Union[str, Path], shard_index: int
    ) -> None:
        """Refresh one shard file of an existing sharded layout from
        this index (incremental per-shard rebuild).

        The manifest must describe the same sketch set parameters and
        the same node labels in the same id order (entry node ids are
        global); only that shard's file and the manifest entry counts
        are rewritten.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        manifest = _parse_manifest(manifest_path)
        self._check_saveable_labels()
        digest = _labels_digest(self._labels)
        for field, mine in (
            ("flavor", self.flavor), ("k", self.k), ("seed", self.seed),
            ("rank_sup", self.rank_sup), ("n", self.num_nodes),
            ("labels_digest", digest),
        ):
            if manifest[field] != mine:
                raise EstimatorError(
                    f"{manifest_path}: layout was built with "
                    f"{field}={manifest[field]!r}, index has {mine!r}"
                )
        entries = manifest["shards"]
        if not 0 <= shard_index < len(entries):
            raise ParameterError(
                f"shard_index {shard_index} outside [0, {len(entries)})"
            )
        shard = entries[shard_index]
        start, stop = shard["start"], shard["stop"]
        self._write_shard_file(directory / shard["file"], start, stop, digest)
        shard["entries"] = self._offsets[stop] - self._offsets[start]
        manifest["entries"] = sum(s["entries"] for s in entries)
        # Shard then manifest, both atomic: at every crash point the
        # manifest on disk describes complete shard files.
        _write_manifest(manifest_path, manifest)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        mmap: bool = False,
        backend: str = "auto",
        kernel_workers=None,
    ) -> "AdsIndex":
        """Read an index written by :meth:`save`.

        Args:
            path: A single-file index, a sharded layout directory, or
                that directory's ``manifest.json``.
            backend: Estimator kernel for batch queries
                (:mod:`repro.ads.kernels`): ``"auto"`` (NumPy when
                installed, honouring ``REPRO_BACKEND``), ``"numpy"``,
                or ``"python"``.  Queries return bit-identical floats
                either way.  On a lazily mapped sharded layout the
                NumPy kernel assembles all shards on the first batch
                query; single-node queries stay lazy.
            kernel_workers: Fan batch queries out across this many
                cores (``"auto"``/``None`` sizes to the hardware and
                layout, honouring ``REPRO_KERNEL_WORKERS``; sharded
                mmap loads partition per shard, zero-copy).  Results
                are bit-identical at any count.
            mmap: With the default ``False``, every column is copied
                into process-owned ``array`` objects (byte order
                corrected when the file came from a different-endian
                machine).  With ``True``, load time is O(header +
                manifest): columns become zero-copy views over
                memory-mapped file bytes (:mod:`repro.ads.mmap_io`),
                sharded layouts map each shard lazily on first touch,
                and the HIP prefix-sum column is computed on first
                batch-query use.  Every query returns bit-identical
                floats in both modes.  A foreign-endian file cannot be
                viewed zero-copy and silently falls back to the eager
                path.

        Returns:
            The reloaded :class:`AdsIndex`.

        Raises:
            EstimatorError: missing/truncated/corrupt files, or a
                shard/manifest mismatch.

        Example:
            >>> import tempfile, os
            >>> from repro.graph import path_graph
            >>> index = AdsIndex.build(path_graph(4).to_csr(), k=4)
            >>> path = os.path.join(tempfile.mkdtemp(), "tiny.adsidx")
            >>> index.save(path)
            >>> AdsIndex.load(path, mmap=True).node_cardinality_at(0, 1.0)
            2.0
        """
        # Validate the backend request up front: the constructor call
        # below sits inside a corrupt-header guard, and a bad backend
        # argument is a caller error, not file corruption.
        kernels.resolve(backend)
        kernel_parallel.parse_workers(kernel_workers)
        path = Path(path)
        if path.is_dir():
            return cls._load_sharded(
                path / MANIFEST_NAME, mmap=mmap, backend=backend,
                kernel_workers=kernel_workers,
            )
        if path.name == MANIFEST_NAME:
            return cls._load_sharded(
                path, mmap=mmap, backend=backend,
                kernel_workers=kernel_workers,
            )
        with open(path, "rb") as handle:
            header = _read_json_header(handle, path, _MAGIC, "AdsIndex")
            try:
                flavor = header["flavor"]
                k = header["k"]
                seed = header["seed"]
                rank_sup = header["rank_sup"]
                labels = header["labels"]
                n = header["n"]
                entries = header["entries"]
                swap = header["byteorder"] != sys.byteorder
            except KeyError as error:
                raise EstimatorError(f"{path}: corrupt header ({error})")
            if not (isinstance(n, int) and isinstance(entries, int)
                    and n >= 0 and entries >= 0):
                raise EstimatorError(f"{path}: corrupt header counts")
            if mmap and not swap:
                counts = [n + 1] + [entries] * len(_COLUMN_TYPECODES)
                views = map_file_columns(
                    path, handle.fileno(), handle.tell(), counts,
                    ("q",) + _COLUMN_TYPECODES,
                )
                offsets, columns = views[0], views[1:]
            else:
                offsets = _read_column(handle, path, "q", n + 1, swap)
                columns = [
                    _read_column(handle, path, typecode, entries, swap)
                    for typecode in _COLUMN_TYPECODES
                ]
                mmap = False
        try:
            index = cls(
                flavor, k, seed, labels, offsets, *columns,
                rank_sup=rank_sup, validate_columns=not mmap,
                backend=backend, kernel_workers=kernel_workers,
            )
        except (ParameterError, TypeError, ValueError) as error:
            # Parseable-but-nonsensical header fields (bogus flavor,
            # k <= 0, non-numeric values): corruption, not a caller bug.
            raise EstimatorError(f"{path}: corrupt header ({error})")
        index.mmap_backed = mmap
        if mmap:
            index._mmap_paths = frozenset({path.resolve()})
        return index

    @classmethod
    def _load_sharded(
        cls, manifest_path: Path, mmap: bool = False,
        backend: str = "auto", kernel_workers=None,
    ) -> "AdsIndex":
        """Assemble an index from a sharded layout.

        Eager mode concatenates every shard's columns into owned
        arrays.  ``mmap=True`` reads only the manifest, the per-shard
        JSON headers, and the small per-node offset columns; the six
        entry columns become :class:`~repro.ads.mmap_io.ShardedColumn`
        views that map each shard file on the first query touching it.
        """
        manifest = _parse_manifest(manifest_path)
        n = manifest["n"]
        offsets = array("q", [0])
        columns = [array(typecode) for typecode in _COLUMN_TYPECODES]
        shard_specs: List[ShardSpec] = []
        labels: List[Hashable] = []
        base = 0
        for shard in manifest["shards"]:
            shard_path = manifest_path.parent / shard["file"]
            try:
                handle = open(shard_path, "rb")
            except OSError as error:
                raise EstimatorError(
                    f"{manifest_path}: missing shard file ({error})"
                )
            with handle:
                header = _read_json_header(
                    handle, shard_path, _SHARD_MAGIC, "AdsIndex shard"
                )
                try:
                    swap = header["byteorder"] != sys.byteorder
                    shard_labels = header["labels"]
                    count = header["entries"]
                    claimed = {
                        field: header[field]
                        for field in ("flavor", "k", "seed", "rank_sup", "n",
                                      "start", "stop", "labels_digest")
                    }
                except KeyError as error:
                    raise EstimatorError(
                        f"{shard_path}: corrupt shard header ({error})"
                    )
                expected = {
                    "flavor": manifest["flavor"], "k": manifest["k"],
                    "seed": manifest["seed"],
                    "rank_sup": manifest["rank_sup"], "n": n,
                    "start": shard["start"], "stop": shard["stop"],
                    "labels_digest": manifest["labels_digest"],
                }
                if claimed != expected:
                    raise EstimatorError(
                        f"{shard_path}: shard/manifest mismatch "
                        f"(shard claims {claimed}, manifest expects "
                        f"{expected})"
                    )
                if not (isinstance(count, int) and count >= 0):
                    raise EstimatorError(f"{shard_path}: corrupt entry count")
                if mmap and swap:
                    # A foreign-endian shard cannot be viewed zero-copy;
                    # reload the whole layout eagerly (byteswapping).
                    return cls._load_sharded(
                        manifest_path, mmap=False, backend=backend,
                        kernel_workers=kernel_workers,
                    )
                span = shard["stop"] - shard["start"]
                if len(shard_labels) != span:
                    raise EstimatorError(
                        f"{shard_path}: {len(shard_labels)} labels for a "
                        f"{span}-node range"
                    )
                shard_offsets = _read_column(
                    handle, shard_path, "q", span + 1, swap
                )
                if shard_offsets[0] != 0 or shard_offsets[-1] != count:
                    raise EstimatorError(
                        f"{shard_path}: shard offsets do not span its "
                        "entries"
                    )
                offsets.extend(value + base for value in shard_offsets[1:])
                if mmap:
                    data_start = handle.tell()
                    file_size = os.fstat(handle.fileno()).st_size
                    if file_size < data_start + 8 * count * len(
                        _COLUMN_TYPECODES
                    ):
                        raise EstimatorError(f"{shard_path}: truncated file")
                    shard_specs.append(
                        ShardSpec(shard_path, data_start, count, base)
                    )
                else:
                    for column, typecode in zip(columns, _COLUMN_TYPECODES):
                        column.extend(_read_column(
                            handle, shard_path, typecode, count, swap
                        ))
                labels.extend(shard_labels)
                base += count
        if _labels_digest(labels) != manifest["labels_digest"]:
            raise EstimatorError(
                f"{manifest_path}: assembled labels do not match the "
                "manifest digest"
            )
        if mmap:
            maps = ShardMaps(shard_specs, _COLUMN_TYPECODES)
            columns = [
                ShardedColumn(maps, position, typecode)
                for position, typecode in enumerate(_COLUMN_TYPECODES)
            ]
        try:
            index = cls(
                manifest["flavor"], manifest["k"], manifest["seed"], labels,
                offsets, *columns, rank_sup=manifest["rank_sup"],
                validate_columns=not mmap, backend=backend,
                kernel_workers=kernel_workers,
            )
        except (ParameterError, TypeError, ValueError) as error:
            raise EstimatorError(f"{manifest_path}: corrupt layout ({error})")
        index.mmap_backed = mmap
        if mmap:
            index._mmap_paths = frozenset(
                spec.path.resolve() for spec in shard_specs
            )
        return index
