"""Estimator kernel backends for :class:`~repro.ads.index.AdsIndex`.

Every batch query the index serves -- the all-nodes cardinality sweep,
the closeness sweep, the whole-graph neighborhood function, the HIP
prefix-sum (cum-hip) materialisation, and the per-slice HIP-weight
recompute behind dynamic updates -- reduces to bulk arithmetic over the
flat entry columns.  This package holds that arithmetic twice:

* :mod:`repro.ads.kernels.pure` -- the reference loops, stdlib only.
  Always importable; the authority on every float.
* :mod:`repro.ads.kernels.np_kernel` -- the same operations vectorised
  over zero-copy ``np.frombuffer`` views of the columns.  Importable
  only when NumPy is installed (``pip install adsketch[fast]``).

Both kernels expose one module-level API (``NAME``, ``prepare_views``,
``compute_cum_hip``, ``batch_cardinality``, ``batch_closeness``,
``neighborhood_series``, and the three per-flavor HIP-weight
functions), so the index dispatches by holding a module reference.

**Float contract.**  The NumPy kernel is not merely "close": it
performs every floating-point addition in the same left-to-right
per-slice order as the pure loops (``np.cumsum`` and the padded
segmented scans are sequential scans, unlike ``np.sum``'s pairwise
tree), so cum-hip columns, cardinalities, closeness sums, neighborhood
series, and recomputed HIP weights are bit-identical across backends.
The guarantee the rest of the system may *rely* on is: exact equality
for cum-hip and cardinality, and <= 1e-9 relative error for aggregated
closeness/neighborhood sums.

**Selection.**  ``resolve(backend)`` maps a backend name to a kernel
module:

* ``"python"`` -- the pure kernel, always.
* ``"numpy"``  -- the NumPy kernel, or :class:`ParameterError` when
  NumPy is not importable (an explicit request must not silently
  degrade).
* ``"auto"`` (the default) -- consults the ``REPRO_BACKEND``
  environment variable (same three values) and otherwise picks NumPy
  when available, falling back to pure Python.

``AdsIndex(backend=...)``, the CLI ``--backend`` flag, and the serve
daemon's ``/stats`` report make the choice observable end to end.

**Parallel execution.**  :mod:`repro.ads.kernels.parallel` wraps either
kernel in a partition-parallel dispatcher (:func:`resolve_parallel`):
batch queries and the dynamic-update HIP recompute fan out across a
thread or process pool over contiguous node ranges (one per shard for
sharded mmap layouts, entry-balanced otherwise) and merge in fixed
partition order, so results stay bit-identical at any worker count.
``AdsIndex(kernel_workers=...)``, the ``REPRO_KERNEL_WORKERS`` env
var, and the CLI ``--kernel-workers`` flag select the worker count.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import ParameterError
from repro.ads.kernels import pure

BACKEND_CHOICES = ("auto", "numpy", "python")
ENV_VAR = "REPRO_BACKEND"

_UNSET = object()
_NUMPY_KERNEL = _UNSET  # import-once cache: module, or None when missing


def load_numpy_kernel():
    """The NumPy kernel module, or ``None`` when NumPy is missing.

    The import is attempted once and cached (``None`` included), so a
    NumPy-less deployment pays one failed import, not one per index.
    """
    global _NUMPY_KERNEL
    if _NUMPY_KERNEL is _UNSET:
        try:
            from repro.ads.kernels import np_kernel
        except ImportError:
            _NUMPY_KERNEL = None
        else:
            _NUMPY_KERNEL = np_kernel
    return _NUMPY_KERNEL


def _reset_numpy_cache() -> None:
    """Forget the cached import attempt (tests simulating a missing
    NumPy re-resolve after blocking the import)."""
    global _NUMPY_KERNEL
    _NUMPY_KERNEL = _UNSET


def numpy_available() -> bool:
    """Whether the accelerated kernel can actually be loaded here."""
    return load_numpy_kernel() is not None


def available_backends() -> List[str]:
    """The backend names :func:`resolve` would accept *and* satisfy."""
    names = ["auto", "python"]
    if numpy_available():
        names.insert(1, "numpy")
    return names


def resolve(backend: Optional[str] = None):
    """Map a backend name to its kernel module (see module docs).

    Args:
        backend: ``"auto"`` / ``"numpy"`` / ``"python"``; ``None``
            means ``"auto"``.

    Raises:
        ParameterError: an unknown name (argument or ``REPRO_BACKEND``
            value), or ``"numpy"`` requested where NumPy is not
            importable.
    """
    name = "auto" if backend is None else backend
    if name not in BACKEND_CHOICES:
        raise ParameterError(
            f"unknown backend {backend!r}; expected one of "
            f"{list(BACKEND_CHOICES)}"
        )
    if name == "auto":
        env = os.environ.get(ENV_VAR, "").strip().lower()
        if env:
            if env not in BACKEND_CHOICES:
                raise ParameterError(
                    f"unknown {ENV_VAR}={env!r}; expected one of "
                    f"{list(BACKEND_CHOICES)}"
                )
            name = env
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name == "python":
        return pure
    kernel = load_numpy_kernel()
    if kernel is None:
        raise ParameterError(
            "backend='numpy' requested but NumPy is not importable; "
            "install the extra (pip install adsketch[fast]) or use "
            "backend='auto' to fall back to the pure-Python kernel"
        )
    return kernel


def resolve_parallel(
    backend: Optional[str] = None,
    kernel_workers=None,
    *,
    entries: int = 0,
    shards: Optional[int] = None,
):
    """Resolve a backend *and* a worker count to an executable kernel.

    Returns ``(kernel, workers)``: the plain kernel module when the
    effective worker count is 1, or a
    :class:`~repro.ads.kernels.parallel.ParallelKernel` wrapping it
    otherwise.  *entries* and *shards* feed the auto-worker heuristics
    (see :func:`repro.ads.kernels.parallel.resolve_workers`).

    Raises:
        ParameterError: an unknown backend or malformed worker request.
    """
    from repro.ads.kernels import parallel

    base = resolve(backend)
    workers = parallel.resolve_workers(
        kernel_workers, entries=entries, shards=shards
    )
    if workers <= 1:
        return base, workers
    return (
        parallel.ParallelKernel(
            base, workers, parallel.resolve_pool(base.NAME)
        ),
        workers,
    )
