"""The NumPy estimator kernel: vectorised, bit-compatible with pure.

Importing this module requires NumPy; the dispatcher
(:func:`repro.ads.kernels.resolve`) treats the ImportError as "backend
unavailable" and falls back to :mod:`repro.ads.kernels.pure`.

Zero-copy views
---------------
``prepare_views`` wraps each flat column in an ``np.frombuffer`` view:

* eager ``array.array`` columns and single-file-mmap ``memoryview``
  columns are viewed in place -- no bytes move;
* a sharded-mmap :class:`~repro.ads.mmap_io.ShardedColumn` is
  *assembled* once from its per-shard zero-copy views into one owned
  ndarray (batch sweeps touch every shard anyway, so the one-time
  concatenation is the price of serving them at array speed; single
  node queries keep using the lazy column and never pay it).

The :class:`Views` object also lazily caches two derived artifacts the
hot paths reuse across calls: the per-distance sort of the entry
columns (neighborhood series) and the unique-distance table
(alpha-kernel closeness evaluates the Python ``alpha`` once per
distinct distance instead of once per entry).  ``AdsIndex`` drops the
whole object whenever a dynamic update splices the columns.

Exactness
---------
Floating-point addition is not associative, and the rest of the system
asserts bit-equality between batch queries, per-node estimators, and
both persisted layouts -- so these kernels never use pairwise
reductions (``np.sum`` / ``np.add.reduceat``).  Every aggregation runs
as a *sequential* scan in the pure kernel's order:

* per-slice sums and prefix columns go through a padded-row
  ``np.cumsum(axis=1)`` (each row is an independent left-to-right
  scan);
* skewed groups (the neighborhood series' per-distance masses) use a
  bounded position-wise scan plus a seeded ``np.cumsum`` tail;
* the k-mins / k-partition HIP-weight recurrences vectorise over
  entries but keep the per-permutation / per-bucket combination order
  of the pure estimators (``np.minimum.accumulate`` is exact, and the
  k-term product/sum loops run in the same order).

Bottom-k HIP weights are a running k-th-smallest order statistic -- an
inherently sequential recurrence -- so this kernel delegates them to
the shared scalar core unchanged.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimatorError
from repro.ads.kernels import pure as _pure
from repro.ads.mmap_io import ShardedColumn

NAME = "numpy"

# Padded segmented scans materialise (rows x maxlen) scratch blocks;
# chunk rows so scratch stays bounded (~64 MiB of float64) however
# large the index is.
_CHUNK_CELLS = 8_000_000

# Position-wise group scans degrade when one group is huge; beyond
# this many leading elements a group finishes with one seeded cumsum.
_GROUP_SCAN_CAP = 64


def _as_ndarray(column, dtype) -> np.ndarray:
    """A zero-copy ndarray over *column* (assembled for sharded mmaps)."""
    if isinstance(column, ShardedColumn):
        views = [np.frombuffer(view, dtype=dtype)
                 for view in column.shard_views()]
        if not views:
            return np.empty(0, dtype=dtype)
        return np.concatenate(views)
    return np.frombuffer(column, dtype=dtype)


class Views:
    """Prepared ndarray views over one index's columns (see module docs)."""

    __slots__ = (
        "offsets", "dist", "hip", "starts", "ends", "lengths", "n",
        "_dist_sorted", "_unique_dist", "_padded_plan",
    )

    def __init__(self, offsets, dist, hip):
        self.offsets = _as_ndarray(offsets, np.int64)
        self.dist = _as_ndarray(dist, np.float64)
        self.hip = _as_ndarray(hip, np.float64)
        self.starts = self.offsets[:-1]
        self.ends = self.offsets[1:]
        self.lengths = self.ends - self.starts
        self.n = len(self.lengths)
        self._dist_sorted = None
        self._unique_dist = None
        self._padded_plan = None

    def padded_plan(self):
        """The padded-gather geometry shared by every segmented scan
        over the per-node slices, cached when the whole index fits one
        scan chunk (it is O(n * longest slice) memory, so huge indexes
        fall back to rebuilding it chunk by chunk).

        ``(indices, rows, last_slot, valid, targets)``: the clamped
        (n x maxlen) gather matrix, a row iota, each row's last valid
        cell, the in-slice cell mask, and the flat entry slots those
        cells scatter back to.
        """
        plan = self._padded_plan
        if plan is None:
            width = int(self.lengths.max()) if self.n else 0
            if self.n * width > _CHUNK_CELLS:
                return None
            indices = self.starts[:, None] + np.arange(width)[None, :]
            np.minimum(indices, max(len(self.dist) - 1, 0), out=indices)
            valid = np.arange(width)[None, :] < self.lengths[:, None]
            plan = (
                indices,
                np.arange(self.n),
                np.maximum(self.lengths - 1, 0),
                valid,
                indices[valid],
            )
            self._padded_plan = plan
        return plan

    def dist_sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(sorted positive distances, their HIP weights)``, stably
        sorted so equal distances keep entry order; cached."""
        cached = self._dist_sorted
        if cached is None:
            mask = self.dist > 0.0
            positive_dist = self.dist[mask]
            order = np.argsort(positive_dist, kind="stable")
            cached = (positive_dist[order], self.hip[mask][order])
            self._dist_sorted = cached
        return cached

    def unique_dist(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(unique distances, inverse index per entry)``; cached so
        repeated alpha-kernel sweeps pay the sort once."""
        cached = self._unique_dist
        if cached is None:
            unique, inverse = np.unique(self.dist, return_inverse=True)
            cached = (unique, inverse.astype(np.int64, copy=False))
            self._unique_dist = cached
        return cached


def prepare_views(offsets, dist, hip) -> Views:
    return Views(offsets, dist, hip)


# ----------------------------------------------------------------------
# Exact segmented scans
# ----------------------------------------------------------------------
def _slice_scan(
    values: np.ndarray,
    views: Views,
    prefix_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact left-to-right per-slice sums (and optional prefix column).

    Rows are padded to the longest slice, gathered, and scanned with
    ``np.cumsum(axis=1)`` -- a sequential scan per row, so every
    slice's partial sums equal the pure loop's bit for bit.  Cells past
    a slice's end are clamped gathers whose values are never read back.
    The gather geometry comes from the views' cached plan when the
    index fits one scan chunk, and is rebuilt chunk by chunk otherwise
    (bounded scratch memory however large the index).  Returns the
    per-slice totals; when *prefix_out* is given the per-slot running
    sums are scattered into it as well.
    """
    starts, lengths, n = views.starts, views.lengths, views.n
    totals = np.zeros(n, dtype=np.float64)
    if n == 0 or not len(values):
        return totals
    plan = views.padded_plan()
    if plan is not None:
        indices, rows, last_slot, valid, targets = plan
        padded = values[indices]
        np.cumsum(padded, axis=1, out=padded)
        totals = np.where(lengths > 0, padded[rows, last_slot], 0.0)
        if prefix_out is not None:
            prefix_out[targets] = padded[valid]
        return totals
    rows_per_chunk = max(1, _CHUNK_CELLS // max(1, int(lengths.max())))
    last = len(values) - 1
    for row0 in range(0, n, rows_per_chunk):
        row1 = min(row0 + rows_per_chunk, n)
        chunk_lengths = lengths[row0:row1]
        width = int(chunk_lengths.max()) if row1 > row0 else 0
        if width == 0:
            continue
        indices = starts[row0:row1, None] + np.arange(width)[None, :]
        np.minimum(indices, last, out=indices)
        padded = values[indices]
        np.cumsum(padded, axis=1, out=padded)
        rows = np.arange(row1 - row0)
        totals[row0:row1] = np.where(
            chunk_lengths > 0,
            padded[rows, np.maximum(chunk_lengths - 1, 0)],
            0.0,
        )
        if prefix_out is not None:
            valid = np.arange(width)[None, :] < chunk_lengths[:, None]
            prefix_out[indices[valid]] = padded[valid]
    return totals


def _group_sums(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Exact left-to-right sums of contiguous groups of wildly varying
    sizes (the per-distance masses of the neighborhood series).

    Groups are scanned position-wise (one vectorised gather per
    position, longest groups first so the active set is a shrinking
    prefix); after ``_GROUP_SCAN_CAP`` positions the few oversized
    groups each finish with a ``np.cumsum`` seeded by their partial sum
    -- still one sequential chain per group, so the result is exact.
    """
    n = len(starts)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    order = np.argsort(-lengths, kind="stable")
    sorted_starts = starts[order]
    sorted_lengths = lengths[order]
    ascending_neg = -sorted_lengths  # for searchsorted active counts
    partial = np.zeros(n, dtype=np.float64)
    cap = min(int(sorted_lengths[0]), _GROUP_SCAN_CAP)
    for position in range(cap):
        active = np.searchsorted(ascending_neg, -position, side="left")
        taken = sorted_starts[:active] + position
        partial[:active] += values[taken]
    oversized = int(np.searchsorted(ascending_neg, -_GROUP_SCAN_CAP, "left"))
    for i in range(oversized):
        lo = int(sorted_starts[i]) + _GROUP_SCAN_CAP
        hi = int(sorted_starts[i]) + int(sorted_lengths[i])
        seeded = np.empty(hi - lo + 1, dtype=np.float64)
        seeded[0] = partial[i]
        seeded[1:] = values[lo:hi]
        partial[i] = np.cumsum(seeded)[-1]
    sums = np.empty(n, dtype=np.float64)
    sums[order] = partial
    return sums


# ----------------------------------------------------------------------
# Batch queries
# ----------------------------------------------------------------------
def compute_cum_hip(views: Views) -> array:
    """Per-node HIP prefix sums, bit-identical to the pure kernel's."""
    cumulative = array("d", bytes(8 * len(views.hip)))
    if len(views.hip):
        _slice_scan(views.hip, views, prefix_out=np.frombuffer(cumulative))
    return cumulative


def batch_cardinality(views: Views, cum, d: float) -> List[float]:
    """n_d(v) for every node id: one *vectorised* binary search over
    all slices at once (the distance column is sorted within each
    slice), then a prefix-sum gather -- the same cum-hip floats the
    pure kernel reads."""
    if not len(views.dist):
        return [0.0] * views.n
    low = views.starts.copy()
    high = views.ends.copy()
    last = len(views.dist) - 1
    while True:
        unfinished = low < high
        if not unfinished.any():
            break
        mid = (low + high) >> 1
        go_right = unfinished & (
            views.dist[np.minimum(mid, last)] <= d
        )
        low = np.where(go_right, mid + 1, low)
        high = np.where(unfinished & ~go_right, mid, high)
    cum_view = np.frombuffer(cum)
    values = np.where(
        low > views.starts, cum_view[np.maximum(low - 1, 0)], 0.0
    )
    return values.tolist()


def _alpha_per_entry(
    views: Views, alpha: Callable[[float], float]
) -> np.ndarray:
    """alpha evaluated once per *distinct* distance, gathered per entry.

    The zero distance (the source itself) is never passed to alpha --
    the pure loop skips those entries before evaluating the kernel --
    and its slot carries 0.0, which the d == 0 mask re-zeroes anyway.
    """
    unique, inverse = views.unique_dist()
    evaluated = np.empty(len(unique), dtype=np.float64)
    for i, distance in enumerate(unique.tolist()):
        evaluated[i] = 0.0 if distance == 0.0 else float(alpha(distance))
    negative = evaluated < 0.0
    if negative.any():
        value = float(evaluated[np.argmax(negative)])
        raise EstimatorError(
            f"g must be nonnegative (got {value}); HIP "
            "unbiasedness and the variance bounds assume g >= 0"
        )
    return evaluated[inverse]


def batch_closeness(
    views: Views,
    alpha: Optional[Callable[[float], float]],
    classic: bool,
    cum=None,
) -> List[float]:
    """The beta-free closeness sum of every node id, in id order.

    Per-entry products are exact (one IEEE multiply each, as in the
    pure loop); the per-slice reduction is the sequential padded scan.
    Zero-distance entries contribute an exact ``+ 0.0`` instead of
    being skipped (their kernel value is pinned to 0.0, and finite HIP
    weights times 0.0 is exactly 0.0) -- weights and kernels are
    nonnegative, so no slice ever holds a negative-zero running sum
    for ``+ 0.0`` to perturb.
    """
    if not len(views.dist):
        return [0.0] * views.n
    kernel_values = (
        views.dist if alpha is None else _alpha_per_entry(views, alpha)
    )
    products = views.hip * kernel_values
    totals = _slice_scan(products, views)
    if classic:
        if cum is not None:
            cum_view = np.frombuffer(cum)
            reachable = np.where(
                views.lengths > 0,
                cum_view[np.maximum(views.ends - 1, 0)],
                0.0,
            )
        else:
            reachable = _slice_scan(views.hip, views)
        reachable = reachable - 1.0
        positive = totals > 0.0
        totals = np.where(
            positive, reachable / np.where(positive, totals, 1.0), 0.0
        )
    return totals.tolist()


def neighborhood_series(views: Views) -> List[Tuple[float, float]]:
    """The whole-graph ANF series off the cached distance sort: exact
    per-distance masses (entry order within each distance), then one
    sequential ``np.cumsum`` over sorted distances."""
    sorted_dist, sorted_hip = views.dist_sorted()
    if not len(sorted_dist):
        return []
    boundaries = np.empty(len(sorted_dist), dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_dist[1:], sorted_dist[:-1], out=boundaries[1:])
    group_starts = np.flatnonzero(boundaries)
    group_lengths = np.diff(
        np.concatenate((group_starts, [len(sorted_dist)]))
    )
    masses = _group_sums(sorted_hip, group_starts, group_lengths)
    running = np.cumsum(masses)
    return list(zip(sorted_dist[group_starts].tolist(), running.tolist()))


# ----------------------------------------------------------------------
# Similarity / distance-oracle ops (bottom-k flavor only)
# ----------------------------------------------------------------------
class SimViews:
    """Prepared ndarray views over the similarity columns.

    Same zero-copy rules as :class:`Views`; the entry-node and rank
    columns ride along because similarity estimators read sketch
    membership, not HIP mass.
    """

    __slots__ = ("offsets", "node", "dist", "rank", "starts", "ends", "n")

    def __init__(self, offsets, node, dist, rank):
        self.offsets = _as_ndarray(offsets, np.int64)
        self.node = _as_ndarray(node, np.int64)
        self.dist = _as_ndarray(dist, np.float64)
        self.rank = _as_ndarray(rank, np.float64)
        self.starts = self.offsets[:-1]
        self.ends = self.offsets[1:]
        self.n = len(self.starts)


def prepare_similarity_views(offsets, node, dist, rank) -> SimViews:
    return SimViews(offsets, node, dist, rank)


def _minhash_for_slice(
    views: SimViews, i: int, d: float, k: int
) -> List[Tuple[float, int]]:
    """The bottom-k MinHash sketch of N_d(node i), matching the pure
    kernel's ``(rank, node)`` ordering exactly: ``searchsorted`` for the
    distance cutoff (the slice is distance-sorted), then a ``lexsort``
    keyed on rank-then-node -- the same total order ``sorted`` applies
    to the pair tuples."""
    lo = int(views.starts[i])
    hi = int(views.ends[i])
    cutoff = lo + int(np.searchsorted(views.dist[lo:hi], d, side="right"))
    ranks = views.rank[lo:cutoff]
    nodes = views.node[lo:cutoff]
    order = np.lexsort((nodes, ranks))[:k]
    return list(zip(ranks[order].tolist(), nodes[order].tolist()))


def pairs_jaccard(
    views: SimViews, pairs: Sequence[Tuple[int, int]], d: float, k: int
) -> List[float]:
    """Neighborhood Jaccard per pair.  Sketch extraction is vectorised;
    the union/membership count over <= 2k survivors is the shared
    scalar core (exact integer ratios, identical on every backend)."""
    return [
        _pure.union_jaccard(
            _minhash_for_slice(views, u, d, k),
            _minhash_for_slice(views, v, d, k),
            k,
        )
        for u, v in pairs
    ]


def pairs_union_size(
    views: SimViews,
    pairs: Sequence[Tuple[int, int]],
    d: float,
    k: int,
    rank_sup: float,
) -> List[float]:
    """Neighborhood union-size estimates per pair (shared scalar core
    over vectorised sketch extraction, like :func:`pairs_jaccard`)."""
    return [
        _pure.union_size_from_sketches(
            _minhash_for_slice(views, u, d, k),
            _minhash_for_slice(views, v, d, k),
            k,
            rank_sup,
        )
        for u, v in pairs
    ]


def pairs_closeness_similarity(
    views: SimViews, pairs: Sequence[Tuple[int, int]], k: int
) -> List[float]:
    """Closeness similarity per pair: the distance grid is one
    ``np.unique`` over the two slices (sorted distinct doubles, same
    values as the pure kernel's sorted set union), and the Jaccard
    average accumulates over it in the same left-to-right order."""
    values: List[float] = []
    for u, v in pairs:
        lo_u, hi_u = int(views.starts[u]), int(views.ends[u])
        lo_v, hi_v = int(views.starts[v]), int(views.ends[v])
        grid = np.unique(
            np.concatenate((views.dist[lo_u:hi_u], views.dist[lo_v:hi_v]))
        )
        if not len(grid):
            values.append(0.0)
            continue
        total = 0.0
        norm = 0.0
        for threshold in grid.tolist():
            total += _pure.union_jaccard(
                _minhash_for_slice(views, u, threshold, k),
                _minhash_for_slice(views, v, threshold, k),
                k,
            )
            norm += 1.0
        values.append(total / norm)
    return values


def pairs_distance(
    views: SimViews, pairs: Sequence[Tuple[int, int]]
) -> List[float]:
    """Sketch-space distance upper bounds per pair, vectorised: one
    ``np.intersect1d`` over the two slices' entry nodes (unique within a
    bottom-k slice, hence ``assume_unique``), then an order-free minimum
    of exact one-add sums -- bit-identical to the pure loop."""
    node, dist = views.node, views.dist
    values: List[float] = []
    for u, v in pairs:
        lo_u, hi_u = int(views.starts[u]), int(views.ends[u])
        lo_v, hi_v = int(views.starts[v]), int(views.ends[v])
        _, index_u, index_v = np.intersect1d(
            node[lo_u:hi_u],
            node[lo_v:hi_v],
            assume_unique=True,
            return_indices=True,
        )
        if not len(index_u):
            values.append(math.inf)
            continue
        sums = dist[lo_u:hi_u][index_u] + dist[lo_v:hi_v][index_v]
        values.append(float(sums.min()))
    return values


def similarity_scan(
    views: SimViews, query: int, d: float, k: int, start: int, stop: int
) -> List[Tuple[int, float]]:
    """Neighborhood Jaccard of ``query`` against candidate ids in
    ``[start, stop)`` (query excluded), in id order -- the query sketch
    is extracted once and reused across the sweep."""
    reference = _minhash_for_slice(views, query, d, k)
    scores: List[Tuple[int, float]] = []
    for candidate in range(start, stop):
        if candidate == query:
            continue
        scores.append(
            (
                candidate,
                _pure.union_jaccard(
                    reference,
                    _minhash_for_slice(views, candidate, d, k),
                    k,
                ),
            )
        )
    return scores


# ----------------------------------------------------------------------
# Per-slice HIP-weight recompute (dynamic updates)
# ----------------------------------------------------------------------
def bottom_k_hip_weights(ranks: Sequence[float], k: int) -> List[float]:
    """Bottom-k adjusted weights: a running k-th-smallest order
    statistic is inherently sequential, so this delegates to the shared
    scalar core (bit-identical by construction)."""
    from repro.estimators.hip import bottom_k_adjusted_weights

    return bottom_k_adjusted_weights(ranks, k)


def k_mins_hip_weights(
    rank_vectors: Sequence[Sequence[float]], k: int
) -> List[float]:
    """k-mins adjusted weights (Equation 7), vectorised over entries.

    The per-permutation running minima come from one exact
    ``np.minimum.accumulate``; the no-permutation-hits product runs
    permutation by permutation in the pure estimator's order, so every
    tau -- and so every weight -- is bit-identical.
    """
    if not len(rank_vectors):
        return []
    try:
        matrix = np.array(rank_vectors, dtype=np.float64)
    except ValueError as error:
        raise EstimatorError(f"ragged rank vectors for k={k} ({error})")
    if matrix.ndim != 2 or matrix.shape[1] != k:
        raise EstimatorError(
            f"rank vector length "
            f"{matrix.shape[1] if matrix.ndim == 2 else 'mixed'} "
            f"does not match k={k}"
        )
    entries = matrix.shape[0]
    minima = np.ones((entries, k), dtype=np.float64)
    np.minimum.accumulate(matrix[:-1], axis=0, out=matrix[:-1])
    minima[1:] = matrix[:-1]
    probability_none = np.ones(entries, dtype=np.float64)
    for permutation in range(k):
        probability_none *= 1.0 - minima[:, permutation]
    tau = 1.0 - probability_none
    if (tau <= 0.0).any():
        raise EstimatorError("k-mins HIP probability vanished")
    return (1.0 / tau).tolist()


def k_partition_hip_weights(
    entries: Sequence[Tuple[int, float]], k: int
) -> List[float]:
    """k-partition adjusted weights (Equation 8), vectorised.

    Per-bucket running minima are scattered back to entry positions via
    ``searchsorted`` gathers; the across-buckets average accumulates
    bucket by bucket in the pure estimator's order, so every tau is
    bit-identical.
    """
    count = len(entries)
    if not count:
        return []
    buckets = np.fromiter(
        (entry[0] for entry in entries), dtype=np.int64, count=count
    )
    ranks = np.fromiter(
        (entry[1] for entry in entries), dtype=np.float64, count=count
    )
    if len(buckets) and (buckets.min() < 0 or buckets.max() >= k):
        offender = int(
            buckets[np.argmax((buckets < 0) | (buckets >= k))]
        )
        raise EstimatorError(f"bucket {offender} outside [0, {k})")
    minima_sum = np.zeros(count, dtype=np.float64)
    positions = np.arange(count)
    for bucket in range(k):
        members = np.flatnonzero(buckets == bucket)
        if not len(members):
            minima_sum += 1.0
            continue
        prefix_min = np.minimum.accumulate(ranks[members])
        seen_before = np.searchsorted(members, positions, side="left")
        minima_sum += np.where(
            seen_before > 0,
            prefix_min[np.maximum(seen_before - 1, 0)],
            1.0,
        )
    tau = minima_sum / k
    if (tau <= 0.0).any():
        raise EstimatorError("k-partition HIP probability vanished")
    return (1.0 / tau).tolist()
