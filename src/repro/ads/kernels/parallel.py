"""Partition-parallel kernel execution over zero-copy column views.

The HIP batch queries are embarrassingly parallel across nodes: every
per-node cardinality, closeness sum, and cum-hip prefix reads only that
node's contiguous column slice.  :class:`ParallelKernel` exploits this
by wrapping a base kernel module (:mod:`repro.ads.kernels.pure` or
:mod:`repro.ads.kernels.np_kernel`) and fanning each batch query out
over deterministic contiguous node-range partitions:

* **sharded mmap layouts** partition one range per nonempty shard --
  each partition's column slices stay inside one shard, so
  :class:`~repro.ads.mmap_io.ShardedColumn` serves them as zero-copy
  ``memoryview`` slices of the mapped file;
* **eager and single-file-mmap layouts** partition into ``workers``
  contiguous node ranges balanced by entry count (a pure function of
  the offsets column, so partitioning is deterministic).

Each partition is rebased into "a smaller index" (offsets shifted to 0)
and fed to the base kernel's own ``prepare_views`` -- the per-partition
arithmetic is *exactly* the serial kernel's arithmetic on the same
slices.  Results merge by concatenation in fixed partition order, so
every batch query returns bit-identical floats at any worker count:

* ``compute_cum_hip`` / ``batch_cardinality`` / ``batch_closeness`` are
  per-node independent; concatenating per-partition outputs in node
  order *is* the serial output.
* ``neighborhood_series`` folds HIP mass across nodes, so row
  partitioning would reorder IEEE additions.  The NumPy thread path
  instead parallelises over *distance groups* (each group's mass in
  ``_group_sums`` is an independent sequential chain; concatenated
  per-chunk masses equal the serial masses exactly, then one serial
  ``np.cumsum`` finishes the series).  The pure kernel's dict fold
  stays serial.
* The per-slice HIP-weight recompute behind ``apply_edges``
  (:func:`slice_hip_weights`) is per-slice independent and fans dirty
  slices across workers (:meth:`ParallelKernel.slice_weights_map`).

**Pool choice.**  The NumPy kernel releases the GIL inside its hot ops,
so it defaults to a shared :class:`~concurrent.futures.ThreadPoolExecutor`
(zero-copy views shared in-process).  The pure kernel is GIL-bound and
defaults to a :class:`~concurrent.futures.ProcessPoolExecutor`; worker
processes receive either the partition's column bytes (eager layouts)
or a ``(path, data_start, count)`` shard descriptor they re-``mmap``
themselves -- the page cache makes that a zero-copy handoff.
``REPRO_KERNEL_POOL`` (``auto``/``thread``/``process``) overrides.

**Worker selection.**  ``resolve_workers`` maps a request (``"auto"``
or a positive int; ``None`` means auto) to an effective count.  Auto
consults ``REPRO_KERNEL_WORKERS``, then picks
``min(cpu_count, shard count)`` (or ``cpu_count`` for unsharded
layouts) -- but stays serial below :data:`AUTO_MIN_ENTRIES` entries,
where per-partition dispatch overhead (~0.1-1 ms between pool handoff
and view rebasing) beats the win.  An explicit count is always
honoured, small indexes included, so equivalence tests exercise the
parallel paths.

**Fallback.**  Pools are cached per ``(mode, workers)`` and shared
process-wide.  A mode whose executor cannot be created (sandboxes
without fork, interpreter teardown) is remembered as broken:
``process`` degrades to ``thread``, ``thread`` degrades to the serial
base kernel -- results are identical the whole way down, only the
wall-clock changes.  Mid-call pool failures likewise fall back to the
serial path; estimator errors raised *inside* workers (e.g. a negative
alpha kernel) propagate unchanged.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from array import array
from bisect import bisect_left
from concurrent.futures import BrokenExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ads import kernels as _kernels
from repro.ads.kernels import pure
from repro.ads.mmap_io import ShardedColumn, map_file_columns
from repro.errors import ParameterError, EstimatorError
from repro.rand.hashing import HashFamily

WORKERS_ENV_VAR = "REPRO_KERNEL_WORKERS"
POOL_ENV_VAR = "REPRO_KERNEL_POOL"
POOL_CHOICES = ("auto", "thread", "process")

# Below this many entries auto worker selection stays serial: one
# partition dispatch costs ~0.1-1 ms (submit + rebased offsets + view
# prep) while the kernels sweep tens of millions of entries per second
# per core, so the fan-out only pays for itself from roughly this size
# (measured with benchmarks/bench_kernels.py; see BENCH_kernels.json's
# worker series).  Explicit worker counts bypass the gate.
AUTO_MIN_ENTRIES = 65536

# The six persisted entry columns, in file order (mirrors
# repro.ads.index._COLUMN_TYPECODES; worker processes re-mapping a
# shard need the layout without importing the index module).
_COLUMN_TYPECODES = ("q", "d", "d", "Q", "q", "d")
_DIST_COLUMN = 1
_HIP_COLUMN = 5


# ----------------------------------------------------------------------
# Worker / pool resolution
# ----------------------------------------------------------------------
def parse_workers(value: Union[None, int, str]) -> Union[str, int]:
    """Normalise a kernel-workers request to ``"auto"`` or an int >= 1.

    Accepts ``None`` (= auto), the string ``"auto"``, an integer, or an
    integer-valued string (the CLI flag and the environment variable
    arrive as text).

    Raises:
        ParameterError: anything else, zero/negative counts included.
    """
    if value is None:
        return "auto"
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return "auto"
        try:
            value = int(text)
        except ValueError:
            raise ParameterError(
                f"kernel workers must be 'auto' or a positive integer, "
                f"got {text!r}"
            )
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(
            f"kernel workers must be 'auto' or a positive integer, "
            f"got {value!r}"
        )
    if value < 1:
        raise ParameterError(f"kernel workers must be >= 1, got {value}")
    return value


def resolve_workers(
    requested: Union[None, int, str] = None,
    *,
    entries: int = 0,
    shards: Optional[int] = None,
) -> int:
    """The effective worker count for an index (see module docs).

    Args:
        requested: ``None``/``"auto"`` or an explicit count.  Auto
            consults ``REPRO_KERNEL_WORKERS`` first.
        entries: The index's entry-column length (the auto crossover
            gate input).
        shards: Shard count of a sharded-mmap layout, ``None``
            otherwise (auto caps workers at the partition count).

    Raises:
        ParameterError: a malformed request or environment value.
    """
    workers = parse_workers(requested)
    if workers == "auto":
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = parse_workers(env)
            except ParameterError:
                raise ParameterError(
                    f"invalid {WORKERS_ENV_VAR}={env!r}; expected 'auto' "
                    "or a positive integer"
                )
    if workers != "auto":
        return workers
    cpus = os.cpu_count() or 1
    if cpus <= 1 or entries < AUTO_MIN_ENTRIES:
        return 1
    if shards is not None:
        return max(1, min(cpus, shards))
    return cpus


def resolve_pool(backend_name: str) -> str:
    """``"thread"`` or ``"process"`` for a base kernel (module docs);
    ``REPRO_KERNEL_POOL`` overrides the per-backend default.

    Raises:
        ParameterError: an unknown environment value.
    """
    env = os.environ.get(POOL_ENV_VAR, "").strip().lower()
    if env:
        if env not in POOL_CHOICES:
            raise ParameterError(
                f"unknown {POOL_ENV_VAR}={env!r}; expected one of "
                f"{list(POOL_CHOICES)}"
            )
        if env != "auto":
            return env
    return "thread" if backend_name == "numpy" else "process"


# ----------------------------------------------------------------------
# Executor cache, broken-mode bookkeeping, serial fallback
# ----------------------------------------------------------------------
_EXECUTORS: Dict[Tuple[str, int], Any] = {}
_EXECUTOR_LOCK = threading.Lock()
_BROKEN_MODES: set = set()


def _create_executor(mode: str, workers: int):
    """Build one executor (split out as the test seam for simulating
    environments where pools cannot be created)."""
    if mode == "process":
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    from concurrent.futures import ThreadPoolExecutor

    return ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-kernel"
    )


def _executor(mode: str, workers: int):
    """The cached ``(mode, executor)`` pair, walking the fallback chain
    process -> thread -> serial; ``(None, None)`` means run serially."""
    chain = ("process", "thread") if mode == "process" else ("thread",)
    for candidate in chain:
        if candidate in _BROKEN_MODES:
            continue
        key = (candidate, workers)
        with _EXECUTOR_LOCK:
            executor = _EXECUTORS.get(key)
            if executor is None:
                try:
                    executor = _create_executor(candidate, workers)
                except Exception:
                    _BROKEN_MODES.add(candidate)
                    continue
                _EXECUTORS[key] = executor
        return candidate, executor
    return None, None


def _mark_broken(mode: str) -> None:
    with _EXECUTOR_LOCK:
        _BROKEN_MODES.add(mode)
        for key in [k for k in _EXECUTORS if k[0] == mode]:
            try:
                _EXECUTORS.pop(key).shutdown(wait=False)
            except Exception:
                pass


def _reset_executors() -> None:
    """Shut down and forget every cached pool (test hook; also runs at
    interpreter exit so worker processes never outlive module
    teardown)."""
    with _EXECUTOR_LOCK:
        for executor in _EXECUTORS.values():
            executor.shutdown(wait=False)
        _EXECUTORS.clear()
        _BROKEN_MODES.clear()


atexit.register(_reset_executors)


def _picklable(value: Any) -> bool:
    """Whether *value* survives the trip to a worker process.  Exotic
    alpha callables (lambdas, closures) silently keep the serial path
    instead of poisoning the pool."""
    if value is None:
        return True
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


# ----------------------------------------------------------------------
# Partition planning and zero-copy column slicing
# ----------------------------------------------------------------------
def _column_slice(column, lo: int, hi: int):
    """Zero-copy ``column[lo:hi]``: ShardedColumn within-shard slices
    and memoryviews slice natively; arrays go through one memoryview."""
    if isinstance(column, (ShardedColumn, memoryview)):
        return column[lo:hi]
    return memoryview(column)[lo:hi]


def _cum_slice(cum, lo: int, hi: int):
    if cum is None:
        return None
    return _column_slice(cum, lo, hi)


def _cum_bytes(cum, lo: int, hi: int) -> Optional[bytes]:
    if cum is None:
        return None
    return bytes(_column_slice(cum, lo, hi))


def _plan_partitions(offsets, workers: int, dist_column):
    """Deterministic contiguous node-range partitions.

    Returns ``[(a, b, spec), ...]`` of half-open node-id ranges.  For a
    sharded column, one range per nonempty shard (``spec`` is its
    :class:`~repro.ads.mmap_io.ShardSpec`; slices never cross a shard,
    so every partition view is zero-copy); otherwise ``workers`` ranges
    balanced by entry count with ``spec=None``.
    """
    n = len(offsets) - 1
    if n <= 0:
        return []
    specs = getattr(dist_column, "shard_specs", None)
    if specs:
        partitions = []
        a = 0
        for spec in specs:
            if spec.count == 0:
                continue
            stop = spec.entry_base + spec.count
            b = bisect_left(offsets, stop, a, n)
            partitions.append([a, b, spec])
            a = b
        if not partitions:
            return [(0, n, None)]
        # Trailing empty node slices belong to the last shard's range.
        partitions[-1][1] = n
        return [tuple(partition) for partition in partitions]
    total = offsets[n]
    bounds = [0]
    for i in range(1, workers):
        target = (total * i) // workers
        bounds.append(bisect_left(offsets, target, bounds[-1], n))
    bounds.append(n)
    return [
        (a, b, None) for a, b in zip(bounds, bounds[1:]) if b > a
    ]


class _Partition:
    """One rebased node range: a self-contained mini-index whose views
    the base kernel prepares lazily (thread workers prepare their own,
    process workers never touch these)."""

    __slots__ = (
        "a", "b", "lo", "hi", "spec", "offsets", "dist", "hip",
        "_kernel", "_views",
    )

    def __init__(self, kernel, a, b, lo, hi, spec, offsets, dist, hip):
        self._kernel = kernel
        self.a = a
        self.b = b
        self.lo = lo
        self.hi = hi
        self.spec = spec
        self.offsets = offsets
        self.dist = dist
        self.hip = hip
        self._views = None

    def prepared(self):
        views = self._views
        if views is None:
            views = self._kernel.prepare_views(
                self.offsets, self.dist, self.hip
            )
            self._views = views
        return views


class ParallelViews:
    """The parallel kernel's prepared-views object: the partition plan
    plus lazily built per-partition views, process payloads, and the
    base kernel's whole-column views (serial paths and fallbacks).

    ``AdsIndex`` caches and invalidates it exactly like any other
    kernel views object, so everything derived here shares the columns'
    lifetime.
    """

    def __init__(self, kernel, workers, offsets, dist, hip):
        self._kernel = kernel
        self._offsets = offsets
        self._dist = dist
        self._hip = hip
        self.plan = _plan_partitions(offsets, workers, dist)
        self._base = None
        self._parts = None
        self._payloads = None
        self._lock = threading.Lock()

    def base(self):
        """The base kernel's views over the whole columns (built once,
        on the first serial-path or fallback use)."""
        views = self._base
        if views is None:
            with self._lock:
                views = self._base
                if views is None:
                    views = self._kernel.prepare_views(
                        self._offsets, self._dist, self._hip
                    )
                    self._base = views
        return views

    def parts(self) -> List[_Partition]:
        parts = self._parts
        if parts is None:
            with self._lock:
                parts = self._parts
                if parts is None:
                    parts = [
                        self._build_part(a, b, spec)
                        for a, b, spec in self.plan
                    ]
                    self._parts = parts
        return parts

    def _build_part(self, a: int, b: int, spec) -> _Partition:
        offsets = self._offsets
        lo, hi = offsets[a], offsets[b]
        rebased = array("q", (offsets[i] - lo for i in range(a, b + 1)))
        return _Partition(
            self._kernel, a, b, lo, hi, spec, rebased,
            _column_slice(self._dist, lo, hi),
            _column_slice(self._hip, lo, hi),
        )

    def payloads(self) -> List[tuple]:
        """Per-partition process-pool payloads, cached: shard partitions
        ship a re-mmap descriptor (zero-copy via the page cache), eager
        partitions ship the column bytes once per views lifetime."""
        payloads = self._payloads
        if payloads is None:
            parts = self.parts()
            with self._lock:
                payloads = self._payloads
                if payloads is None:
                    payloads = [self._build_payload(p) for p in parts]
                    self._payloads = payloads
        return payloads

    @staticmethod
    def _build_payload(part: _Partition) -> tuple:
        offsets_bytes = part.offsets.tobytes()
        if part.spec is not None:
            return (
                "shard", offsets_bytes, str(part.spec.path),
                part.spec.data_start, part.spec.count,
            )
        return (
            "buffer", offsets_bytes, bytes(part.dist), bytes(part.hip),
        )


# ----------------------------------------------------------------------
# Worker-process entry points (module-level: must be picklable)
# ----------------------------------------------------------------------
def _worker_kernel(name: str):
    """The kernel module matching the parent's backend (bit-identity
    across backends makes the pure fallback safe even if a worker
    environment lost NumPy)."""
    if name == "numpy":
        kernel = _kernels.load_numpy_kernel()
        if kernel is not None:
            return kernel
    return pure


def _payload_columns(payload: tuple):
    """Rehydrate one partition's (offsets, dist, hip) in a worker."""
    if payload[0] == "shard":
        _, offsets_bytes, path, data_start, count = payload
        offsets = array("q")
        offsets.frombytes(offsets_bytes)
        with open(path, "rb") as handle:
            columns = map_file_columns(
                Path(path), handle.fileno(), data_start,
                [count] * len(_COLUMN_TYPECODES), _COLUMN_TYPECODES,
            )
        return offsets, columns[_DIST_COLUMN], columns[_HIP_COLUMN]
    _, offsets_bytes, dist_bytes, hip_bytes = payload
    offsets = array("q")
    offsets.frombytes(offsets_bytes)
    dist = array("d")
    dist.frombytes(dist_bytes)
    hip = array("d")
    hip.frombytes(hip_bytes)
    return offsets, dist, hip


def _partition_task(payload: tuple, backend_name: str, op: str,
                    params: dict):
    """Run one batch op over one rehydrated partition in a worker."""
    offsets, dist, hip = _payload_columns(payload)
    kernel = _worker_kernel(backend_name)
    views = kernel.prepare_views(offsets, dist, hip)
    if op == "cum_hip":
        return kernel.compute_cum_hip(views).tobytes()
    cum = params.get("cum")
    if cum is not None:
        rehydrated = array("d")
        rehydrated.frombytes(cum)
        cum = rehydrated
    if op == "cardinality":
        return kernel.batch_cardinality(views, cum, params["d"])
    if op == "closeness":
        return kernel.batch_closeness(
            views, params["alpha"], params["classic"], cum=cum
        )
    raise ParameterError(f"unknown partition op {op!r}")


def _weights_chunk(kernel, flavor: str, k: int, family: HashFamily,
                   chunk: Sequence[tuple]) -> Dict[int, List[float]]:
    """HIP weights for one chunk of ``(vid, records, entry_labels)``."""
    return {
        vid: slice_hip_weights(
            kernel, flavor, k, records, entry_labels, family
        )
        for vid, records, entry_labels in chunk
    }


def _weights_chunk_task(backend_name: str, flavor: str, k: int,
                        seed: int, chunk: Sequence[tuple]):
    """Process-pool form of :func:`_weights_chunk`: the hash family is
    rebuilt from its seed (a cheap value object) instead of pickled."""
    return _weights_chunk(
        _worker_kernel(backend_name), flavor, k, HashFamily(seed), chunk
    )


# ----------------------------------------------------------------------
# The per-slice HIP-weight recompute (shared by serial and parallel)
# ----------------------------------------------------------------------
def slice_hip_weights(
    kernel,
    flavor: str,
    k: int,
    records: Sequence[tuple],
    entry_labels: Optional[Sequence],
    family: HashFamily,
) -> List[float]:
    """Section-5 adjusted weights of one rewritten slice.

    Must agree float-for-float with the build-time HIP column pass on
    the same slice -- it runs the identical per-flavor estimator over
    the identical scan order, on the given kernel's (bit-identical)
    weight functions.  *entry_labels* carries each record's node label
    and is consulted only for k-mins (whose merged first-occurrence
    view hashes labels); pass ``None`` otherwise.
    """
    if not records:
        return []
    if flavor == "bottomk":
        return kernel.bottom_k_hip_weights(
            [record[3] for record in records], k
        )
    if flavor == "kpartition":
        return kernel.k_partition_hip_weights(
            [(record[4], record[3]) for record in records], k
        )
    # kmins: weights live on the merged first-occurrence view;
    # duplicate per-permutation slots get weight 0.
    seen = set()
    merged_positions: List[int] = []
    for position, record in enumerate(records):
        entry_node = record[2]
        if entry_node in seen:
            continue
        seen.add(entry_node)
        merged_positions.append(position)
    vectors = [
        [family.rank(entry_labels[position], h) for h in range(k)]
        for position in merged_positions
    ]
    merged_weights = kernel.k_mins_hip_weights(vectors, k)
    weights = [0.0] * len(records)
    for position, weight in zip(merged_positions, merged_weights):
        weights[position] = weight
    return weights


def _chunk_items(items: Sequence, chunks: int) -> List[Sequence]:
    """Split *items* into at most *chunks* contiguous runs."""
    count = len(items)
    chunks = max(1, min(chunks, count))
    bounds = [(count * i) // chunks for i in range(chunks + 1)]
    return [
        items[a:b] for a, b in zip(bounds, bounds[1:]) if b > a
    ]


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
class ParallelKernel:
    """Partition-parallel facade over one base kernel module.

    Duck-types the kernel API (``NAME``, ``prepare_views``, the batch
    ops, the HIP-weight functions), so :class:`~repro.ads.index.AdsIndex`
    holds it exactly like a kernel module.  Every op merges partition
    results in fixed partition order and falls back to the serial base
    kernel whenever pools are unavailable -- the floats never change,
    only the wall-clock.
    """

    def __init__(self, base, workers: int, pool: str):
        self._base = base
        self.NAME = base.NAME
        self.workers = int(workers)
        self.pool = pool

    def __repr__(self) -> str:
        return (
            f"ParallelKernel(base={self.NAME!r}, workers={self.workers}, "
            f"pool={self.pool!r})"
        )

    # -- views ----------------------------------------------------------
    def prepare_views(self, offsets, dist, hip) -> ParallelViews:
        return ParallelViews(self._base, self.workers, offsets, dist, hip)

    # -- plumbing -------------------------------------------------------
    def _acquire(self, views: ParallelViews):
        """``(mode, executor, parts)`` when fan-out is worthwhile and a
        pool exists; ``None`` routes the caller to the serial base."""
        if self.workers <= 1 or len(views.plan) <= 1:
            return None
        mode, executor = _executor(self.pool, self.workers)
        if executor is None:
            return None
        return mode, executor, views.parts()

    @staticmethod
    def _gather(futures, mode: str):
        """Results in submission order; ``None`` requests the serial
        fallback after a pool (not estimator) failure."""
        try:
            return [future.result() for future in futures]
        except (EstimatorError, ParameterError):
            raise
        except pickle.PicklingError:
            return None
        except (BrokenExecutor, OSError):
            _mark_broken(mode)
            return None

    # -- batch ops ------------------------------------------------------
    def compute_cum_hip(self, views: ParallelViews) -> array:
        plan = self._acquire(views)
        if plan is None:
            return self._base.compute_cum_hip(views.base())
        mode, executor, parts = plan
        if mode == "process":
            futures = [
                executor.submit(
                    _partition_task, payload, self.NAME, "cum_hip", {}
                )
                for payload in views.payloads()
            ]
        else:
            base = self._base

            def run(part):
                return base.compute_cum_hip(part.prepared())

            futures = [executor.submit(run, part) for part in parts]
        pieces = self._gather(futures, mode)
        if pieces is None:
            return self._base.compute_cum_hip(views.base())
        cumulative = array("d")
        for piece in pieces:
            if isinstance(piece, bytes):
                cumulative.frombytes(piece)
            else:
                cumulative.extend(piece)
        return cumulative

    def batch_cardinality(self, views: ParallelViews, cum,
                          d: float) -> List[float]:
        plan = self._acquire(views)
        if plan is None:
            return self._base.batch_cardinality(views.base(), cum, d)
        mode, executor, parts = plan
        if mode == "process":
            futures = [
                executor.submit(
                    _partition_task, payload, self.NAME, "cardinality",
                    {"cum": _cum_bytes(cum, part.lo, part.hi), "d": d},
                )
                for payload, part in zip(views.payloads(), parts)
            ]
        else:
            base = self._base

            def run(part):
                return base.batch_cardinality(
                    part.prepared(), _cum_slice(cum, part.lo, part.hi), d
                )

            futures = [executor.submit(run, part) for part in parts]
        pieces = self._gather(futures, mode)
        if pieces is None:
            return self._base.batch_cardinality(views.base(), cum, d)
        merged: List[float] = []
        for piece in pieces:
            merged.extend(piece)
        return merged

    def batch_closeness(
        self,
        views: ParallelViews,
        alpha: Optional[Callable[[float], float]],
        classic: bool,
        cum=None,
    ) -> List[float]:
        plan = self._acquire(views)
        if plan is None:
            return self._base.batch_closeness(
                views.base(), alpha, classic, cum=cum
            )
        mode, executor, parts = plan
        if mode == "process":
            if not _picklable(alpha):
                return self._base.batch_closeness(
                    views.base(), alpha, classic, cum=cum
                )
            futures = [
                executor.submit(
                    _partition_task, payload, self.NAME, "closeness",
                    {
                        "alpha": alpha,
                        "classic": classic,
                        "cum": _cum_bytes(cum, part.lo, part.hi),
                    },
                )
                for payload, part in zip(views.payloads(), parts)
            ]
        else:
            base = self._base

            def run(part):
                return base.batch_closeness(
                    part.prepared(), alpha, classic,
                    _cum_slice(cum, part.lo, part.hi),
                )

            futures = [executor.submit(run, part) for part in parts]
        pieces = self._gather(futures, mode)
        if pieces is None:
            return self._base.batch_closeness(
                views.base(), alpha, classic, cum=cum
            )
        merged: List[float] = []
        for piece in pieces:
            merged.extend(piece)
        return merged

    def neighborhood_series(
        self, views: ParallelViews
    ) -> List[Tuple[float, float]]:
        """Cross-node fold: parallel only on the NumPy thread path,
        chunked by *distance group* so the floats stay bit-identical
        (see module docs); everything else runs the serial base."""
        if (
            self.workers > 1
            and self.NAME == "numpy"
            and self.pool != "process"
        ):
            series = self._neighborhood_grouped(views)
            if series is not None:
                return series
        return self._base.neighborhood_series(views.base())

    def _neighborhood_grouped(self, views: ParallelViews):
        np_mod = self._base
        np = np_mod.np
        base_views = views.base()
        sorted_dist, sorted_hip = base_views.dist_sorted()
        if not len(sorted_dist):
            return []
        boundaries = np.empty(len(sorted_dist), dtype=bool)
        boundaries[0] = True
        np.not_equal(
            sorted_dist[1:], sorted_dist[:-1], out=boundaries[1:]
        )
        group_starts = np.flatnonzero(boundaries)
        group_lengths = np.diff(
            np.concatenate((group_starts, [len(sorted_dist)]))
        )
        groups = len(group_starts)
        if groups < 2:
            return None
        mode, executor = _executor("thread", self.workers)
        if executor is None:
            return None
        chunks = min(self.workers, groups)
        bounds = [(groups * i) // chunks for i in range(chunks + 1)]
        futures = [
            executor.submit(
                np_mod._group_sums, sorted_hip,
                group_starts[a:b], group_lengths[a:b],
            )
            for a, b in zip(bounds, bounds[1:])
            if b > a
        ]
        pieces = self._gather(futures, mode)
        if pieces is None:
            return None
        running = np.cumsum(np.concatenate(pieces))
        return list(
            zip(sorted_dist[group_starts].tolist(), running.tolist())
        )

    # -- per-slice HIP weights (dynamic updates) ------------------------
    def bottom_k_hip_weights(self, ranks, k: int) -> List[float]:
        return self._base.bottom_k_hip_weights(ranks, k)

    def k_mins_hip_weights(self, rank_vectors, k: int) -> List[float]:
        return self._base.k_mins_hip_weights(rank_vectors, k)

    def k_partition_hip_weights(self, entries, k: int) -> List[float]:
        return self._base.k_partition_hip_weights(entries, k)

    def slice_weights_map(
        self,
        flavor: str,
        k: int,
        family: HashFamily,
        items: Sequence[tuple],
    ) -> Optional[Dict[int, List[float]]]:
        """HIP weights for many dirty slices at once.

        *items* is an ordered ``(vid, records, entry_labels)`` sequence
        (see :func:`slice_hip_weights`); chunks fan out across the
        pool and merge into ``{vid: weights}``.  Returns ``None`` when
        fan-out is not worthwhile or no pool is available -- the caller
        runs the serial per-slice path, same floats.
        """
        if self.workers <= 1 or len(items) < 2:
            return None
        mode, executor = _executor(self.pool, self.workers)
        if executor is None:
            return None
        if mode == "process" and not _picklable(items):
            return None
        chunks = _chunk_items(items, self.workers)
        if mode == "process":
            futures = [
                executor.submit(
                    _weights_chunk_task, self.NAME, flavor, k,
                    family.seed, chunk,
                )
                for chunk in chunks
            ]
        else:
            futures = [
                executor.submit(
                    _weights_chunk, self._base, flavor, k, family, chunk
                )
                for chunk in chunks
            ]
        pieces = self._gather(futures, mode)
        if pieces is None:
            return None
        merged: Dict[int, List[float]] = {}
        for piece in pieces:
            merged.update(piece)
        return merged
