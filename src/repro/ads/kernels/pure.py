"""The reference estimator kernel: stdlib-only loops over flat columns.

These are the batch-query loops ``AdsIndex`` has always run, extracted
behind the kernel API (see the package docs) so the NumPy backend can
be verified against them function for function.  Every float produced
here is authoritative: the accelerated kernel must reproduce the same
left-to-right per-slice summation order.

A *views* object for this kernel (:class:`Columns`) is just the raw
column references -- ``array.array`` for eager indexes, zero-copy
``memoryview`` / :class:`~repro.ads.mmap_io.ShardedColumn` for
memory-mapped loads.  Per-slice work iterates slice copies (``zip`` of
``column[lo:hi]``), which a lazily loaded ``ShardedColumn`` serves as
one zero-copy per-shard view per node instead of paying a Python-level
shard lookup on every slot.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import EstimatorError
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)

NAME = "python"


class Columns(NamedTuple):
    """The pure kernel's prepared view: the columns themselves."""

    offsets: Sequence[int]
    dist: Sequence[float]
    hip: Sequence[float]
    n: int


def prepare_views(offsets, dist, hip) -> Columns:
    """Wrap the raw columns; nothing is copied or converted."""
    return Columns(offsets, dist, hip, len(offsets) - 1)


def compute_cum_hip(views: Columns) -> array:
    """Per-node running prefix sums of the HIP column.

    Cardinality queries become one bisect plus one lookup.  Summation
    order is left-to-right within each slice, exactly like ``BaseADS``,
    so the floats agree bit-for-bit.
    """
    offsets, hip_column = views.offsets, views.hip
    cumulative = array("d", bytes(8 * len(hip_column)))
    for i in range(views.n):
        lo, hi = offsets[i], offsets[i + 1]
        running = 0.0
        slot = lo
        for value in hip_column[lo:hi]:
            running += value
            cumulative[slot] = running
            slot += 1
    return cumulative


def slice_hip_sum(
    hip, cum: Optional[Sequence[float]], lo: int, hi: int
) -> float:
    """Left-to-right sum of ``hip[lo:hi]`` -- ``cum[hi - 1]`` by
    construction, summed locally when the prefix column has not been
    materialised (a lazy load serving one node must not pay an
    all-entries pass)."""
    if hi <= lo:
        return 0.0
    if cum is not None:
        return cum[hi - 1]
    running = 0.0
    for weight in hip[lo:hi]:
        running += weight
    return running


def batch_cardinality(views: Columns, cum, d: float) -> List[float]:
    """n_d(v) for every node id, in id order: one bisect over the
    distance column plus a prefix-sum lookup per node."""
    offsets, dist = views.offsets, views.dist
    result: List[float] = []
    for i in range(views.n):
        lo, hi = offsets[i], offsets[i + 1]
        cutoff = bisect_right(dist, d, lo, hi)
        result.append(cum[cutoff - 1] if cutoff > lo else 0.0)
    return result


def closeness_for_slice(
    dist,
    hip,
    lo: int,
    hi: int,
    alpha: Optional[Callable[[float], float]],
    classic: bool,
    cum: Optional[Sequence[float]],
) -> float:
    """One node's beta-free closeness sum, mirroring
    ``q_statistic_estimate`` exactly (same slot order, same
    skip-the-source and g >= 0 rules) so the floats match the per-node
    estimators bit-for-bit."""
    total = 0.0
    for d, weight in zip(dist[lo:hi], hip[lo:hi]):
        if d == 0.0:
            continue
        value = d if alpha is None else float(alpha(d))
        if value < 0.0:
            raise EstimatorError(
                f"g must be nonnegative (got {value}); HIP "
                "unbiasedness and the variance bounds assume g >= 0"
            )
        total += weight * value
    if classic:
        reachable = slice_hip_sum(hip, cum, lo, hi) - 1.0
        return reachable / total if total > 0.0 else 0.0
    return total


def batch_closeness(
    views: Columns,
    alpha: Optional[Callable[[float], float]],
    classic: bool,
    cum: Optional[Sequence[float]] = None,
) -> List[float]:
    """The beta-free closeness sum of every node id, in id order.

    ``cum`` is the materialised prefix-sum column when the caller has
    one (classic mode reads each slice's reachable count from it);
    ``None`` sums reachability locally, preserving lazy loads.
    """
    offsets, dist, hip = views.offsets, views.dist, views.hip
    return [
        closeness_for_slice(
            dist, hip, offsets[i], offsets[i + 1], alpha, classic, cum
        )
        for i in range(views.n)
    ]


def neighborhood_series(views: Columns) -> List[Tuple[float, float]]:
    """The whole-graph ANF series: per-distance HIP mass accumulated in
    entry order, then summed cumulatively over sorted distances."""
    jumps: dict = {}
    # zip iteration, not per-slot indexing: a lazily loaded
    # ShardedColumn yields its per-shard views without paying a
    # shard lookup per entry.
    for d, weight in zip(views.dist, views.hip):
        if d <= 0.0:
            continue
        jumps[d] = jumps.get(d, 0.0) + weight
    series: List[Tuple[float, float]] = []
    running = 0.0
    for d in sorted(jumps):
        running += jumps[d]
        series.append((d, running))
    return series


def bottom_k_hip_weights(ranks: Sequence[float], k: int) -> List[float]:
    """Section-5 adjusted weights of one bottom-k slice (Lemma 5.1)."""
    return bottom_k_adjusted_weights(ranks, k)


def k_mins_hip_weights(
    rank_vectors: Sequence[Sequence[float]], k: int
) -> List[float]:
    """Adjusted weights of one k-mins merged view (Equation 7)."""
    return k_mins_adjusted_weights(rank_vectors, k)


def k_partition_hip_weights(
    entries: Sequence[Tuple[int, float]], k: int
) -> List[float]:
    """Adjusted weights of one k-partition slice (Equation 8)."""
    return k_partition_adjusted_weights(entries, k)
