"""The reference estimator kernel: stdlib-only loops over flat columns.

These are the batch-query loops ``AdsIndex`` has always run, extracted
behind the kernel API (see the package docs) so the NumPy backend can
be verified against them function for function.  Every float produced
here is authoritative: the accelerated kernel must reproduce the same
left-to-right per-slice summation order.

A *views* object for this kernel (:class:`Columns`) is just the raw
column references -- ``array.array`` for eager indexes, zero-copy
``memoryview`` / :class:`~repro.ads.mmap_io.ShardedColumn` for
memory-mapped loads.  Per-slice work iterates slice copies (``zip`` of
``column[lo:hi]``), which a lazily loaded ``ShardedColumn`` serves as
one zero-copy per-shard view per node instead of paying a Python-level
shard lookup on every slot.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import EstimatorError
from repro.estimators.basic import bottom_k_cardinality
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)

NAME = "python"


class Columns(NamedTuple):
    """The pure kernel's prepared view: the columns themselves."""

    offsets: Sequence[int]
    dist: Sequence[float]
    hip: Sequence[float]
    n: int


def prepare_views(offsets, dist, hip) -> Columns:
    """Wrap the raw columns; nothing is copied or converted."""
    return Columns(offsets, dist, hip, len(offsets) - 1)


def compute_cum_hip(views: Columns) -> array:
    """Per-node running prefix sums of the HIP column.

    Cardinality queries become one bisect plus one lookup.  Summation
    order is left-to-right within each slice, exactly like ``BaseADS``,
    so the floats agree bit-for-bit.
    """
    offsets, hip_column = views.offsets, views.hip
    cumulative = array("d", bytes(8 * len(hip_column)))
    for i in range(views.n):
        lo, hi = offsets[i], offsets[i + 1]
        running = 0.0
        slot = lo
        for value in hip_column[lo:hi]:
            running += value
            cumulative[slot] = running
            slot += 1
    return cumulative


def slice_hip_sum(
    hip, cum: Optional[Sequence[float]], lo: int, hi: int
) -> float:
    """Left-to-right sum of ``hip[lo:hi]`` -- ``cum[hi - 1]`` by
    construction, summed locally when the prefix column has not been
    materialised (a lazy load serving one node must not pay an
    all-entries pass)."""
    if hi <= lo:
        return 0.0
    if cum is not None:
        return cum[hi - 1]
    running = 0.0
    for weight in hip[lo:hi]:
        running += weight
    return running


def batch_cardinality(views: Columns, cum, d: float) -> List[float]:
    """n_d(v) for every node id, in id order: one bisect over the
    distance column plus a prefix-sum lookup per node."""
    offsets, dist = views.offsets, views.dist
    result: List[float] = []
    for i in range(views.n):
        lo, hi = offsets[i], offsets[i + 1]
        cutoff = bisect_right(dist, d, lo, hi)
        result.append(cum[cutoff - 1] if cutoff > lo else 0.0)
    return result


def closeness_for_slice(
    dist,
    hip,
    lo: int,
    hi: int,
    alpha: Optional[Callable[[float], float]],
    classic: bool,
    cum: Optional[Sequence[float]],
) -> float:
    """One node's beta-free closeness sum, mirroring
    ``q_statistic_estimate`` exactly (same slot order, same
    skip-the-source and g >= 0 rules) so the floats match the per-node
    estimators bit-for-bit."""
    total = 0.0
    for d, weight in zip(dist[lo:hi], hip[lo:hi]):
        if d == 0.0:
            continue
        value = d if alpha is None else float(alpha(d))
        if value < 0.0:
            raise EstimatorError(
                f"g must be nonnegative (got {value}); HIP "
                "unbiasedness and the variance bounds assume g >= 0"
            )
        total += weight * value
    if classic:
        reachable = slice_hip_sum(hip, cum, lo, hi) - 1.0
        return reachable / total if total > 0.0 else 0.0
    return total


def batch_closeness(
    views: Columns,
    alpha: Optional[Callable[[float], float]],
    classic: bool,
    cum: Optional[Sequence[float]] = None,
) -> List[float]:
    """The beta-free closeness sum of every node id, in id order.

    ``cum`` is the materialised prefix-sum column when the caller has
    one (classic mode reads each slice's reachable count from it);
    ``None`` sums reachability locally, preserving lazy loads.
    """
    offsets, dist, hip = views.offsets, views.dist, views.hip
    return [
        closeness_for_slice(
            dist, hip, offsets[i], offsets[i + 1], alpha, classic, cum
        )
        for i in range(views.n)
    ]


def neighborhood_series(views: Columns) -> List[Tuple[float, float]]:
    """The whole-graph ANF series: per-distance HIP mass accumulated in
    entry order, then summed cumulatively over sorted distances."""
    jumps: dict = {}
    # zip iteration, not per-slot indexing: a lazily loaded
    # ShardedColumn yields its per-shard views without paying a
    # shard lookup per entry.
    for d, weight in zip(views.dist, views.hip):
        if d <= 0.0:
            continue
        jumps[d] = jumps.get(d, 0.0) + weight
    series: List[Tuple[float, float]] = []
    running = 0.0
    for d in sorted(jumps):
        running += jumps[d]
        series.append((d, running))
    return series


# ---------------------------------------------------------------------------
# Similarity / distance-oracle ops (bottom-k flavor only).
#
# These operate on a second prepared view (:class:`SimColumns`) that
# carries the entry-node and rank columns alongside offsets/distances.
# All callers gate on the bottom-k flavor first: the ops assume each
# slice lists distinct entry nodes whose extracted MinHash sketches are
# k-samples without replacement (the coordination property Section 5 of
# the paper builds on).  Results are exact set arithmetic (integer
# ratios, order-free minima) plus reference-order float accumulation,
# so the NumPy mirrors are bit-identical.
# ---------------------------------------------------------------------------


class SimColumns(NamedTuple):
    """The pure kernel's similarity view: entry columns plus ranks."""

    offsets: Sequence[int]
    node: Sequence[int]
    dist: Sequence[float]
    rank: Sequence[float]
    n: int


def prepare_similarity_views(offsets, node, dist, rank) -> SimColumns:
    """Wrap the raw similarity columns; nothing is copied."""
    return SimColumns(offsets, node, dist, rank, len(offsets) - 1)


def minhash_for_slice(
    views: SimColumns, i: int, d: float, k: int
) -> List[Tuple[float, int]]:
    """The bottom-k MinHash sketch of N_d(node i): the k smallest
    ``(rank, node)`` pairs among entries within distance ``d`` --
    ``BottomKADS.minhash_at`` replayed over the flat columns."""
    offsets = views.offsets
    lo, hi = offsets[i], offsets[i + 1]
    cutoff = bisect_right(views.dist, d, lo, hi)
    pairs = sorted(zip(views.rank[lo:cutoff], views.node[lo:cutoff]))
    return pairs[:k]


def union_sketch(
    sketch_a: Sequence[Tuple[float, int]],
    sketch_b: Sequence[Tuple[float, int]],
    k: int,
) -> List[Tuple[float, int]]:
    """Bottom-k of the union of two coordinated MinHash sketches,
    deduplicated by node -- the merge at the heart of every similarity
    estimator (shared with the NumPy backend for bit-identity)."""
    merged: dict = {}
    for rank, node in sketch_a:
        merged[node] = rank
    for rank, node in sketch_b:
        merged[node] = rank
    union = sorted((rank, node) for node, rank in merged.items())
    return union[:k]


def union_jaccard(
    sketch_a: Sequence[Tuple[float, int]],
    sketch_b: Sequence[Tuple[float, int]],
    k: int,
) -> float:
    """The MinHash Jaccard estimate from two coordinated sketches: the
    fraction of the union's bottom-k sampled by both sides.  Exact
    integer ratio -- identical on every backend."""
    union = union_sketch(sketch_a, sketch_b, k)
    if not union:
        return 0.0
    members_a = {node for _, node in sketch_a}
    members_b = {node for _, node in sketch_b}
    in_both = sum(
        1 for _, node in union if node in members_a and node in members_b
    )
    return in_both / len(union)


def union_size_from_sketches(
    sketch_a: Sequence[Tuple[float, int]],
    sketch_b: Sequence[Tuple[float, int]],
    k: int,
    rank_sup: float,
) -> float:
    """|N_d(u) ∪ N_d(v)| estimated from the merged bottom-k sketch --
    ``repro.sketches.similarity.union_size_estimate`` over columns."""
    union = union_sketch(sketch_a, sketch_b, k)
    tau = union[-1][0] if len(union) == k else rank_sup
    return bottom_k_cardinality(len(union), tau, k, sup=rank_sup)


def pairs_jaccard(
    views: SimColumns, pairs: Sequence[Tuple[int, int]], d: float, k: int
) -> List[float]:
    """Neighborhood Jaccard estimates for ``(u, v)`` id pairs at
    threshold ``d``, in input order."""
    return [
        union_jaccard(
            minhash_for_slice(views, u, d, k),
            minhash_for_slice(views, v, d, k),
            k,
        )
        for u, v in pairs
    ]


def pairs_union_size(
    views: SimColumns,
    pairs: Sequence[Tuple[int, int]],
    d: float,
    k: int,
    rank_sup: float,
) -> List[float]:
    """Neighborhood union-size estimates for ``(u, v)`` id pairs at
    threshold ``d``, in input order."""
    return [
        union_size_from_sketches(
            minhash_for_slice(views, u, d, k),
            minhash_for_slice(views, v, d, k),
            k,
            rank_sup,
        )
        for u, v in pairs
    ]


def pairs_closeness_similarity(
    views: SimColumns, pairs: Sequence[Tuple[int, int]], k: int
) -> List[float]:
    """Closeness similarity for ``(u, v)`` id pairs: the uniform-weight
    average of neighborhood Jaccard over the sorted union of the two
    slices' distinct entry distances -- exactly
    ``repro.centrality.similarity.closeness_similarity`` with default
    weights.  Accumulation order (sorted grid, left to right) is
    authoritative."""
    offsets, dist = views.offsets, views.dist
    values: List[float] = []
    for u, v in pairs:
        lo_u, hi_u = offsets[u], offsets[u + 1]
        lo_v, hi_v = offsets[v], offsets[v + 1]
        grid = sorted(set(dist[lo_u:hi_u]) | set(dist[lo_v:hi_v]))
        if not grid:
            values.append(0.0)
            continue
        total = 0.0
        norm = 0.0
        for threshold in grid:
            total += union_jaccard(
                minhash_for_slice(views, u, threshold, k),
                minhash_for_slice(views, v, threshold, k),
                k,
            )
            norm += 1.0
        values.append(total / norm)
    return values


def pairs_distance(
    views: SimColumns, pairs: Sequence[Tuple[int, int]]
) -> List[float]:
    """Sketch-space distance upper bounds for ``(u, v)`` id pairs:
    min over common sketch entries ``w`` of ``d(u, w) + d(v, w)``
    (``inf`` when the slices share no entry).  Order-free minimum of
    exact one-add sums -- bit-identical on every backend."""
    offsets, node, dist = views.offsets, views.node, views.dist
    values: List[float] = []
    for u, v in pairs:
        lo, hi = offsets[u], offsets[u + 1]
        through: dict = {}
        for w, d_uw in zip(node[lo:hi], dist[lo:hi]):
            current = through.get(w)
            if current is None or d_uw < current:
                through[w] = d_uw
        lo, hi = offsets[v], offsets[v + 1]
        best = math.inf
        for w, d_vw in zip(node[lo:hi], dist[lo:hi]):
            d_uw = through.get(w)
            if d_uw is not None:
                candidate = d_uw + d_vw
                if candidate < best:
                    best = candidate
        values.append(best)
    return values


def similarity_scan(
    views: SimColumns, query: int, d: float, k: int, start: int, stop: int
) -> List[Tuple[int, float]]:
    """Neighborhood Jaccard of ``query`` against every candidate id in
    ``[start, stop)`` (the query itself excluded), in id order.  The
    caller ranks; this just scans a contiguous id range so sharded
    workers can sweep their slice of the candidate space."""
    reference = minhash_for_slice(views, query, d, k)
    scores: List[Tuple[int, float]] = []
    for candidate in range(start, stop):
        if candidate == query:
            continue
        scores.append(
            (
                candidate,
                union_jaccard(
                    reference, minhash_for_slice(views, candidate, d, k), k
                ),
            )
        )
    return scores


def bottom_k_hip_weights(ranks: Sequence[float], k: int) -> List[float]:
    """Section-5 adjusted weights of one bottom-k slice (Lemma 5.1)."""
    return bottom_k_adjusted_weights(ranks, k)


def k_mins_hip_weights(
    rank_vectors: Sequence[Sequence[float]], k: int
) -> List[float]:
    """Adjusted weights of one k-mins merged view (Equation 7)."""
    return k_mins_adjusted_weights(rank_vectors, k)


def k_partition_hip_weights(
    entries: Sequence[Tuple[int, float]], k: int
) -> List[float]:
    """Adjusted weights of one k-partition slice (Equation 8)."""
    return k_partition_adjusted_weights(entries, k)
