"""LOCALUPDATES (Algorithm 2): node-centric ADS construction for weighted
graphs, plus the (1+eps)-approximate variant.

Unlike PRUNEDDIJKSTRA and DP, messages here carry *path* lengths that may
exceed the true distance, so an accepted entry can later be superseded
(shorter path found) or evicted (smaller-rank closer entries arrived) --
the "Clean-up" phase of Algorithm 2.  The overhead is the churn; Section 3
bounds it by settling for a (1+eps)-approximate ADS, which only accepts an
entry if it beats the k-th rank among entries within distance
``a * (1+eps)`` (a strictly harder test that suppresses marginal churn).

With eps = 0 the final state equals the exact ADS (the tests assert
equality with PRUNEDDIJKSTRA's output); with eps > 0 the result is a
subset of the exact ADS satisfying the (1+eps)-approximation guarantee

    v not in ADS(u)  =>  r(v) > k-th smallest rank among all *nodes*
                         within distance (1+eps) d_uv of u,

i.e. an excluded node is beaten by k smaller-rank nodes at most (1+eps)
further out.  (The paper states the threshold over sketch entries; in the
asynchronous message-passing realisation an excluded node's blockers can
themselves be superseded later, so the provable -- and tested -- form
quantifies over nodes.  Every blocker is a real node whose message
distance upper-bounds its true distance, which is what the proof uses.)
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._util import require
from repro.ads.entry import AdsEntry
from repro.ads.pruned_dijkstra import BuildStats
from repro.graph.digraph import Graph, Node

Key = Tuple[float, int]  # (distance, tiebreak)


class NodeState:
    """Per-node sketch state: parallel sorted arrays keyed by (d, tb).

    Shared between this module's from-scratch LOCALUPDATES core and the
    incremental maintenance in :mod:`repro.ads.dynamic`, which runs the
    same insert / supersede / clean-up machinery seeded from an existing
    sketch set instead of from scratch.
    """

    __slots__ = ("keys", "nodes", "ranks", "held")

    def __init__(self) -> None:
        self.keys: List[Key] = []
        self.nodes: List[Node] = []
        self.ranks: List[float] = []
        self.held: Dict[Node, float] = {}  # node -> current distance

    def insert(self, key: Key, node: Node, rank: float) -> None:
        index = bisect_left(self.keys, key)
        self.keys.insert(index, key)
        self.nodes.insert(index, node)
        self.ranks.insert(index, rank)
        self.held[node] = key[0]

    def remove_at(self, index: int) -> None:
        del self.held[self.nodes[index]]
        del self.keys[index]
        del self.nodes[index]
        del self.ranks[index]

    def remove_node(self, node: Node, key: Key) -> None:
        index = bisect_left(self.keys, key)
        while self.nodes[index] != node:
            index += 1
        self.remove_at(index)

    def exact_kth_competitor_rank(
        self, k: int, key: Key, exclude: int = -1
    ) -> float:
        """k-th smallest rank among entries strictly below *key* (the
        exact, eps = 0 insertion threshold).  ``exclude`` skips one
        index, used when re-validating an entry against its own sketch.
        """
        limit = bisect_left(self.keys, key)
        competitors = self.ranks[:limit]
        if 0 <= exclude < limit:
            competitors = (
                self.ranks[:exclude] + self.ranks[exclude + 1: limit]
            )
        if len(competitors) < k:
            return float("inf")
        return sorted(competitors)[k - 1]


def exact_cleanup(
    state: NodeState, k: int, inserted_key: Key, stats: BuildStats
) -> int:
    """Algorithm 2 clean-up under the exact (eps = 0) insertion rule.

    Re-validates every entry farther than *inserted_key*, in increasing
    distance, evicting entries whose rank no longer beats their k-th
    competitor rank.  Returns the eviction count (also added to
    *stats*).
    """
    index = bisect_right(state.keys, inserted_key)
    evicted = 0
    while index < len(state.keys):
        key = state.keys[index]
        if state.ranks[index] < state.exact_kth_competitor_rank(
            k, key, exclude=index
        ):
            index += 1
        else:
            state.remove_at(index)
            evicted += 1
    stats.evictions += evicted
    return evicted


def local_updates_core(
    graph: Graph,
    candidates: Sequence[Node],
    k: int,
    rank_of: Callable[[Node], float],
    tiebreak_of: Callable[[Node], int],
    stats: BuildStats,
    epsilon: float = 0.0,
    bucket: Optional[int] = None,
    permutation: Optional[int] = None,
) -> Dict[Node, List[AdsEntry]]:
    """One bottom-k competition among *candidates*, message-passing style.

    Forward ADS: an update of ADS(v) is sent to every in-neighbor w of v
    with the edge weight added (the paper's Algorithm 2 phrased on the
    transpose; see DESIGN.md).
    """
    require(epsilon >= 0.0, f"epsilon must be >= 0, got {epsilon}")
    state: Dict[Node, NodeState] = {v: NodeState() for v in graph.nodes()}
    queue: deque = deque()

    def send_updates(v: Node, x: Node, r_x: float, tb_x: int, d: float) -> None:
        for w, weight in graph.in_neighbors(v):
            queue.append((w, x, r_x, tb_x, d + weight))
            stats.relaxations += 1

    def kth_competitor_rank(
        st: NodeState, d: float, tb: int, exclude: int = -1
    ) -> float:
        """k-th smallest rank among the competitors of a candidate at
        (d, tb): strictly-closer entries when exact (eps=0), entries
        within d(1+eps) when approximate.  ``exclude`` skips one index
        (used when re-validating an entry against its own sketch)."""
        if epsilon == 0.0:
            return st.exact_kth_competitor_rank(k, (d, tb), exclude=exclude)
        limit = bisect_right(st.keys, (d * (1.0 + epsilon), float("inf")))
        competitors = [
            st.ranks[i] for i in range(limit) if i != exclude
        ]
        if len(competitors) < k:
            return float("inf")
        return sorted(competitors)[k - 1]

    def cleanup(v: Node, inserted_key: Key) -> None:
        """Algorithm 2 clean-up: re-validate every entry farther than the
        newly inserted one, in increasing distance, evicting entries whose
        rank no longer beats their k-th competitor rank."""
        st = state[v]
        if epsilon == 0.0:
            exact_cleanup(st, k, inserted_key, stats)
            return
        index = bisect_right(st.keys, inserted_key)
        while index < len(st.keys):
            d, tb = st.keys[index]
            if st.ranks[index] < kth_competitor_rank(st, d, tb, exclude=index):
                index += 1
            else:
                st.remove_at(index)
                stats.evictions += 1

    # Initialization: every candidate source holds itself at distance 0.
    for s in candidates:
        r_s, tb_s = rank_of(s), tiebreak_of(s)
        state[s].insert((0.0, tb_s), s, r_s)
        stats.insertions += 1
        send_updates(s, s, r_s, tb_s, 0.0)

    # Asynchronous fixed point.
    while queue:
        v, x, r_x, tb_x, d = queue.popleft()
        st = state[v]
        existing = st.held.get(x)
        if existing is not None and existing <= d:
            continue  # we already hold x at least as close
        if r_x >= kth_competitor_rank(st, d, tb_x):
            continue  # fails the (possibly approximate) insertion test
        if existing is not None:
            st.remove_node(x, (existing, tb_x))
            stats.evictions += 1
        st.insert((d, tb_x), x, r_x)
        stats.insertions += 1
        cleanup(v, (d, tb_x))
        send_updates(v, x, r_x, tb_x, d)

    # Materialise entries.
    entries: Dict[Node, List[AdsEntry]] = {}
    for v, st in state.items():
        entries[v] = [
            AdsEntry(
                node=node, distance=key[0], rank=rank, tiebreak=key[1],
                bucket=bucket, permutation=permutation,
            )
            for key, node, rank in zip(st.keys, st.nodes, st.ranks)
        ]
    return entries
