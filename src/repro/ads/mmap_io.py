"""Zero-copy column backing for :class:`~repro.ads.index.AdsIndex`.

``AdsIndex.load(path, mmap=True)`` replaces the eager
read-into-``array`` deserialisation with views over memory-mapped file
bytes, so a multi-gigabyte index starts serving in milliseconds:

* **single-file layout** -- the whole file is mapped once and each
  column becomes a ``memoryview.cast`` over its byte range
  (:func:`map_file_columns`).  Nothing is copied; the OS pages bytes in
  on first touch.
* **sharded layout** -- only the manifest and the per-shard JSON headers
  (plus the small per-node offsets) are read at load time.  The six
  entry columns become :class:`ShardedColumn` objects that map each
  shard file lazily, on the first query that touches a node of that
  shard (:class:`ShardMaps`).

Lifetime rules: the mapped :class:`memoryview` objects hold their
``mmap.mmap`` alive, and the index holds the column views, so the
mappings live exactly as long as the index -- request handlers may slice
columns freely without copying, but must not outlive the index.  The
maps are read-only (``ACCESS_READ``); mutating a served index file while
it is mapped is undefined behaviour, same as any mmap consumer.
"""

from __future__ import annotations

import mmap
import os
import threading
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import EstimatorError

_WORD = 8  # every persisted column is 8 bytes per entry


def map_file_columns(
    path: Path,
    fileno: int,
    data_start: int,
    counts: Sequence[int],
    typecodes: Sequence[str],
) -> List[memoryview]:
    """Map *path* once and cast one zero-copy view per column.

    ``counts[i]`` entries of 8-byte ``typecodes[i]`` values are expected
    back-to-back starting at byte ``data_start``.  Raises
    :class:`EstimatorError` when the file is too short for the claimed
    counts (the mmap equivalent of the eager loader's "truncated file").
    """
    need = data_start + _WORD * sum(counts)
    size = os.fstat(fileno).st_size
    if size < need:
        raise EstimatorError(f"{path}: truncated file")
    mapped = mmap.mmap(fileno, 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)
    columns = []
    position = data_start
    for count, typecode in zip(counts, typecodes):
        stop = position + _WORD * count
        columns.append(view[position:stop].cast(typecode))
        position = stop
    return columns


class ShardSpec:
    """Where one shard's entry columns live on disk.

    ``entry_base`` is the shard's first global entry slot; the shard
    carries ``count`` entries of each column starting at byte
    ``data_start`` of ``path`` (column order fixed by the caller).
    """

    __slots__ = ("path", "data_start", "count", "entry_base")

    def __init__(
        self, path: Union[str, Path], data_start: int, count: int,
        entry_base: int,
    ):
        self.path = Path(path)
        self.data_start = int(data_start)
        self.count = int(count)
        self.entry_base = int(entry_base)


class ShardMaps:
    """Lazily memory-maps shard files and hands out their column views.

    One instance is shared by the six :class:`ShardedColumn` objects of
    a lazily loaded index, so touching any column of a shard maps the
    whole shard exactly once.  Mapping is guarded by a lock -- a
    threaded server may race two first-touches of the same shard.
    """

    def __init__(self, specs: Sequence[ShardSpec], typecodes: Sequence[str]):
        self.specs = list(specs)
        self.typecodes = tuple(typecodes)
        self.entry_bases = [spec.entry_base for spec in self.specs]
        self.total_entries = (
            self.specs[-1].entry_base + self.specs[-1].count
            if self.specs else 0
        )
        self._views: List[Optional[List[memoryview]]] = [None] * len(
            self.specs
        )
        self._lock = threading.Lock()

    @property
    def mapped_shards(self) -> int:
        """How many shard files are currently mapped (for /stats)."""
        return sum(1 for views in self._views if views is not None)

    def shard_of(self, slot: int) -> int:
        """The shard index holding global entry *slot*."""
        return bisect_right(self.entry_bases, slot) - 1

    def views(self, shard: int) -> List[memoryview]:
        """The shard's column views, mapping the file on first touch."""
        views = self._views[shard]
        if views is not None:
            return views
        with self._lock:
            views = self._views[shard]
            if views is None:
                spec = self.specs[shard]
                try:
                    with open(spec.path, "rb") as handle:
                        views = map_file_columns(
                            spec.path, handle.fileno(), spec.data_start,
                            [spec.count] * len(self.typecodes),
                            self.typecodes,
                        )
                except OSError as error:
                    raise EstimatorError(
                        f"{spec.path}: shard file vanished or became "
                        f"unreadable after load ({error})"
                    )
                self._views[shard] = views
        return views


class ShardedColumn:
    """One global entry column assembled from lazily mapped shards.

    Supports exactly the sequence surface the index queries use:
    ``len``, integer indexing (also what :func:`bisect.bisect_right`
    needs), slicing, and ``tobytes``.  A slice that stays inside one
    shard -- every per-node slice does, because nodes never straddle
    shard boundaries -- returns a zero-copy ``memoryview``; a slice that
    crosses shards (only re-sharding saves do this) is assembled into a
    fresh ``array``.
    """

    __slots__ = ("_maps", "_column", "_typecode")

    def __init__(self, maps: ShardMaps, column: int, typecode: str):
        self._maps = maps
        self._column = column
        self._typecode = typecode

    def __len__(self) -> int:
        return self._maps.total_entries

    @property
    def mapped_shards(self) -> int:
        """How many backing shard files are mapped so far (public
        surface for ``AdsIndex.mapped_shards`` / serving stats)."""
        return self._maps.mapped_shards

    @property
    def shard_count(self) -> int:
        """How many shards back this column (parallel kernel sizing)."""
        return len(self._maps.specs)

    @property
    def shard_specs(self) -> tuple:
        """The backing :class:`ShardSpec` objects in global entry order.

        The parallel kernel's partition planner cuts node ranges at
        these shards' entry bases (within-shard slices stay zero-copy)
        and hands worker processes the ``(path, data_start, count)``
        coordinates to re-map shards themselves.
        """
        return tuple(self._maps.specs)

    def _shard_view(self, shard: int) -> memoryview:
        return self._maps.views(shard)[self._column]

    def __getitem__(self, item):
        maps = self._maps
        if isinstance(item, slice):
            start, stop, step = item.indices(maps.total_entries)
            if step != 1:
                raise EstimatorError(
                    "ShardedColumn slices must have step 1"
                )
            if start >= stop:
                return array(self._typecode)
            shard = maps.shard_of(start)
            base = maps.entry_bases[shard]
            if stop <= base + maps.specs[shard].count:
                return self._shard_view(shard)[start - base:stop - base]
            return self._gather(start, stop)
        slot = item
        if slot < 0:
            slot += maps.total_entries
        if not 0 <= slot < maps.total_entries:
            raise IndexError("ShardedColumn index out of range")
        shard = maps.shard_of(slot)
        return self._shard_view(shard)[slot - maps.entry_bases[shard]]

    def _gather(self, start: int, stop: int) -> array:
        """Copy a cross-shard range into one owned array."""
        maps = self._maps
        gathered = array(self._typecode)
        shard = maps.shard_of(start)
        position = start
        while position < stop:
            base = maps.entry_bases[shard]
            shard_stop = min(stop, base + maps.specs[shard].count)
            gathered.extend(
                self._shard_view(shard)[position - base:shard_stop - base]
            )
            position = shard_stop
            shard += 1
        return gathered

    def __iter__(self):
        for shard, spec in enumerate(self._maps.specs):
            if spec.count:
                yield from self._shard_view(shard)

    def shard_views(self):
        """Yield each nonempty shard's zero-copy column view, in global
        entry order, mapping shard files on first touch.

        The public assembly surface for consumers that want the whole
        column as one contiguous buffer (the NumPy kernel concatenates
        these once per loaded index); views follow the lifetime rules
        in the module docs.
        """
        for shard, spec in enumerate(self._maps.specs):
            if spec.count:
                yield self._shard_view(shard)

    def tobytes(self) -> bytes:
        return b"".join(
            self._shard_view(shard).tobytes()
            for shard, spec in enumerate(self._maps.specs)
            if spec.count
        )

    def __eq__(self, other) -> bool:
        try:
            if len(other) != len(self):
                return False
        except TypeError:
            return NotImplemented
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __repr__(self) -> str:
        return (
            f"ShardedColumn(typecode={self._typecode!r}, "
            f"entries={len(self)}, shards={len(self._maps.specs)}, "
            f"mapped={self._maps.mapped_shards})"
        )
