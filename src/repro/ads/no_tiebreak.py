"""ADS without tie breaking (Appendix A).

When many node pairs share a distance (e.g. small-diameter unweighted
graphs), the strict per-node tie-broken ADS stores up to k entries per
*node prefix*, while the modified definition stores at most k entries per
*distinct distance*:

    u in ADS(v)  <=>  r(u) < k-th smallest rank among {w : d_vw <= d_vu}.

The matching HIP probabilities condition on all other nodes' ranks: an
entry u qualifies for a (positive) adjusted weight only when its rank is
among the k-1 smallest at its distance ball, and its threshold is the
k-th smallest rank among the *other* nodes in that ball -- an entry that
holds exactly the k-th smallest rank is present in the sketch but "not
considered sampled" (weight 0).  The resulting estimator has CV at most
1/sqrt(k-2), the basic bottom-k bound.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Tuple

from repro._util import kth_smallest, require
from repro.graph.digraph import Graph, Node
from repro.graph.traversal import single_source_distances
from repro.rand.hashing import HashFamily
from repro.rand.ranks import RankAssignment, UniformRanks


class NoTiebreakADS:
    """The Appendix-A bottom-k ADS of one source node.

    Entries are (node, distance, rank) with at most k entries per distinct
    distance value; ``hip_weights`` implements the modified conditioned
    probabilities.
    """

    def __init__(
        self,
        source: Hashable,
        k: int,
        entries: List[Tuple[Hashable, float, float]],
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        self.source = source
        self.k = int(k)
        # Sort by (distance, rank): scan order within a distance class is
        # irrelevant to the definition; rank order is convenient.
        self.entries = sorted(entries, key=lambda e: (e[1], e[2]))

    def __len__(self) -> int:
        return len(self.entries)

    def hip_weights(self) -> List[float]:
        """Adjusted weights under the modified HIP probabilities."""
        weights: List[float] = []
        # Group scan: for each entry, competitors are all *other* entries
        # with distance <= its own (within the ball).
        ranks_so_far: List[float] = []  # ranks of all entries with d < current
        index = 0
        entries = self.entries
        while index < len(entries):
            # Collect the whole distance class.
            d = entries[index][1]
            group = []
            while index < len(entries) and entries[index][1] == d:
                group.append(entries[index])
                index += 1
            ball = ranks_so_far + [rank for _, _, rank in group]
            # tau is the k-th smallest rank of the whole ball.  For an
            # entry u among the k-1 smallest, removing u makes tau the
            # (k-1)-th smallest of the *others* -- exactly the Appendix-A
            # conditioned threshold; the entry holding the k-th smallest
            # rank itself fails `rank < tau` and gets weight 0.
            tau = kth_smallest(ball, self.k, sup=1.0)
            for node, _, rank in group:
                if rank < tau:
                    weights.append(1.0 / tau)
                else:
                    weights.append(0.0)  # holds the k-th rank: not sampled
            ranks_so_far = ball
        return weights

    def cardinality_at(self, d: float = math.inf) -> float:
        weights = self.hip_weights()
        return sum(
            w for (_, dist, _), w in zip(self.entries, weights) if dist <= d
        )


def build_no_tiebreak_ads(
    graph: Graph,
    k: int,
    family: HashFamily,
    ranks: Optional[RankAssignment] = None,
) -> Dict[Node, NoTiebreakADS]:
    """Build the Appendix-A ADS for every node by direct definition
    (single-source scans; O(n(m + n log n)) -- this variant is provided
    for completeness and validated at moderate sizes)."""
    rank_map = ranks if ranks is not None else UniformRanks(family)
    result: Dict[Node, NoTiebreakADS] = {}
    for source in graph.nodes():
        dist = single_source_distances(graph, source)
        by_distance: Dict[float, List[Tuple[Hashable, float, float]]] = (
            defaultdict(list)
        )
        for node, d in dist.items():
            by_distance[d].append((node, d, rank_map.rank(node)))
        entries: List[Tuple[Hashable, float, float]] = []
        ranks_so_far: List[float] = []
        for d in sorted(by_distance):
            group = by_distance[d]
            ball_ranks = ranks_so_far + [r for _, _, r in group]
            threshold = kth_smallest(ball_ranks, k, sup=1.0)
            for node, dd, r in group:
                # Included iff among the k smallest ranks of the ball
                # (r == threshold exactly when the node holds the k-th
                # smallest rank itself; Appendix A keeps it in the sketch
                # but gives it adjusted weight 0).
                if r <= threshold:
                    entries.append((node, dd, r))
            ranks_so_far = ball_ranks
        result[source] = NoTiebreakADS(source, k, entries)
    return result
