"""Sharded multi-process ADS construction.

The serial CSR builders are bounded by single-core throughput, while the
paper's target graphs (Section 6) have billions of edges.  This module
partitions each rank-ordered competition of the flavor plan
(:func:`~repro.ads.csr_cores.flavor_competitions`) across worker
processes and merges the shard outputs back into the *bit-identical*
serial result:

1. **Shard.** The competition's candidates are dealt round-robin in
   increasing-rank order (:func:`plan_shards`), so every shard gets its
   share of low-rank candidates -- the ones whose scans do the pruning.
2. **Scan.** Each worker runs the unmodified CSR core over a shared
   read-only CSR (the arrays are shipped once per worker via the pool
   initializer) with *only its shard's candidates*.  Fewer competitors
   means strictly weaker pruning, so a shard run retains a **superset**
   of the candidate's true sketch entries -- with exact distances, since
   pruning never alters BFS levels or Dijkstra pops.
3. **Replay.** For every node, the retained records of all shards are
   re-sorted into the serial candidate order (increasing rank, then id)
   and the bottom-k' competition is replayed with a bounded max-heap of
   (distance, tiebreak) keys (:func:`replay_competition`).  Replaying a
   superset with exact keys reproduces the serial accept/reject decision
   for every candidate, because acceptance depends only on the keys of
   previously *accepted* candidates -- all of which are present in the
   superset.  The replayed entries therefore equal the serial entries
   record-for-record, and the downstream HIP column (computed from the
   merged records) is bit-identical too.

The determinism argument in full lives in ARCHITECTURE.md ("Sharded
parallel builds").  Workers communicate only immutable tuples of
primitives, so the subsystem works under both fork and spawn start
methods; ``workers=1`` with ``shards > 1`` runs the exact same
shard/replay pipeline in-process, which is what the equivalence tests
drive under hypothesis without paying process startup.
"""

from __future__ import annotations

import multiprocessing
from array import array
from heapq import heappush, heapreplace
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import require
from repro.ads.csr_cores import (
    _SCAN_KEY,
    Record,
    core_for_method,
    flavor_competitions,
)
from repro.ads.pruned_dijkstra import BuildStats
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

# A worker task: one shard of one competition.  Candidates and ranks
# travel as ``array`` objects (pickled as raw bytes, not boxed
# objects); the tiebreaks -- identical for every task -- ship once per
# worker through the pool initializer, like the graph itself.
# (k_eff, candidate_ids, ranks, bucket, permutation)
ShardTask = Tuple[int, Sequence[int], Sequence[float],
                  Optional[int], Optional[int]]
# A worker result: sparse per-node records plus work counters.
SparseRun = List[Tuple[int, List[Record]]]

# Candidate processing order inside a core run: sorted(candidates,
# key=rank) over an id-ascending candidate list, i.e. (rank, id) --
# record fields 3 and 2.
_CANDIDATE_ORDER = itemgetter(3, 2)


def plan_shards(
    candidates: Sequence[int], ranks: Sequence[float], shards: int
) -> List[List[int]]:
    """Deal *candidates* round-robin in increasing-(rank, id) order.

    Round-robin over the rank order (rather than contiguous rank
    blocks) gives every shard low-rank candidates, which are the ones
    whose scans populate the pruning thresholds -- contiguous rank
    blocks would leave the last shard with no pruning at all.  Empty
    shards (more shards than candidates) are dropped.
    """
    require(shards >= 1, f"shards must be >= 1, got {shards}")
    order = sorted(candidates, key=lambda c: (ranks[c], c))
    return [order[j::shards] for j in range(min(shards, len(order)))]


def replay_competition(
    k_eff: int,
    shard_runs: Sequence[SparseRun],
    per_node: List[List[Record]],
) -> None:
    """Merge shard outputs of one competition into *per_node*, exactly.

    Replays the serial acceptance rule on the union of the shards'
    retained records: candidates in increasing (rank, id) order, a
    record accepted unless k_eff previously accepted records have a
    strictly smaller (distance, tiebreak) key.  Appends accepted records
    to ``per_node[v]`` in acceptance order -- the serial insertion
    order -- so a later stable scan-order sort agrees bit-for-bit.
    """
    gathered: Dict[int, List[Record]] = {}
    for sparse in shard_runs:
        for v, records in sparse:
            existing = gathered.get(v)
            if existing is None:
                gathered[v] = list(records)
            else:
                existing.extend(records)
    for v, records in gathered.items():
        records.sort(key=_CANDIDATE_ORDER)
        accepted = per_node[v]
        heap: List[Tuple[float, int]] = []  # negated (d, tb): root = worst
        for record in records:
            key = (-record[0], -record[1])
            if len(heap) >= k_eff:
                worst_d, worst_tb = heap[0]
                if worst_d > key[0] or (
                    worst_d == key[0] and worst_tb > key[1]
                ):
                    continue  # k_eff strictly-closer accepted entries
                heapreplace(heap, key)
            else:
                heappush(heap, key)
            accepted.append(record)


# ----------------------------------------------------------------------
# Worker plumbing.  The pool initializer rebuilds the CSR once per
# worker; tasks then carry only per-competition arrays.
# ----------------------------------------------------------------------
_worker_graph: Optional[CSRGraph] = None
_worker_method: Optional[str] = None
_worker_tiebreaks: Optional[Sequence[int]] = None


def _pool_init(payload: tuple, method: str, tiebreaks: Sequence[int]) -> None:
    global _worker_graph, _worker_method, _worker_tiebreaks
    _worker_graph = CSRGraph.from_arrays_payload(payload)
    _worker_method = method
    _worker_tiebreaks = tiebreaks


def _run_pool_task(task: ShardTask) -> Tuple[SparseRun, Tuple[int, int, int]]:
    return _run_task(_worker_graph, _worker_method, _worker_tiebreaks, task)


def _run_task(
    graph: CSRGraph, method: str, tiebreaks: Sequence[int], task: ShardTask
) -> Tuple[SparseRun, Tuple[int, int, int]]:
    k_eff, candidates, ranks, bucket, permutation = task
    stats = BuildStats()
    run = core_for_method(method)(
        graph, candidates, k_eff, ranks, tiebreaks, stats, bucket, permutation
    )
    sparse = [(v, records) for v, records in enumerate(run) if records]
    return sparse, (stats.insertions, stats.relaxations, stats.rounds)


def _pool_context():
    """The platform-default start method: fork on Linux (cheap, shares
    the parent's pages), spawn where fork is unsafe (macOS system
    libraries abort in forked children; Windows has no fork).  The
    pickled-payload initializer keeps every start method correct."""
    return multiprocessing.get_context()


def build_flat_entries_sharded(
    graph: CSRGraph,
    k: int,
    family: HashFamily,
    flavor: str,
    method: str,
    stats: BuildStats,
    workers: int = 1,
    shards: Optional[int] = None,
) -> List[List[Record]]:
    """All-nodes flat ADS build, sharded across *workers* processes.

    Output is bit-identical to :func:`build_flat_entries` on the same
    inputs (the equivalence suite asserts it column-for-column).
    *shards* defaults to *workers*; more shards than workers simply
    queue, and ``workers=1`` runs every shard in-process.  *stats*
    receives the work actually performed: shard scans repeat some
    pruning that a global competition would avoid, so ``insertions``
    counts records retained by shard runs, not final entries.
    """
    require(workers >= 1, f"workers must be >= 1, got {workers}")
    if shards is None:
        shards = workers
    require(shards >= 1, f"shards must be >= 1, got {shards}")
    core_for_method(method)  # validate before planning
    n = graph.num_nodes
    tiebreaks, competitions = flavor_competitions(graph, k, family, flavor)

    tasks: List[ShardTask] = []
    owners: List[int] = []  # competition index of each task
    for index, (k_eff, candidates, ranks, bucket, permutation) in enumerate(
        competitions
    ):
        packed_ranks = array("d", ranks)
        for shard in plan_shards(candidates, ranks, shards):
            tasks.append((
                k_eff, array("q", shard), packed_ranks, bucket, permutation,
            ))
            owners.append(index)

    if workers == 1 or len(tasks) <= 1:
        results = [_run_task(graph, method, tiebreaks, task)
                   for task in tasks]
    else:
        context = _pool_context()
        pool = context.Pool(
            processes=min(workers, len(tasks)),
            initializer=_pool_init,
            initargs=(graph.to_arrays_payload(), method,
                      array("Q", tiebreaks)),  # Q: tiebreaks are 64-bit hashes
        )
        try:
            results = pool.map(_run_pool_task, tasks)
        finally:
            pool.close()
            pool.join()

    for _, (insertions, relaxations, rounds) in results:
        stats.insertions += insertions
        stats.relaxations += relaxations
        stats.rounds = max(stats.rounds, rounds)

    per_node: List[List[Record]] = [[] for _ in range(n)]
    for index in range(len(competitions)):
        runs = [
            sparse for owner, (sparse, _) in zip(owners, results)
            if owner == index
        ]
        replay_competition(competitions[index][0], runs, per_node)
    for records in per_node:
        records.sort(key=_SCAN_KEY)  # stable: competitions stay ordered
    return per_node
