"""PRUNEDDIJKSTRA (Algorithm 1): ADS sets via rank-ordered pruned scans.

Process nodes u by increasing rank; run Dijkstra from u on the transpose
graph; at each scanned node v, insert (r(u), d_vu) into ADS(v) unless k
strictly-closer entries already exist -- in which case prune the search at
v.  Because ranks arrive in increasing order, every inserted entry is
final, and pruning is sound: if k closer smaller-rank nodes block u at v,
they also block u at every node whose shortest path to u passes through v.

Works on weighted and unweighted, directed and undirected graphs, and for
all three flavors (k-mins and k-partition reduce to bottom-1 runs,
Section 3).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ads.entry import AdsEntry
from repro.graph.digraph import Graph, Node


class BuildStats:
    """Work counters exposed by every builder (Appendix B.2 benchmarks)."""

    def __init__(self) -> None:
        self.relaxations = 0  # heap pushes / edge relaxations
        self.insertions = 0   # entries added to some ADS
        self.evictions = 0    # entries later removed (LocalUpdates only)
        self.rounds = 0       # synchronous rounds (DP / LocalUpdates)

    def __repr__(self) -> str:
        return (
            f"BuildStats(relaxations={self.relaxations}, "
            f"insertions={self.insertions}, evictions={self.evictions}, "
            f"rounds={self.rounds})"
        )


def pruned_dijkstra_core(
    graph: Graph,
    candidates: Sequence[Node],
    k: int,
    rank_of: Callable[[Node], float],
    tiebreak_of: Callable[[Node], int],
    stats: BuildStats,
    bucket: Optional[int] = None,
    permutation: Optional[int] = None,
) -> Dict[Node, List[AdsEntry]]:
    """One bottom-k competition among *candidates*, inserting into the
    ADS of every node of *graph* (forward ADS: distances measured from the
    ADS owner to the candidate).

    *candidates* is the set of nodes allowed to appear as entries: all
    nodes for bottom-k / k-mins runs, one bucket's members for
    k-partition runs.
    """
    transpose = graph.transpose()
    entries: Dict[Node, List[AdsEntry]] = {v: [] for v in graph.nodes()}
    keys: Dict[Node, List[Tuple[float, int]]] = {v: [] for v in graph.nodes()}
    order = sorted(candidates, key=rank_of)
    for u in order:
        r_u = rank_of(u)
        tb_u = tiebreak_of(u)
        visited = set()
        heap: List[Tuple[float, int, Node]] = [(0.0, tiebreak_of(u), u)]
        while heap:
            d, _, v = heapq.heappop(heap)
            if v in visited:
                continue
            visited.add(v)
            key = (d, tb_u)
            key_list = keys[v]
            position = bisect_left(key_list, key)
            if position >= k:
                continue  # prune: u cannot enter ADS(v) nor any ADS behind v
            insort(key_list, key)
            entries[v].append(
                AdsEntry(
                    node=u,
                    distance=d,
                    rank=r_u,
                    tiebreak=tb_u,
                    bucket=bucket,
                    permutation=permutation,
                )
            )
            stats.insertions += 1
            for w, weight in transpose.out_neighbors(v):
                stats.relaxations += 1
                if w not in visited:
                    heapq.heappush(heap, (d + weight, tiebreak_of(w), w))
    return entries
