"""ADS over data streams (Section 3.1).

A stream of (element, time) entries admits two distance notions:

* elapsed time from the stream start to the element's *first* occurrence
  (:class:`FirstOccurrenceStreamADS`) -- elements are inserted in
  increasing distance, so maintenance is exactly a bottom-k sketch whose
  update history is recorded;
* elapsed time from the element's *most recent* occurrence back from a
  horizon T (:class:`RecentOccurrenceStreamADS`) -- the newest entry is
  always nearest, so every arrival inserts and may evict older entries
  (the time-decaying setting of [18]).

Both produce entry sequences on which the standard HIP machinery applies
(with elapsed time playing the role of distance), which is how Section 6
turns any MinHash sketch into a distinct counter.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, List, Optional, Tuple

from repro._util import require
from repro.errors import ParameterError
from repro.estimators.hip import bottom_k_adjusted_weights, hip_cardinality
from repro.rand.hashing import HashFamily
from repro.rand.ranks import RankAssignment, UniformRanks


class FirstOccurrenceStreamADS:
    """Bottom-k ADS w.r.t. time of first occurrence (Section 3.1, case i).

    Equivalent to maintaining a bottom-k MinHash sketch of the distinct
    prefix and recording every modification: the recorded (element, time,
    rank) triples *are* the ADS entries, already in scan order.
    """

    def __init__(
        self,
        k: int,
        family: HashFamily,
        ranks: Optional[RankAssignment] = None,
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.family = family
        self.ranks = ranks if ranks is not None else UniformRanks(family)
        self._heap: List[float] = []  # max-heap (negated) of k smallest ranks
        self._members: set = set()
        self.entries: List[Tuple[Hashable, float, float]] = []  # (elem, t, rank)
        self._last_time = -math.inf

    def add(self, element: Hashable, time: float) -> bool:
        """Process a stream entry (element, time); True if inserted."""
        if time < self._last_time:
            raise ParameterError(
                f"stream times must be non-decreasing; got {time} after "
                f"{self._last_time}"
            )
        self._last_time = time
        if element in self._members:
            return False
        r = self.ranks.rank(element)
        if len(self._heap) >= self.k and r >= -self._heap[0]:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -r)
        else:
            heapq.heapreplace(self._heap, -r)
        self._members.add(element)
        self.entries.append((element, time, r))
        return True

    # -- estimation -----------------------------------------------------
    def hip_weights(self) -> List[float]:
        return bottom_k_adjusted_weights(
            [rank for _, _, rank in self.entries], self.k
        )

    def distinct_count(self, up_to_time: float = math.inf) -> float:
        """HIP estimate of the number of distinct elements whose first
        occurrence is at time <= up_to_time."""
        return hip_cardinality(
            self.hip_weights(),
            [t for _, t, _ in self.entries],
            up_to_time,
        )

    def __len__(self) -> int:
        return len(self._members)


class RecentOccurrenceStreamADS:
    """Bottom-k ADS w.r.t. recency: distance of an element is T - t_last
    (Section 3.1, case ii).

    The newest arrival is always the nearest entry, so it is always
    inserted; older entries whose rank is no longer among the k smallest
    seen while scanning outward are cleaned up.  Supports time-decaying
    statistics: ``decayed_sum(alpha, now)`` estimates
    ``sum over distinct elements of alpha(now - t_last)``.
    """

    def __init__(
        self,
        k: int,
        family: HashFamily,
        horizon: float,
        ranks: Optional[RankAssignment] = None,
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.family = family
        self.horizon = float(horizon)
        self.ranks = ranks if ranks is not None else UniformRanks(family)
        # Entries sorted by increasing distance T - t (newest first).
        self.entries: List[Tuple[float, Hashable, float]] = []  # (T-t, elem, rank)
        self._last_time = -math.inf

    def add(self, element: Hashable, time: float) -> bool:
        """Process (element, time); always inserts, may evict others."""
        if time < self._last_time:
            raise ParameterError(
                f"stream times must be non-decreasing; got {time} after "
                f"{self._last_time}"
            )
        if time >= self.horizon:
            raise ParameterError(
                f"time {time} is not before the horizon {self.horizon}"
            )
        self._last_time = time
        distance = self.horizon - time
        r = self.ranks.rank(element)
        # Remove a previous occurrence of the element, if present.
        self.entries = [e for e in self.entries if e[1] != element]
        self.entries.insert(0, (distance, element, r))
        self._cleanup()
        return True

    def _cleanup(self) -> None:
        """Keep an entry only while its rank is among the k smallest
        scanned so far (increasing distance) -- the bottom-k ADS rule for
        decreasing-distance insertion order."""
        kept: List[Tuple[float, Hashable, float]] = []
        heap: List[float] = []  # max-heap (negated) of k smallest ranks
        for distance, element, rank in sorted(self.entries):
            if len(heap) < self.k:
                heapq.heappush(heap, -rank)
                kept.append((distance, element, rank))
            elif rank < -heap[0]:
                heapq.heapreplace(heap, -rank)
                kept.append((distance, element, rank))
        self.entries = kept

    # -- estimation -----------------------------------------------------
    def hip_weights(self) -> List[float]:
        return bottom_k_adjusted_weights(
            [rank for _, _, rank in sorted(self.entries)], self.k
        )

    def distinct_count_within(self, window: float, now: float) -> float:
        """HIP estimate of the number of distinct elements seen in the
        last *window* time units before *now*."""
        weights = self.hip_weights()
        ordered = sorted(self.entries)
        total = 0.0
        for (distance, _, _), weight in zip(ordered, weights):
            recency = distance - (self.horizon - now)
            if 0.0 <= recency <= window:
                total += weight
        return total

    def decayed_sum(self, alpha, now: float) -> float:
        """HIP estimate of sum over distinct elements of alpha(age) where
        age = now - (time of most recent occurrence)."""
        weights = self.hip_weights()
        ordered = sorted(self.entries)
        total = 0.0
        for (distance, _, _), weight in zip(ordered, weights):
            age = distance - (self.horizon - now)
            if age >= 0.0:
                total += weight * float(alpha(age))
        return total

    def __len__(self) -> int:
        return len(self.entries)
