"""Append-only, checksummed write-ahead delta log for update batches.

The serving tier's durability gap (before this module): ``POST
/update`` splices the in-memory index, but nothing reaches disk until
``POST /compact`` -- a crashed worker silently loses every batch since
its last compact.  :class:`WriteAheadLog` closes that gap the standard
way: the server appends each edge batch here *before* applying it, so
a restart replays the log over the last compacted layout and recovers
the exact pre-crash state (``apply_edges`` is deterministic and
bit-identical to a rebuild, so replay is too).

On-disk format (single file, ``updates.wal`` inside ``--wal-dir``)::

    ADSWAL01 | header_len (8 LE) | header JSON {"version", "base_seq"}
    record*  : payload_len (4 LE) | crc32(payload) (4 LE) | payload

Each payload is compact JSON ``{"seq": N, "edges": [[u, v], [u, v, w],
...]}`` -- the *coerced* edge batch, exactly what ``apply_edges``
receives, so replay needs no request context.  Sequence numbers are
strictly consecutive from ``base_seq``; :meth:`reset` (called after a
successful compact) atomically replaces the file with an empty log
whose ``base_seq`` records where the flushed layout stands.

Durability and torn-write rules:

* every :meth:`append` is flushed and ``fsync``'d before it returns --
  an acknowledged update is on stable storage;
* a torn tail (truncated frame, checksum mismatch, malformed or
  out-of-sequence payload -- anything a mid-write crash can leave) is
  detected on open, cleanly ignored, and truncated away by the next
  append, so one crash can never poison later records;
* :meth:`reset` goes through write-temp/fsync/``os.replace``, so the
  log is always either the old file or the new one, never a hybrid.

Example:
    >>> import tempfile
    >>> wal = WriteAheadLog(tempfile.mkdtemp())
    >>> wal.append([(0, 1), (1, 2, 2.5)])
    1
    >>> reopened = WriteAheadLog(wal.directory)
    >>> [(record.seq, record.edges) for record in reopened.pending()]
    [(1, [(0, 1), (1, 2, 2.5)])]
    >>> reopened.reset(reopened.last_seq)
    >>> reopened.pending()
    []
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Union

from repro._util import atomic_output
from repro.errors import EstimatorError

_WAL_MAGIC = b"ADSWAL01"
_WAL_VERSION = 1
_MAX_RECORD_BYTES = 1 << 30  # same implausibility bound as index headers


class WalRecord(NamedTuple):
    """One logged update batch: its sequence number and edge tuples."""

    seq: int
    edges: List[tuple]


def _valid_edge(edge: Any) -> bool:
    if not isinstance(edge, list) or len(edge) not in (2, 3):
        return False
    for label in edge[:2]:
        if isinstance(label, bool) or not isinstance(label, (int, str)):
            return False
    if len(edge) == 3:
        weight = edge[2]
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            return False
    return True


class WriteAheadLog:
    """The append/replay/reset surface over one ``updates.wal`` file.

    Args:
        directory: The WAL directory (``--wal-dir``); created if
            missing.  A fresh log (``base_seq=0``) is written when no
            ``updates.wal`` exists yet.
        file_name: The log file name inside *directory*.

    Raises:
        EstimatorError: an existing file that is not a WAL, or whose
            *header* is corrupt (a torn record tail is tolerated; a
            torn header means the file was never a valid log).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        file_name: str = "updates.wal",
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / file_name
        self.base_seq = 0
        self.last_seq = 0
        self._pending: List[WalRecord] = []
        self._good_offset = 0
        self._tail_torn = False
        self._prev_offset: Optional[int] = None  # rollback_last window
        self._handle = None
        if self.path.exists():
            self._scan()
        else:
            self._write_fresh(0)

    # ------------------------------------------------------------------
    # Open / scan
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """Parse the existing log; stop cleanly at the first torn record."""
        with open(self.path, "rb") as handle:
            magic = handle.read(len(_WAL_MAGIC))
            if magic != _WAL_MAGIC:
                raise EstimatorError(f"{self.path}: not an ADS WAL file")
            raw_len = handle.read(8)
            if len(raw_len) != 8:
                raise EstimatorError(f"{self.path}: truncated WAL header")
            header_len = int.from_bytes(raw_len, "little")
            if not 0 < header_len <= _MAX_RECORD_BYTES:
                raise EstimatorError(
                    f"{self.path}: implausible WAL header length"
                )
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise EstimatorError(f"{self.path}: truncated WAL header")
            try:
                header = json.loads(header_bytes.decode("utf-8"))
                base_seq = header["base_seq"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError) as error:
                raise EstimatorError(
                    f"{self.path}: corrupt WAL header ({error})"
                )
            if isinstance(base_seq, bool) or not isinstance(base_seq, int) \
                    or base_seq < 0:
                raise EstimatorError(
                    f"{self.path}: corrupt WAL base sequence"
                )
            self.base_seq = base_seq
            self.last_seq = base_seq
            self._good_offset = handle.tell()
            while True:
                record = self._read_record(handle)
                if record is None:
                    break
                self._pending.append(record)
                self.last_seq = record.seq
                self._good_offset = handle.tell()

    def _read_record(self, handle) -> Optional[WalRecord]:
        """One framed record, or ``None`` at EOF / the first torn byte."""
        head = handle.read(8)
        if len(head) < 8:
            self._tail_torn = bool(head)
            return None
        length = int.from_bytes(head[:4], "little")
        checksum = int.from_bytes(head[4:], "little")
        if not 0 < length <= _MAX_RECORD_BYTES:
            self._tail_torn = True
            return None
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != checksum:
            self._tail_torn = True
            return None
        try:
            decoded = json.loads(payload.decode("utf-8"))
            seq, edges = decoded["seq"], decoded["edges"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError):
            self._tail_torn = True
            return None
        if seq != self.last_seq + 1 or not isinstance(edges, list) \
                or not all(_valid_edge(edge) for edge in edges):
            self._tail_torn = True
            return None
        return WalRecord(seq, [tuple(edge) for edge in edges])

    # ------------------------------------------------------------------
    # Append / replay / reset
    # ------------------------------------------------------------------
    def pending(self) -> List[WalRecord]:
        """Records logged after the last :meth:`reset`, in order --
        the replay set a restarting server applies."""
        return list(self._pending)

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    def append(self, edges: Sequence) -> int:
        """Durably log one edge batch; returns its sequence number.

        The frame is flushed and ``fsync``'d before returning, so a
        crash at any later point replays this batch on restart.  A torn
        tail left by an earlier crash is truncated away first, keeping
        the framing self-synchronising.
        """
        seq = self.last_seq + 1
        payload = json.dumps(
            {"seq": seq, "edges": [list(edge) for edge in edges]},
            ensure_ascii=False, separators=(",", ":"),
        ).encode("utf-8")
        frame = (
            len(payload).to_bytes(4, "little")
            + zlib.crc32(payload).to_bytes(4, "little")
            + payload
        )
        handle = self._ensure_handle()
        if self._tail_torn:
            handle.truncate(self._good_offset)
            self._tail_torn = False
        handle.seek(self._good_offset)
        handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())
        self._prev_offset = self._good_offset
        self._good_offset += len(frame)
        self.last_seq = seq
        self._pending.append(
            WalRecord(seq, [tuple(edge) for edge in edges])
        )
        return seq

    def rollback_last(self) -> None:
        """Withdraw the most recent :meth:`append` (apply failed, so the
        batch was refused and must not replay).  Only the immediately
        preceding append can be rolled back."""
        if self._prev_offset is None:
            return
        handle = self._ensure_handle()
        handle.truncate(self._prev_offset)
        handle.flush()
        os.fsync(handle.fileno())
        self._good_offset = self._prev_offset
        self._prev_offset = None
        self.last_seq -= 1
        self._pending.pop()

    def reset(self, base_seq: int) -> None:
        """Atomically replace the log with an empty one at *base_seq*
        (called after a successful compact: the flushed layout now
        carries every logged batch)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._write_fresh(int(base_seq))

    def _write_fresh(self, base_seq: int) -> None:
        header = json.dumps(
            {"format": "ads-wal", "version": _WAL_VERSION,
             "base_seq": base_seq},
            ensure_ascii=False, separators=(",", ":"),
        ).encode("utf-8")
        with atomic_output(self.path) as handle:
            handle.write(_WAL_MAGIC)
            handle.write(len(header).to_bytes(8, "little"))
            handle.write(header)
        self.base_seq = base_seq
        self.last_seq = base_seq
        self._pending = []
        self._good_offset = len(_WAL_MAGIC) + 8 + len(header)
        self._tail_torn = False
        self._prev_offset = None

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "r+b")
        return self._handle

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` sub-dict: where the log lives and how far it
        has advanced past the last flushed layout."""
        return {
            "path": str(self.path),
            "base_seq": self.base_seq,
            "last_seq": self.last_seq,
            "pending_records": len(self._pending),
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


__all__ = ["WalRecord", "WriteAheadLog"]
