"""Non-uniform node weights (Section 9).

To estimate *weighted* neighborhood sizes ``n_d(v) = sum_{d_vj <= d}
beta(j)`` with the uniform-case CV guarantees, ranks are drawn
exponentially with rate beta(j) (heavier nodes get smaller ranks, hence
higher inclusion probability).  The ADS definitions and builders are
unchanged -- only the rank assignment differs -- and HIP generalises: when
node j enters ADS(v) past threshold tau, its conditioned inclusion
probability is ``P[Exp(beta_j) < tau] = 1 - exp(-beta_j tau)``, and its
adjusted weight for the *weighted* statistic is ``beta_j`` over that.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, List

from repro._util import require
from repro.ads.base import BottomKADS
from repro.estimators.hip import bottom_k_adjusted_weights
from repro.rand.hashing import HashFamily
from repro.rand.ranks import ExponentialRanks


class WeightedBottomKADS(BottomKADS):
    """Bottom-k ADS built with Exp(beta) ranks (rank_sup = inf).

    ``hip_weights()`` returns unbiased estimates of each entry's
    *presence* (expectation 1); ``weighted_cardinality_at`` multiplies by
    beta to estimate neighborhood weight.
    """

    flavor = "bottomk-weighted"

    def __init__(self, source, k, entries, family, beta):
        super().__init__(source, k, entries, family, rank_sup=math.inf)
        self.beta = beta

    def _compute_hip_weights(self) -> List[float]:
        betas = [float(self.beta(e.node)) for e in self.entries]

        def inclusion(tau: float, index: int) -> float:
            return -math.expm1(-betas[index] * tau)

        return bottom_k_adjusted_weights(
            [e.rank for e in self.entries],
            self.k,
            inclusion_probability=inclusion,
        )

    def weighted_cardinality_at(self, d: float = math.inf) -> float:
        """HIP estimate of sum of beta(j) over nodes within distance d."""
        weights = self.hip_weights()
        cutoff = self.size_at(d)
        total = 0.0
        for entry, weight in zip(self.entries[:cutoff], weights[:cutoff]):
            total += weight * float(self.beta(entry.node))
        return total


def exponential_rank_assignment(
    family: HashFamily, beta: Callable[[Hashable], float]
) -> ExponentialRanks:
    """The Section-9 rank map: r(i) = -ln(1 - u_i) / beta(i)."""
    require(beta is not None, "beta must be provided")
    return ExponentialRanks(family, weight=beta)
