"""Graph analytics built on ADS sketches: centralities and neighborhood
functions (the applications of Sections 1 and Appendix B.1)."""

from repro.centrality.closeness import (
    all_closeness_centralities,
    closeness_centrality,
    harmonic_centrality,
    top_k_central_nodes,
)
from repro.centrality.neighborhood import (
    HyperANF,
    effective_diameter_estimate,
    graph_neighborhood_function,
    node_neighborhood_function,
)
from repro.centrality.similarity import (
    closeness_similarity,
    most_similar_nodes,
    neighborhood_jaccard,
)

__all__ = [
    "closeness_centrality",
    "harmonic_centrality",
    "all_closeness_centralities",
    "top_k_central_nodes",
    "node_neighborhood_function",
    "graph_neighborhood_function",
    "effective_diameter_estimate",
    "HyperANF",
    "neighborhood_jaccard",
    "closeness_similarity",
    "most_similar_nodes",
]
