"""Closeness-type centralities estimated from ADS sketches.

The paper's flagship application (Equation 2, Corollary 5.2): one ADS set
answers *every* C_{alpha,beta} query -- classic closeness, harmonic,
exponentially decaying, and beta-filtered variants -- each in time linear
in the sketch size, with CV at most 1/sqrt(2(k-1)).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.ads.base import BaseADS
from repro.errors import EstimatorError
from repro.estimators.statistics import harmonic_kernel
from repro.graph.digraph import Node


def closeness_centrality(
    ads: BaseADS,
    alpha: Optional[Callable[[float], float]] = None,
    beta: Optional[Callable[[Hashable], float]] = None,
    classic: bool = False,
) -> float:
    """Estimate a closeness centrality of the ADS's source.

    With ``classic=True`` returns Bavelas's classic closeness
    ``(n-1) / sum of distances`` restricted to reachable nodes (the
    reciprocal-of-mean-distance convention); otherwise returns
    C_{alpha,beta} (Equation 2) directly, with alpha=None meaning the raw
    sum of distances.
    """
    if classic:
        if alpha is not None or beta is not None:
            raise EstimatorError(
                "classic=True computes (n-1)/sum(d); alpha/beta do not apply"
            )
        total_distance = ads.centrality(alpha=None)
        reachable = ads.reachable_count() - 1.0  # exclude the source
        if total_distance <= 0.0:
            return 0.0
        return reachable / total_distance
    return ads.centrality(alpha=alpha, beta=beta)


def harmonic_centrality(ads: BaseADS) -> float:
    """Estimate sum_{j != source} 1/d_sj (Boldi-Vigna's axiom-satisfying
    centrality; the paper's alpha(x) = 1/x kernel)."""
    return ads.centrality(alpha=harmonic_kernel())


def all_closeness_centralities(
    ads_set: Dict[Node, BaseADS],
    alpha: Optional[Callable[[float], float]] = None,
    beta: Optional[Callable[[Hashable], float]] = None,
    classic: bool = False,
) -> Dict[Node, float]:
    """Apply :func:`closeness_centrality` to every node's ADS."""
    return {
        node: closeness_centrality(ads, alpha=alpha, beta=beta, classic=classic)
        for node, ads in ads_set.items()
    }


def top_k_central_nodes(
    centralities: Dict[Node, float], count: int, largest: bool = True
) -> List[Tuple[Node, float]]:
    """The *count* most (or least) central nodes, ties broken by node repr
    for determinism.

    Heap selection (``heapq.nsmallest`` over the ranking key), not a
    full sort: O(n log count) and O(count) extra memory, which matters
    when a serving index asks for the top 10 of millions of nodes.
    Output order is exactly what sorting by the same key would give.
    """
    if count <= 0:
        return []
    if largest:
        key = lambda item: (-item[1], repr(item[0]))  # noqa: E731
    else:
        key = lambda item: (item[1], repr(item[0]))  # noqa: E731
    return heapq.nsmallest(count, centralities.items(), key=key)
