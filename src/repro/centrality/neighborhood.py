"""Neighborhood functions and the ANF/hyperANF-style limited computation.

Appendix B.1: ANF [41] and hyperANF [6] are *limited DP* computations --
iteration i maintains, per node, only the MinHash sketch of N_i(v) (not
the full ADS), estimating the cardinality after every round and
aggregating over nodes to get the whole-graph neighborhood function.
The paper's point: applying HIP instead of the basic/HLL estimators gives
more accurate estimates from the *same* computation.  :class:`HyperANF`
implements exactly that: k-partition base-2 sketches (hyperANF's layout)
advanced by synchronous rounds, with both the HIP running count and the
basic estimate exposed after each round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro._util import require
from repro.ads.base import BaseADS
from repro.errors import GraphError
from repro.graph.digraph import Graph, Node
from repro.rand.hashing import HashFamily
from repro.sketches.hll import HyperLogLog


def node_neighborhood_function(ads: BaseADS) -> List[Tuple[float, float]]:
    """HIP-estimated cumulative distance distribution of one node."""
    return ads.neighborhood_function()


def graph_neighborhood_function(
    ads_set: Dict[Node, BaseADS],
) -> List[Tuple[float, float]]:
    """Whole-graph neighborhood function: estimated number of ordered
    pairs (u, v), u != v, with d_uv <= d, for each distinct distance d.

    The ANF statistic; sums per-node HIP neighborhood functions (each
    node's self-entry at distance 0 is excluded from the pair count).
    """
    jumps: Dict[float, float] = {}
    for ads in ads_set.values():
        weights = ads.hip_weights()
        for dist, weight in zip(ads.distances(), weights):
            if dist <= 0.0:
                continue
            jumps[dist] = jumps.get(dist, 0.0) + weight
    result: List[Tuple[float, float]] = []
    running = 0.0
    for d in sorted(jumps):
        running += jumps[d]
        result.append((d, running))
    return result


def effective_diameter_estimate(
    ads_set: Dict[Node, BaseADS], quantile: float = 0.9
) -> float:
    """Estimated effective diameter: the smallest distance d such that at
    least *quantile* of the (estimated) connected ordered pairs are within
    d.  The summary statistic ANF [41] popularised, computed here from
    the per-node HIP neighborhood functions."""
    require(0.0 < quantile <= 1.0, "quantile must be in (0, 1]")
    series = graph_neighborhood_function(ads_set)
    if not series:
        return 0.0
    total = series[-1][1]
    threshold = quantile * total
    for d, cumulative in series:
        if cumulative >= threshold:
            return d
    return series[-1][0]


class HyperANF:
    """Limited-DP neighborhood function with HLL sketches + HIP counts.

    Per node: a HyperLogLog sketch of N_i(v), advanced one hop per round
    (union with out-neighbors' sketches), plus a HIP running count that is
    increased by the adjusted weight of every sketch modification -- the
    accelerated estimator the paper proposes for existing ANF/hyperANF
    implementations.

    Only unweighted graphs (rounds = hops), like ANF/hyperANF themselves.
    """

    def __init__(
        self,
        graph: Graph,
        k: int = 16,
        family: Optional[HashFamily] = None,
        register_bits: int = 5,
        seed: int = 0,
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        if graph.is_weighted():
            raise GraphError("HyperANF requires an unweighted graph")
        self.graph = graph
        self.k = int(k)
        self.family = family if family is not None else HashFamily(seed)
        self.round = 0
        self.sketches: Dict[Node, HyperLogLog] = {}
        self.hip_counts: Dict[Node, float] = {}
        for v in graph.nodes():
            sketch = HyperLogLog(self.k, self.family, register_bits)
            # HIP accounting for the self-insertion.
            p = sketch.update_probability()
            if sketch.add(v) and p > 0:
                self.hip_counts[v] = 1.0 / p
            else:
                self.hip_counts[v] = 0.0
            self.sketches[v] = sketch
        self._changed = set(graph.nodes())

    # ------------------------------------------------------------------
    def advance(self) -> bool:
        """Run one synchronous round; False when converged (no sketch
        changed, i.e. round >= diameter)."""
        if not self._changed:
            return False
        self.round += 1
        previous = {
            v: self.sketches[v].copy()
            for v in self.graph.nodes()
        }
        changed = set()
        for v in self.graph.nodes():
            sketch = self.sketches[v]
            count = self.hip_counts[v]
            for u, _ in self.graph.out_neighbors(v):
                other = previous[u]
                for h in range(self.k):
                    if other.registers[h] > sketch.registers[h]:
                        # HIP: account for this register update exactly as
                        # a stream update would be (Algorithm 3 weight).
                        p = sketch.update_probability()
                        sketch.registers[h] = other.registers[h]
                        sketch.minima[h] = other.minima[h]
                        sketch.argmin[h] = other.argmin[h]
                        if p > 0:
                            count += 1.0 / p
                        changed.add(v)
            self.hip_counts[v] = count
        self._changed = changed
        return bool(changed)

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Advance until convergence (or *max_rounds*); returns rounds."""
        limit = max_rounds if max_rounds is not None else self.graph.num_nodes
        while self.round < limit and self.advance():
            pass
        return self.round

    # ------------------------------------------------------------------
    def hip_estimates(self) -> Dict[Node, float]:
        """Per-node HIP estimate of |N_round(v)|."""
        return dict(self.hip_counts)

    def basic_estimates(self) -> Dict[Node, float]:
        """Per-node HLL (bias-corrected) estimate of |N_round(v)| -- what
        plain hyperANF would report."""
        return {v: s.estimate() for v, s in self.sketches.items()}

    def total_pairs(self, estimator: str = "hip") -> float:
        """Estimated number of ordered pairs within the current radius
        (the ANF aggregate), excluding self-pairs."""
        if estimator == "hip":
            per_node = self.hip_estimates()
        elif estimator == "basic":
            per_node = self.basic_estimates()
        else:
            raise GraphError(f"unknown estimator {estimator!r}")
        return sum(per_node.values()) - self.graph.num_nodes
