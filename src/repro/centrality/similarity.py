"""Node-similarity estimation from coordinated ADSs.

The introduction lists similarity between the neighborhoods of two nodes
[11] and closeness similarity [12] among the applications that sketch
*coordination* enables: because every node's ADS samples from the same
permutation, the bottom-k MinHash sketch of N_d(u) extracted from ADS(u)
is directly comparable with the one extracted from ADS(v).

Two estimators are provided:

* :func:`neighborhood_jaccard` -- the Jaccard coefficient of the two
  d-neighborhoods (the classic MinHash application);
* :func:`closeness_similarity` -- a distance-profile similarity in the
  spirit of [12]: the all-distances Jaccard, averaged over a set of query
  distances with a decay weighting, so that nodes whose neighborhoods
  agree at *every* scale score high.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro._util import require
from repro.ads.base import BottomKADS
from repro.errors import EstimatorError


def _check_pair(a: BottomKADS, b: BottomKADS) -> None:
    if not isinstance(a, BottomKADS) or not isinstance(b, BottomKADS):
        raise EstimatorError(
            "similarity estimation needs bottom-k ADSs (the flavor whose "
            "extracted MinHash sketches are k-samples without replacement)"
        )
    if a.k != b.k:
        raise EstimatorError(f"ADSs must share k; got {a.k} and {b.k}")
    if a.family != b.family:
        raise EstimatorError(
            "similarity requires coordinated ADSs (same hash family)"
        )


def neighborhood_jaccard(a: BottomKADS, b: BottomKADS, d: float) -> float:
    """Estimate Jaccard(N_d(a.source), N_d(b.source)).

    Extracts both d-neighborhood MinHash sketches, takes the k smallest
    union ranks, and counts agreement -- unbiased because the union
    bottom-k is a uniform without-replacement sample of the union.
    """
    _check_pair(a, b)
    sketch_a = a.minhash_at(d)
    sketch_b = b.minhash_at(d)
    members_a = {node for _, node in sketch_a}
    members_b = {node for _, node in sketch_b}
    merged = {}
    for rank, node in sketch_a + sketch_b:
        merged[node] = rank
    union = sorted((rank, node) for node, rank in merged.items())[: a.k]
    if not union:
        return 0.0
    in_both = sum(
        1 for _, node in union if node in members_a and node in members_b
    )
    return in_both / len(union)


def closeness_similarity(
    a: BottomKADS,
    b: BottomKADS,
    distances: Optional[Sequence[float]] = None,
    weights: Optional[Callable[[float], float]] = None,
) -> float:
    """Distance-profile similarity of two nodes in [0, 1].

    Averages :func:`neighborhood_jaccard` over *distances* (default: the
    union of the two sketches' distinct entry distances, a natural
    multi-scale grid), weighted by ``weights(d)`` (default: uniform).
    Returns 1 for identical profiles (e.g. a node with itself).
    """
    _check_pair(a, b)
    if distances is None:
        distances = sorted(
            {e.distance for e in a.entries} | {e.distance for e in b.entries}
        )
    distances = list(distances)
    require(len(distances) > 0, "at least one query distance is required")
    total = 0.0
    norm = 0.0
    for d in distances:
        w = 1.0 if weights is None else float(weights(d))
        if w < 0:
            raise EstimatorError(f"weights must be nonnegative, got {w}")
        total += w * neighborhood_jaccard(a, b, d)
        norm += w
    if norm == 0.0:
        return 0.0
    return total / norm


def most_similar_nodes(
    ads_set,
    query: Hashable,
    d: float,
    count: int = 10,
) -> List[Tuple[Hashable, float]]:
    """Rank all other nodes by estimated d-neighborhood Jaccard with
    *query* (a sketch-space nearest-neighbor scan).

    An :class:`~repro.ads.index.AdsIndex` (anything exposing
    ``most_similar``) is swept through the batch kernel layer over the
    flat columns -- same comparator (value descending, ties by node
    repr), same floats, no per-node sketch materialisation.  A plain
    ``{label: BottomKADS}`` mapping keeps the legacy object scan.
    """
    require(count >= 1, "count must be >= 1")
    batch_scan = getattr(ads_set, "most_similar", None)
    if batch_scan is not None:
        if query not in ads_set:
            raise EstimatorError(
                f"node {query!r} has no ADS in the given set"
            )
        return batch_scan(query, count=count, d=d)
    if query not in ads_set:
        raise EstimatorError(f"node {query!r} has no ADS in the given set")
    reference = ads_set[query]
    scored = []
    for node, ads in ads_set.items():
        if node == query:
            continue
        scored.append((node, neighborhood_jaccard(reference, ads, d)))
    scored.sort(key=lambda item: (-item[1], repr(item[0])))
    return scored[:count]
