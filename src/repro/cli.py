"""Command-line interface: sketch graphs and query them from the shell.

    python -m repro sketch GRAPH.txt --k 16 --out sketches.txt
    python -m repro centrality GRAPH.txt --k 16 --top 10 --kind harmonic
    python -m repro neighborhood GRAPH.txt --node 5 --k 16
    python -m repro build-index GRAPH.txt --k 16 --out graph.adsidx
    python -m repro query graph.adsidx --top 10 --kind harmonic
    python -m repro similarity graph.adsidx --pair 0 5 --d 2
    python -m repro distance graph.adsidx --pair 0 5 --pair 3 7
    python -m repro serve --index graph.adsidx --port 8080
    python -m repro update-index graph.adsidx --graph GRAPH.txt --edges NEW.txt
    python -m repro distinct-count < one_element_per_line.txt
    python -m repro figures fig2 --k 10 --runs 100 --max-n 4000

The CLI is a thin veneer over the library; every command prints plain
text so results can be piped into standard tooling.  ``build-index`` /
``query`` / ``serve`` split sketch construction from serving: the index
is built once (on the CSR fast path) and any number of queries run
against the saved flat-array file without touching the graph again --
either ad hoc from the shell (``query``) or as a long-lived HTTP JSON
daemon (``serve``, memory-mapping the index by default so startup cost
does not scale with index size).  Graphs change: ``update-index``
absorbs an edge batch into a saved index incrementally (no rebuild),
and ``serve --graph GRAPH.txt --no-mmap`` accepts the same batches live
over ``POST /update``.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Optional

from repro.ads import AdsIndex, build_ads_set
from repro.ads.kernels import BACKEND_CHOICES
from repro.errors import ReproError
from repro.centrality import (
    all_closeness_centralities,
    top_k_central_nodes,
)
from repro.counters import HipDistinctCounter
from repro.estimators.statistics import (
    CENTRALITY_KINDS,
    centrality_kind_kwargs,
)
from repro.graph.io import read_edge_batch, read_edge_list
from repro.rand.hashing import HashFamily
from repro.sketches import HyperLogLog


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="estimator kernel for batch queries: 'numpy' (vectorised, "
        "requires the [fast] extra), 'python' (stdlib loops), or 'auto' "
        "(numpy when available; the REPRO_BACKEND env var overrides). "
        "Same estimates either way (cardinalities exactly, aggregated "
        "sums to 1e-9 relative).",
    )


def _add_kernel_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel-workers",
        default=None,
        metavar="W",
        help="fan batch queries (and update HIP recomputes) out across "
        "W cores ('auto' or a positive integer; default: auto, which "
        "honours the REPRO_KERNEL_WORKERS env var, then sizes to the "
        "machine and shard layout, staying serial for small indexes). "
        "Results are bit-identical at any worker count.",
    )


def _add_common_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (u v [weight] per line)")
    parser.add_argument("--k", type=int, default=16, help="sketch size")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument(
        "--directed",
        action="store_true",
        help="force directed interpretation of the edge list",
    )
    parser.add_argument(
        "--int-nodes",
        action="store_true",
        help="parse node tokens as integers",
    )


def _load(args) -> tuple:
    node_type = int if args.int_nodes else str
    graph = read_edge_list(
        args.graph,
        directed=True if args.directed else None,
        node_type=node_type,
    )
    family = HashFamily(args.seed)
    return graph, family


def cmd_sketch(args) -> int:
    """Build and dump every node's ADS (the ``sketch`` subcommand).

    Writes one ``node\\tentries`` line per node to ``--out`` (default:
    stdout), each entry as ``node:distance:rank``, plus a sketch-count
    summary on stderr.

    Returns:
        0 on success; unreadable graph files exit 1 via ``main``.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> main(["sketch", graph, "--int-nodes", "--k", "8",
        ...       "--out", os.path.join(d, "sketches.txt")])
        0
    """
    graph, family = _load(args)
    ads_set = build_ads_set(graph, args.k, family=family)
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for node, ads in ads_set.items():
            entries = " ".join(
                f"{e.node}:{e.distance:g}:{e.rank:.6g}" for e in ads.entries
            )
            print(f"{node}\t{entries}", file=out)
    finally:
        if args.out:
            out.close()
    sizes = [len(ads) for ads in ads_set.values()]
    print(
        f"# {len(ads_set)} sketches, mean size {sum(sizes) / len(sizes):.1f}",
        file=sys.stderr,
    )
    return 0


def _centrality_kwargs(args):
    """Map the shared --kind/--half-life options to estimator kwargs
    (an unset --kind means classic)."""
    return centrality_kind_kwargs(args.kind or "classic", args.half_life)


def cmd_centrality(args) -> int:
    """Rank nodes by estimated centrality (the ``centrality`` command).

    Builds the sketch set, evaluates the ``--kind`` centrality
    (classic/harmonic/decay/distsum) for every node, and prints the
    ``--top`` ranked ``node\\tvalue`` lines.

    Returns:
        0 on success.

    Example:
        >>> import tempfile, os
        >>> graph = os.path.join(tempfile.mkdtemp(), "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> main(["centrality", graph, "--int-nodes", "--k", "8",
        ...       "--top", "1"])  # doctest: +NORMALIZE_WHITESPACE
        1 1
        0
    """
    graph, family = _load(args)
    ads_set = build_ads_set(graph, args.k, family=family)
    values = all_closeness_centralities(ads_set, **_centrality_kwargs(args))
    for node, value in top_k_central_nodes(values, args.top):
        print(f"{node}\t{value:.6g}")
    return 0


def _parse_node(args):
    """--node as the graph's label type; None when unparseable."""
    if not args.int_nodes:
        return args.node
    try:
        return int(args.node)
    except ValueError:
        return None


def cmd_neighborhood(args) -> int:
    """One node's distance distribution (the ``neighborhood`` command).

    Prints the estimated cumulative neighborhood size per distance as
    ``distance\\testimate`` lines for ``--node``.

    Returns:
        0 on success, 1 for an unknown or unparseable node.

    Example:
        >>> import tempfile, os
        >>> graph = os.path.join(tempfile.mkdtemp(), "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> main(["neighborhood", graph, "--int-nodes", "--k", "8",
        ...       "--node", "1"])  # doctest: +NORMALIZE_WHITESPACE
        0 1.00
        1 3.00
        0
    """
    graph, family = _load(args)
    node = _parse_node(args)
    if node is None:
        print(f"--int-nodes expects an integer node, got {args.node!r}",
              file=sys.stderr)
        return 1
    ads_set = build_ads_set(graph, args.k, family=family)
    if node not in ads_set:
        print(f"node {node!r} not in graph", file=sys.stderr)
        return 1
    for distance, estimate in ads_set[node].neighborhood_function():
        print(f"{distance:g}\t{estimate:.2f}")
    return 0


def cmd_build_index(args) -> int:
    """Build and persist the flat-array index (``build-index``).

    Runs the CSR build (optionally sharded across ``--workers``
    processes) and saves a single-file index, or a sharded directory
    layout with ``--shards``.  The saved artifact is what ``query`` and
    ``serve`` consume.

    Returns:
        0 on success, 1 for build/save failures, 2 for invalid
        ``--workers``/``--shards``.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> main(["build-index", graph, "--int-nodes", "--k", "8",
        ...       "--out", os.path.join(d, "g.adsidx")])
        0
    """
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    try:
        graph, family = _load(args)
        index = AdsIndex.build(
            graph.to_csr(), args.k, family=family, flavor=args.flavor,
            method=args.method, direction=args.direction,
            workers=args.workers, backend=args.backend,
            kernel_workers=args.kernel_workers,
        )
        index.save(args.out, shards=args.shards)
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    layout = (
        f"{args.shards}-shard layout" if args.shards is not None
        else "single file"
    )
    print(
        f"# indexed {index.num_nodes} nodes, {index.num_entries} entries "
        f"(flavor={index.flavor}, k={index.k}, workers={args.workers}, "
        f"{layout}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def cmd_query(args) -> int:
    """Serve estimates from a saved index (the ``query`` subcommand).

    Without ``--node``: the ``--top`` centrality ranking, an all-nodes
    ``--cardinality D`` sweep, or the whole-graph ``--neighborhood``
    series.  With ``--node``: that node's neighborhood function,
    centrality (with ``--kind``), or cardinality (with
    ``--cardinality``).

    Returns:
        0 on success, 1 for a missing/corrupt index or unknown node.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> index = os.path.join(d, "g.adsidx")
        >>> main(["build-index", graph, "--int-nodes", "--k", "8",
        ...       "--out", index])
        0
        >>> main(["query", index, "--node", "1",
        ...       "--cardinality", "1"])  # doctest: +NORMALIZE_WHITESPACE
        1 3.00
        0
    """
    try:
        index = AdsIndex.load(
            args.index, backend=args.backend,
            kernel_workers=args.kernel_workers,
        )
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.node is not None:
        node = _parse_node(args)
        if node is None:
            print(f"--int-nodes expects an integer node, got {args.node!r}",
                  file=sys.stderr)
            return 1
        if node not in index:
            # The index stores the labels, so coerce to the build's
            # label type (either direction) instead of demanding
            # --int-nodes re-match it.
            if isinstance(node, str):
                try:
                    coerced = int(node)
                except ValueError:
                    coerced = None
            else:
                coerced = str(node)
            if coerced is not None and coerced in index:
                node = coerced
        if node not in index:
            print(f"node {node!r} not in index", file=sys.stderr)
            return 1
        if args.cardinality is not None:
            print(f"{node}\t{index.node_cardinality_at(node, args.cardinality):.2f}")
            return 0
        if args.kind is not None and not args.neighborhood:
            # An explicit --kind with --node asks for that node's
            # centrality, not its distance distribution.
            value = index.node_closeness_centrality(
                node, **_centrality_kwargs(args)
            )
            print(f"{node}\t{value:.6g}")
            return 0
        for distance, estimate in index.node_neighborhood_function(node):
            print(f"{distance:g}\t{estimate:.2f}")
        return 0
    if args.cardinality is not None:
        for node, estimate in index.cardinality_at(args.cardinality).items():
            print(f"{node}\t{estimate:.2f}")
        return 0
    if args.neighborhood:
        for distance, estimate in index.neighborhood_function():
            print(f"{distance:g}\t{estimate:.2f}")
        return 0
    for node, value in index.top_central(args.top, **_centrality_kwargs(args)):
        print(f"{node}\t{value:.6g}")
    return 0


def _resolve_index_node(index, token, int_nodes: bool):
    """A CLI node token as an index label; None when it misses.

    Mirrors ``cmd_query``: honour --int-nodes first, then retry the
    other label type so a str token finds an int-labeled index (and
    vice versa) without flag gymnastics.
    """
    node = token
    if int_nodes:
        try:
            node = int(token)
        except ValueError:
            return None
    if node in index:
        return node
    if isinstance(node, str):
        try:
            coerced = int(node)
        except ValueError:
            coerced = None
    else:
        coerced = str(node)
    if coerced is not None and coerced in index:
        return coerced
    return None


def cmd_similarity(args) -> int:
    """Pairwise similarity from a saved index (``similarity``).

    With ``--pair U V`` (repeatable): one ``u\\tv\\tvalue`` line per
    pair under ``--metric`` -- ``jaccard`` (d-neighborhood MinHash
    Jaccard at ``--d``, default all-reachable) or ``closeness``
    (distance-profile similarity).  With ``--node X``: the ``--count``
    nodes most similar to X as ``node\\tvalue`` lines.  Either mode
    needs a bottom-k index.

    Returns:
        0 on success, 1 for load failures, unknown nodes, or a
        non-bottom-k index, 2 for invalid flag combinations.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> index = os.path.join(d, "g.adsidx")
        >>> main(["build-index", graph, "--int-nodes", "--k", "8",
        ...       "--out", index])
        0
        >>> main(["similarity", index, "--pair", "0", "2",
        ...       "--d", "1"])  # doctest: +NORMALIZE_WHITESPACE
        0 2 0.333333
        0
        >>> main(["similarity", index, "--node", "1",
        ...       "--count", "2"])  # doctest: +NORMALIZE_WHITESPACE
        0 1
        2 1
        0
    """
    if (args.pair is None) == (args.node is None):
        print("similarity needs exactly one of --pair and --node",
              file=sys.stderr)
        return 2
    if args.count < 1:
        print(f"--count must be >= 1, got {args.count}", file=sys.stderr)
        return 2
    if args.metric == "closeness" and args.d is not None:
        print("--d only applies to --metric jaccard", file=sys.stderr)
        return 2
    try:
        index = AdsIndex.load(
            args.index, backend=args.backend,
            kernel_workers=args.kernel_workers,
        )
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    d = args.d if args.d is not None else math.inf
    try:
        if args.node is not None:
            node = _resolve_index_node(index, args.node, args.int_nodes)
            if node is None:
                print(f"node {args.node!r} not in index", file=sys.stderr)
                return 1
            for label, value in index.most_similar(
                node, count=args.count, d=d
            ):
                print(f"{label}\t{value:.6g}")
            return 0
        pairs = []
        for u_token, v_token in args.pair:
            u = _resolve_index_node(index, u_token, args.int_nodes)
            v = _resolve_index_node(index, v_token, args.int_nodes)
            if u is None or v is None:
                missing = u_token if u is None else v_token
                print(f"node {missing!r} not in index", file=sys.stderr)
                return 1
            pairs.append((u, v))
        if args.metric == "closeness":
            values = index.pairs_closeness_similarity(pairs)
        else:
            values = index.pairs_neighborhood_jaccard(pairs, d)
    except ReproError as error:
        # Typically a non-bottom-k flavor refusing similarity queries.
        print(str(error), file=sys.stderr)
        return 1
    for (u, v), value in zip(pairs, values):
        print(f"{u}\t{v}\t{value:.6g}")
    return 0


def cmd_distance(args) -> int:
    """Distance-oracle estimates for node pairs (``distance``).

    Prints one ``u\\tv\\testimate`` line per ``--pair``: the sketch
    2-hop-cover upper bound ``min_w d(u,w) + d(v,w)`` over the pair's
    common ADS entries (``inf`` when the sketches share none).  Needs
    a bottom-k index.

    Returns:
        0 on success, 1 for load failures, unknown nodes, or a
        non-bottom-k index, 2 for invalid flags.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> index = os.path.join(d, "g.adsidx")
        >>> main(["build-index", graph, "--int-nodes", "--k", "8",
        ...       "--out", index])
        0
        >>> main(["distance", index, "--pair", "0", "2",
        ...       "--pair", "1", "1"])  # doctest: +NORMALIZE_WHITESPACE
        0 2 2
        1 1 0
        0
    """
    try:
        index = AdsIndex.load(
            args.index, backend=args.backend,
            kernel_workers=args.kernel_workers,
        )
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    pairs = []
    for u_token, v_token in args.pair:
        u = _resolve_index_node(index, u_token, args.int_nodes)
        v = _resolve_index_node(index, v_token, args.int_nodes)
        if u is None or v is None:
            missing = u_token if u is None else v_token
            print(f"node {missing!r} not in index", file=sys.stderr)
            return 1
        pairs.append((u, v))
    try:
        values = index.pairs_distance_estimate(pairs)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 1
    for (u, v), value in zip(pairs, values):
        print(f"{u}\t{v}\t{value:.6g}")
    return 0


def _index_node_type(index) -> type:
    """int when every index label is an int, str otherwise.

    Saved indexes carry int/str labels only; graph and edge-batch files
    for ``update-index``/``serve --graph`` are parsed to match
    (:meth:`AdsIndex.label_type`), so the loaded labels line up with
    the index's without a --int-nodes flag.
    """
    return int if index.label_type() is int else str


def cmd_update_index(args) -> int:
    """Apply an edge batch to a saved index (``update-index``).

    Loads the index and its graph, applies the ``--edges`` batch by
    incremental re-propagation (no rebuild; only touched sketch slices
    are rewritten), and flushes the result -- in place by default,
    rewriting only the dirty shards of a sharded layout.  In-place
    updates also rewrite ``--graph`` (node order pinned) so index and
    edge list stay in lockstep; a stale graph file would make the next
    update silently diverge from a rebuild.

    Returns:
        0 on success, 1 for load/apply/save failures.

    Example:
        >>> import tempfile, os
        >>> d = tempfile.mkdtemp()
        >>> graph = os.path.join(d, "g.txt")
        >>> with open(graph, "w") as fh:
        ...     _ = fh.write("0 1\\n1 2\\n")
        >>> batch = os.path.join(d, "new.txt")
        >>> with open(batch, "w") as fh:
        ...     _ = fh.write("0 3\\n")
        >>> index = os.path.join(d, "g.adsidx")
        >>> main(["build-index", graph, "--int-nodes", "--k", "8",
        ...       "--out", index])
        0
        >>> main(["update-index", index, "--graph", graph,
        ...       "--edges", batch])
        0
        >>> main(["query", index, "--node", "3",
        ...       "--cardinality", "1"])  # doctest: +NORMALIZE_WHITESPACE
        3 2.00
        0
    """
    try:
        index = AdsIndex.load(
            args.index, kernel_workers=args.kernel_workers
        )
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    node_type = _index_node_type(index)
    try:
        graph = read_edge_list(
            args.graph,
            directed=True if args.directed else None,
            node_type=node_type,
        ).to_csr()
        edges = read_edge_batch(args.edges, node_type=node_type)
        result = index.apply_edges(graph, edges)
        out = args.out or args.index
        info = index.compact(out, shards=args.shards)
        # When updating the index in place, the graph file must follow
        # (default --write-graph): a stale edge list would make the
        # *next* update propagate over a graph missing this batch's
        # edges and silently diverge from a rebuild.  --out leaves the
        # original index/graph pair intact, so there the default is to
        # not touch the graph file.
        write_graph = (
            args.write_graph if args.write_graph is not None
            else args.out is None
        )
        if write_graph:
            # The index's entry ids are positional, so the node order
            # must be pinned (all_nodes), not merely the edge set.
            from repro.graph.io import write_edge_list

            write_edge_list(graph, args.graph, all_nodes=True)
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    layout = info["layout"]
    if layout == "sharded" and not info["full_rewrite"]:
        layout = (
            f"sharded, rewrote {len(info['rewritten_shards'])}/"
            f"{info['total_shards']} shards"
        )
    print(
        f"# applied {result.applied_arcs} arcs "
        f"({result.dirty_nodes} sketches rewritten, "
        f"{result.new_nodes} new nodes) -> {out} ({layout})",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args) -> int:
    """Serve a saved index over HTTP (the ``serve`` subcommand).

    Loads ``--index`` (memory-mapped by default, so a multi-GB index
    starts serving in milliseconds) and blocks answering the JSON API
    until interrupted.  See :mod:`repro.serve.server` for the endpoint
    reference.  ``--graph GRAPH.txt`` (with ``--no-mmap``) attaches the
    index's graph and enables live edge updates via ``POST /update`` /
    ``POST /compact``.  ``--async-loop`` swaps the threaded transport
    for the asyncio pipelined one (same API, one event loop;
    ``--coalesce-window`` micro-batches concurrent single-node
    queries), and ``--wire json`` pins responses to JSON even for
    clients that ask for the binary codec.

    Returns:
        0 after a clean shutdown (Ctrl-C), 1 when the index cannot be
        loaded, 2 for invalid parameters.

    Example:
        >>> from repro.cli import main
        >>> main(["serve", "--index", "/nonexistent.adsidx"])
        1
    """
    from repro.serve import AdsServer, AsyncAdsServer

    if args.cache_size < 0:
        print(f"--cache-size must be >= 0, got {args.cache_size}",
              file=sys.stderr)
        return 2
    if args.threads < 1:
        print(f"--threads must be >= 1, got {args.threads}", file=sys.stderr)
        return 2
    if args.max_in_flight < 1:
        print(f"--max-in-flight must be >= 1, got {args.max_in_flight}",
              file=sys.stderr)
        return 2
    if args.coalesce_window < 0:
        print(f"--coalesce-window must be >= 0, got {args.coalesce_window}",
              file=sys.stderr)
        return 2
    if args.graph is not None and args.mmap:
        # Updates splice the index columns in place; a memory-mapped
        # load is read-only by construction.
        print("--graph (live updates) requires --no-mmap", file=sys.stderr)
        return 2
    if args.wal_dir is not None and args.graph is None:
        print("--wal-dir (durable updates) requires --graph",
              file=sys.stderr)
        return 2
    node_range = None
    if args.cluster is not None:
        try:
            node_range = _parse_node_range(args.cluster)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    index_path = Path(args.index)
    if not index_path.exists():
        # An unloadable index is a load failure (1), matching `query`;
        # exit 2 is reserved for invalid flag values.
        print(f"index {args.index!r} does not exist", file=sys.stderr)
        return 1
    try:
        index = AdsIndex.load(
            index_path, mmap=args.mmap, backend=args.backend,
            kernel_workers=args.kernel_workers,
        )
        graph = None
        if args.graph is not None:
            graph = read_edge_list(
                args.graph,
                directed=True if args.directed else None,
                node_type=_index_node_type(index),
            ).to_csr()
        if args.async_loop:
            server = AsyncAdsServer(
                index, host=args.host, port=args.port,
                cache_size=args.cache_size,
                max_in_flight=args.max_in_flight,
                coalesce_window=args.coalesce_window,
                wire_mode=args.wire,
                graph=graph, index_path=index_path, graph_path=args.graph,
                node_range=node_range, wal_dir=args.wal_dir,
            )
            transport = (
                f"asyncio transport (max_in_flight={args.max_in_flight}, "
                f"coalesce_window={args.coalesce_window})"
            )
        else:
            server = AdsServer(
                index, host=args.host, port=args.port,
                cache_size=args.cache_size, threads=args.threads,
                wire_mode=args.wire,
                graph=graph, index_path=index_path, graph_path=args.graph,
                node_range=node_range, wal_dir=args.wal_dir,
            )
            transport = f"{args.threads} threads"
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    mode = "mmap" if index.mmap_backed else "eager"
    writable = ", updates enabled" if graph is not None else ""
    if server.wal is not None:
        writable += (
            f", wal={server.wal.directory}"
            + (f" (replayed {server.wal_replayed} batch"
               f"{'es' if server.wal_replayed != 1 else ''})"
               if server.wal_replayed else "")
        )
    if node_range is not None:
        start, stop = node_range
        writable += (
            f", shard worker for nodes [{start}, "
            f"{index.num_nodes if stop is None else stop})"
        )
    print(
        f"# serving {index.num_nodes} nodes ({index.num_entries} entries, "
        f"flavor={index.flavor}, k={index.k}, {mode} load, "
        f"{index.backend} kernel, {index.kernel_workers} kernel "
        f"worker{'s' if index.kernel_workers != 1 else ''}) on {server.url} "
        f"with {transport}, cache={args.cache_size}, "
        f"wire={args.wire}{writable}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _parse_node_range(spec: str):
    """``"START:STOP"`` (empty STOP = open-ended) -> ``(start, stop)``."""
    head, sep, tail = spec.partition(":")
    if not sep or not head:
        raise ValueError(
            f"--cluster expects START:STOP (STOP may be empty for "
            f"open-ended), got {spec!r}"
        )
    try:
        start = int(head)
        stop = int(tail) if tail else None
    except ValueError:
        raise ValueError(
            f"--cluster bounds must be integers, got {spec!r}"
        ) from None
    return start, stop


def _parse_group(spec: str):
    """One ``--group`` value -> ``(range_or_None, [url, ...])``.

    ``"http://h1:8080,http://h2:8080"`` lists one shard group's
    replicas; prefix ``"START:STOP="`` pins its node range explicitly
    (otherwise every group must be unprefixed and the router splits
    ``[0, n)`` into balanced contiguous ranges, the same tiling
    ``shard_ranges`` gives the sharded save layout).
    """
    node_range = None
    head, sep, tail = spec.partition("=")
    if sep and "://" not in head:
        node_range = _parse_node_range(head)
        spec = tail
    urls = [url.strip() for url in spec.split(",") if url.strip()]
    if not urls:
        raise ValueError(f"--group needs at least one URL, got {spec!r}")
    return node_range, urls


def cmd_route(args) -> int:
    """Front a sharded worker cluster (the ``route`` subcommand).

    Loads ``--index`` (memory-mapped: only the node labels are needed,
    sketches stay on disk) and serves the full single-server API by
    fanning out to the ``repro serve --cluster`` workers named by the
    ``--group`` flags -- one flag per shard group, each listing that
    range's replicas.  Queries merge exactly (concatenation / k-way
    rank merge / seeded ANF chaining), replicas fail over on transport
    faults, and whole-shard outages shed with a structured 503 naming
    the unavailable node range.

    Returns:
        0 after a clean shutdown (Ctrl-C), 1 when the index cannot be
        loaded, 2 for invalid parameters.

    Example:
        >>> from repro.cli import main
        >>> main(["route", "--index", "/nonexistent.adsidx",
        ...       "--group", "http://127.0.0.1:9"])
        1
    """
    from repro.ads.index import shard_ranges
    from repro.serve import RouterServer

    if args.cache_size < 0:
        print(f"--cache-size must be >= 0, got {args.cache_size}",
              file=sys.stderr)
        return 2
    if args.threads < 1:
        print(f"--threads must be >= 1, got {args.threads}",
              file=sys.stderr)
        return 2
    if args.rpc_timeout <= 0:
        print(f"--rpc-timeout must be > 0, got {args.rpc_timeout}",
              file=sys.stderr)
        return 2
    if args.resync_interval < 0:
        print(f"--resync-interval must be >= 0, got "
              f"{args.resync_interval}", file=sys.stderr)
        return 2
    try:
        parsed = [_parse_group(spec) for spec in args.group]
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    pinned = sum(1 for node_range, _ in parsed if node_range is not None)
    if pinned not in (0, len(parsed)):
        print("--group ranges must be given for all groups or none",
              file=sys.stderr)
        return 2
    index_path = Path(args.index)
    if not index_path.exists():
        print(f"index {args.index!r} does not exist", file=sys.stderr)
        return 1
    try:
        index = AdsIndex.load(index_path, mmap=True)
        labels = index.nodes()
        if pinned:
            groups = [(node_range, urls) for node_range, urls in parsed]
        else:
            ranges = shard_ranges(len(labels), len(parsed))
            groups = [
                (node_range, urls)
                for node_range, (_, urls) in zip(ranges, parsed)
            ]
        router = RouterServer(
            labels, groups,
            host=args.host, port=args.port,
            cache_size=args.cache_size, threads=args.threads,
            wire_mode=args.wire,
            rpc_timeout=args.rpc_timeout, rpc_wire=args.rpc_wire,
            probe_interval=args.probe_interval,
            writable=args.writable,
            validate_topology=args.validate_topology,
            resync_interval=args.resync_interval,
        )
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    replicas = sum(len(urls) for _, urls in groups)
    writable = ", updates enabled" if args.writable else ""
    if args.resync_interval > 0:
        writable += f", resync every {args.resync_interval}s"
    print(
        f"# routing {len(labels)} nodes over {len(groups)} shard "
        f"group{'s' if len(groups) != 1 else ''} ({replicas} "
        f"replica{'s' if replicas != 1 else ''}) on {router.url} with "
        f"{args.threads} threads, rpc={args.rpc_wire}/"
        f"{args.rpc_timeout}s, probes every {args.probe_interval}s, "
        f"cache={args.cache_size}{writable}",
        file=sys.stderr,
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    finally:
        router.close()
    return 0


def cmd_distinct_count(args) -> int:
    """HIP + HLL distinct count of a stream (``distinct-count``).

    Reads newline-separated elements from ``--input`` (default: stdin)
    and prints both the HIP estimate and the raw HyperLogLog estimate.

    Returns:
        0 on success.

    Example:
        >>> import tempfile, os
        >>> stream = os.path.join(tempfile.mkdtemp(), "els.txt")
        >>> with open(stream, "w") as fh:
        ...     _ = fh.write("a\\nb\\na\\nc\\n")
        >>> main(["distinct-count", "--input", stream,
        ...       "--k", "16"])  # doctest: +NORMALIZE_WHITESPACE
        hip 3.1
        hll 3.3
        0
    """
    counter = HipDistinctCounter(
        HyperLogLog(args.k, HashFamily(args.seed), args.register_bits)
    )
    stream = args.input if args.input else sys.stdin
    handle = open(stream) if isinstance(stream, str) else stream
    try:
        for line in handle:
            element = line.strip()
            if element:
                counter.add(element)
    finally:
        if isinstance(stream, str):
            handle.close()
    print(f"hip\t{counter.estimate():.1f}")
    print(f"hll\t{counter.sketch.estimate():.1f}")
    return 0


def cmd_figures(args) -> int:
    """Regenerate a paper figure panel (the ``figures`` subcommand).

    Runs the fig2 (HIP vs basic estimator NRMSE) or fig3 (distinct
    counting) simulation harness at the requested scale and prints the
    rendered series table.  The harness is a NumPy simulation, so this
    command needs the ``[fast]`` extra (everything else in the CLI
    falls back to pure Python without it).

    Returns:
        0 on success, 1 when NumPy is not installed.

    Example (needs NumPy, hence skipped in the no-NumPy doctest runs;
    ``tests/test_cli.py::TestFigures`` executes it when available):
        >>> from repro.cli import main
        >>> main(["figures", "fig2", "--k", "4", "--runs", "2",
        ...       "--max-n", "40"])  # doctest: +SKIP
        fig2 k=4 runs=2 max_n=40...
        0
    """
    try:
        from repro.eval.fig2 import Fig2Config, run_figure2
        from repro.eval.fig3 import Fig3Config, run_figure3
        from repro.eval.reporting import render_table
    except ImportError as error:
        print(
            "the figures harness needs NumPy "
            f"(pip install adsketch[fast]): {error}",
            file=sys.stderr,
        )
        return 1

    if args.figure == "fig2":
        result = run_figure2(
            Fig2Config(k=args.k, runs=args.runs, max_n=args.max_n)
        )
    else:
        result = run_figure3(
            Fig3Config(k=args.k, runs=args.runs, max_n=args.max_n)
        )
    print(
        render_table(
            f"{args.figure} k={args.k} runs={args.runs} max_n={args.max_n}",
            "size",
            result.checkpoints,
            result.nrmse,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-Distances Sketches with HIP estimators (CLI)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sketch", help="build and dump the ADS of every node")
    _add_common_graph_args(p)
    p.add_argument("--out", help="output file (default: stdout)")
    p.set_defaults(func=cmd_sketch)

    p = sub.add_parser("centrality", help="rank nodes by estimated centrality")
    _add_common_graph_args(p)
    p.add_argument(
        "--kind",
        choices=list(CENTRALITY_KINDS),
        default="classic",
    )
    p.add_argument("--half-life", type=float, default=1.0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_centrality)

    p = sub.add_parser(
        "neighborhood", help="estimated distance distribution of one node"
    )
    _add_common_graph_args(p)
    p.add_argument("--node", required=True)
    p.set_defaults(func=cmd_neighborhood)

    p = sub.add_parser(
        "build-index",
        help="build the flat-array ADS index of every node and save it",
    )
    _add_common_graph_args(p)
    p.add_argument(
        "--flavor",
        choices=["bottomk", "kmins", "kpartition"],
        default="bottomk",
    )
    p.add_argument(
        "--method",
        choices=["auto", "pruned_dijkstra", "dp"],
        default="auto",
    )
    p.add_argument(
        "--direction", choices=["forward", "backward"], default="forward"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded parallel build (default 1; "
        "the result is bit-identical at any worker count)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="save a sharded on-disk layout: --out becomes a directory of "
        "M shard files plus a manifest (default: one flat file)",
    )
    _add_backend_arg(p)
    _add_kernel_workers_arg(p)
    p.add_argument("--out", required=True, help="index output file")
    p.set_defaults(func=cmd_build_index)

    p = sub.add_parser(
        "query", help="serve estimates from a saved ADS index"
    )
    p.add_argument(
        "index",
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json)",
    )
    p.add_argument(
        "--kind",
        choices=list(CENTRALITY_KINDS),
        default=None,
        help="centrality kind for the top-central query (default: "
        "classic), or for one node's centrality with --node",
    )
    p.add_argument("--half-life", type=float, default=1.0)
    p.add_argument("--top", type=int, default=10)
    p.add_argument(
        "--node",
        help="restrict to one node (its neighborhood function by "
        "default; its centrality with --kind; its cardinality with "
        "--cardinality)",
    )
    p.add_argument(
        "--cardinality",
        type=float,
        default=None,
        metavar="D",
        help="neighborhood-size estimate at distance D (all nodes, or "
        "--node's)",
    )
    p.add_argument(
        "--neighborhood",
        action="store_true",
        help="whole-graph neighborhood function (or --node's without it)",
    )
    p.add_argument(
        "--int-nodes", action="store_true", help="parse --node as an integer"
    )
    _add_backend_arg(p)
    _add_kernel_workers_arg(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "similarity",
        help="pairwise similarity (or nearest neighbors) from a saved "
        "bottom-k index",
    )
    p.add_argument(
        "index",
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json); must be bottom-k flavor",
    )
    p.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("U", "V"),
        help="a node pair to score; repeat for a batch",
    )
    p.add_argument(
        "--node",
        help="rank the nodes most similar to this one instead of "
        "scoring pairs",
    )
    p.add_argument(
        "--count", type=int, default=10,
        help="result size for --node mode",
    )
    p.add_argument(
        "--metric",
        choices=["jaccard", "closeness"],
        default="jaccard",
        help="jaccard: d-neighborhood MinHash Jaccard; closeness: "
        "distance-profile similarity over the pair's distance grid",
    )
    p.add_argument(
        "--d", type=float, default=None, metavar="D",
        help="neighborhood radius for the jaccard metric (default: "
        "all reachable)",
    )
    p.add_argument(
        "--int-nodes", action="store_true",
        help="parse node tokens as integers",
    )
    _add_backend_arg(p)
    _add_kernel_workers_arg(p)
    p.set_defaults(func=cmd_similarity)

    p = sub.add_parser(
        "distance",
        help="sketch distance-oracle estimates for node pairs from a "
        "saved bottom-k index",
    )
    p.add_argument(
        "index",
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json); must be bottom-k flavor",
    )
    p.add_argument(
        "--pair",
        nargs=2,
        action="append",
        required=True,
        metavar=("U", "V"),
        help="a node pair to estimate; repeat for a batch",
    )
    p.add_argument(
        "--int-nodes", action="store_true",
        help="parse node tokens as integers",
    )
    _add_backend_arg(p)
    _add_kernel_workers_arg(p)
    p.set_defaults(func=cmd_distance)

    p = sub.add_parser(
        "serve",
        help="serve a saved ADS index over an HTTP JSON API",
    )
    p.add_argument(
        "--index",
        required=True,
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks a free port)",
    )
    p.add_argument(
        "--mmap",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memory-map the index columns (zero-copy, lazy per-shard "
        "paging) instead of reading them eagerly",
    )
    p.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU capacity for whole-graph query results (0 disables)",
    )
    p.add_argument(
        "--threads", type=int, default=8,
        help="worker threads handling requests (threaded transport)",
    )
    p.add_argument(
        "--async-loop",
        action="store_true",
        help="serve on the asyncio pipelined transport instead of the "
        "worker-thread pool (same API; higher single-query throughput)",
    )
    p.add_argument(
        "--wire",
        choices=("auto", "json"),
        default="auto",
        help="response codec policy: 'auto' answers the compact binary "
        "codec to clients that send Accept: application/x-repro-wire, "
        "'json' pins every response to JSON",
    )
    p.add_argument(
        "--max-in-flight", type=int, default=256,
        help="async transport: bound on concurrently dispatching "
        "requests before 503 load shedding",
    )
    p.add_argument(
        "--coalesce-window", type=float, default=0.0,
        help="async transport: seconds to micro-batch concurrent "
        "single-node cardinality queries into one kernel call "
        "(0 disables)",
    )
    p.add_argument(
        "--graph",
        default=None,
        help="edge-list file of the index's graph; enables POST /update "
        "live edge insertions (requires --no-mmap)",
    )
    p.add_argument(
        "--directed",
        action="store_true",
        help="force directed interpretation of --graph",
    )
    p.add_argument(
        "--cluster",
        default=None,
        metavar="START:STOP",
        help="serve as a shard worker owning global node ids "
        "[START, STOP) (empty STOP = open-ended); sweeps cover only "
        "this range so a `repro route` router can concatenate shards "
        "exactly",
    )
    p.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="write each POST /update batch to a checksummed "
        "write-ahead log in DIR before applying it, and replay any "
        "pending batches on startup (crash recovery; requires "
        "--graph, truncated on /compact)",
    )
    _add_backend_arg(p)
    _add_kernel_workers_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "route",
        help="front sharded `serve --cluster` workers with a fan-out "
        "router serving the identical single-server API",
    )
    p.add_argument(
        "--index",
        required=True,
        help="index file or sharded layout the workers serve (only "
        "node labels are read; sketches stay on disk)",
    )
    p.add_argument(
        "--group",
        action="append",
        required=True,
        metavar="[START:STOP=]URL[,URL...]",
        help="one shard group: that range's replica URLs, "
        "comma-separated; repeat per group in shard order.  Without "
        "START:STOP= prefixes the node-id space is split into "
        "balanced contiguous ranges (give the same ranges to the "
        "workers via serve --cluster)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks a free port)",
    )
    p.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU capacity for merged whole-graph results (0 disables)",
    )
    p.add_argument(
        "--threads", type=int, default=8,
        help="router worker threads handling client requests",
    )
    p.add_argument(
        "--wire",
        choices=("auto", "json"),
        default="auto",
        help="client-facing codec policy (same semantics as serve)",
    )
    p.add_argument(
        "--rpc-wire",
        choices=("binary", "json"),
        default="binary",
        help="worker RPC codec; both round-trip floats exactly",
    )
    p.add_argument(
        "--rpc-timeout", type=float, default=10.0,
        help="per-worker RPC socket timeout in seconds (bounds how "
        "long a hung worker can stall a query before failover)",
    )
    p.add_argument(
        "--probe-interval", type=float, default=5.0,
        help="seconds between background /healthz probes of every "
        "replica (0 disables; per-RPC outcomes still update health)",
    )
    p.add_argument(
        "--writable",
        action="store_true",
        help="accept POST /update and /compact, fanning each batch to "
        "every replica (workers must run with --graph)",
    )
    p.add_argument(
        "--validate-topology",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="probe each worker's actual node range and labels digest "
        "at startup and refuse to route over mis-ranged or mismatched "
        "workers",
    )
    p.add_argument(
        "--resync-interval", type=float, default=15.0,
        help="seconds between automatic resync sweeps that rebuild "
        "stale replicas from a healthy peer and re-admit them after a "
        "digest check (0 disables)",
    )
    p.set_defaults(func=cmd_route)

    p = sub.add_parser(
        "update-index",
        help="apply an edge batch to a saved ADS index incrementally",
    )
    p.add_argument(
        "index",
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json)",
    )
    p.add_argument(
        "--graph",
        required=True,
        help="edge-list file of the graph the index was built from "
        "(node labels must match the index)",
    )
    p.add_argument(
        "--edges",
        required=True,
        help="edge-batch file to insert (u v [weight] per line)",
    )
    p.add_argument(
        "--directed",
        action="store_true",
        help="force directed interpretation of --graph",
    )
    p.add_argument(
        "--out",
        default=None,
        help="destination index (default: update INDEX in place, "
        "rewriting only dirty shards of a sharded layout)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="write a fresh M-shard layout when --out is a new path",
    )
    p.add_argument(
        "--write-graph",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="rewrite --graph with the inserted edges, keeping the "
        "edge-list file in lockstep with the index (default: on when "
        "updating INDEX in place, off with --out)",
    )
    _add_kernel_workers_arg(p)
    p.set_defaults(func=cmd_update_index)

    p = sub.add_parser(
        "distinct-count",
        help="HIP + HLL distinct count of newline-separated elements",
    )
    p.add_argument("--k", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--register-bits", type=int, default=5)
    p.add_argument("--input", help="file to read (default: stdin)")
    p.set_defaults(func=cmd_distinct_count)

    p = sub.add_parser("figures", help="regenerate a paper figure panel")
    p.add_argument("figure", choices=["fig2", "fig3"])
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--max-n", type=int, default=10_000)
    p.set_defaults(func=cmd_figures)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        # Commands handle their own expected failures; this guard turns
        # anything that escapes (unreadable graph file, bad parameters)
        # into a clean non-zero exit instead of a traceback.
        print(str(error), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
