"""Command-line interface: sketch graphs and query them from the shell.

    python -m repro sketch GRAPH.txt --k 16 --out sketches.txt
    python -m repro centrality GRAPH.txt --k 16 --top 10 --kind harmonic
    python -m repro neighborhood GRAPH.txt --node 5 --k 16
    python -m repro build-index GRAPH.txt --k 16 --out graph.adsidx
    python -m repro query graph.adsidx --top 10 --kind harmonic
    python -m repro distinct-count < one_element_per_line.txt
    python -m repro figures fig2 --k 10 --runs 100 --max-n 4000

The CLI is a thin veneer over the library; every command prints plain
text so results can be piped into standard tooling.  ``build-index`` /
``query`` split sketch construction from serving: the index is built once
(on the CSR fast path) and any number of queries run against the saved
flat-array file without touching the graph again.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ads import AdsIndex, build_ads_set
from repro.errors import ReproError
from repro.centrality import (
    all_closeness_centralities,
    top_k_central_nodes,
)
from repro.counters import HipDistinctCounter
from repro.estimators.statistics import (
    exponential_decay_kernel,
    harmonic_kernel,
)
from repro.graph.io import read_edge_list
from repro.rand.hashing import HashFamily
from repro.sketches import HyperLogLog


def _add_common_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file (u v [weight] per line)")
    parser.add_argument("--k", type=int, default=16, help="sketch size")
    parser.add_argument("--seed", type=int, default=0, help="hash seed")
    parser.add_argument(
        "--directed",
        action="store_true",
        help="force directed interpretation of the edge list",
    )
    parser.add_argument(
        "--int-nodes",
        action="store_true",
        help="parse node tokens as integers",
    )


def _load(args) -> tuple:
    node_type = int if args.int_nodes else str
    graph = read_edge_list(
        args.graph,
        directed=True if args.directed else None,
        node_type=node_type,
    )
    family = HashFamily(args.seed)
    return graph, family


def cmd_sketch(args) -> int:
    graph, family = _load(args)
    ads_set = build_ads_set(graph, args.k, family=family)
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for node, ads in ads_set.items():
            entries = " ".join(
                f"{e.node}:{e.distance:g}:{e.rank:.6g}" for e in ads.entries
            )
            print(f"{node}\t{entries}", file=out)
    finally:
        if args.out:
            out.close()
    sizes = [len(ads) for ads in ads_set.values()]
    print(
        f"# {len(ads_set)} sketches, mean size {sum(sizes) / len(sizes):.1f}",
        file=sys.stderr,
    )
    return 0


def _centrality_kwargs(args):
    """Map the shared --kind/--half-life options to estimator kwargs
    (an unset --kind means classic)."""
    kind = args.kind or "classic"
    if kind == "harmonic":
        return {"alpha": harmonic_kernel()}
    if kind == "decay":
        return {"alpha": exponential_decay_kernel(args.half_life)}
    if kind == "classic":
        return {"classic": True}
    return {}  # distsum


def cmd_centrality(args) -> int:
    graph, family = _load(args)
    ads_set = build_ads_set(graph, args.k, family=family)
    values = all_closeness_centralities(ads_set, **_centrality_kwargs(args))
    for node, value in top_k_central_nodes(values, args.top):
        print(f"{node}\t{value:.6g}")
    return 0


def _parse_node(args):
    """--node as the graph's label type; None when unparseable."""
    if not args.int_nodes:
        return args.node
    try:
        return int(args.node)
    except ValueError:
        return None


def cmd_neighborhood(args) -> int:
    graph, family = _load(args)
    node = _parse_node(args)
    if node is None:
        print(f"--int-nodes expects an integer node, got {args.node!r}",
              file=sys.stderr)
        return 1
    ads_set = build_ads_set(graph, args.k, family=family)
    if node not in ads_set:
        print(f"node {node!r} not in graph", file=sys.stderr)
        return 1
    for distance, estimate in ads_set[node].neighborhood_function():
        print(f"{distance:g}\t{estimate:.2f}")
    return 0


def cmd_build_index(args) -> int:
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    try:
        graph, family = _load(args)
        index = AdsIndex.build(
            graph.to_csr(), args.k, family=family, flavor=args.flavor,
            method=args.method, direction=args.direction,
            workers=args.workers,
        )
        index.save(args.out, shards=args.shards)
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    layout = (
        f"{args.shards}-shard layout" if args.shards is not None
        else "single file"
    )
    print(
        f"# indexed {index.num_nodes} nodes, {index.num_entries} entries "
        f"(flavor={index.flavor}, k={index.k}, workers={args.workers}, "
        f"{layout}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def cmd_query(args) -> int:
    try:
        index = AdsIndex.load(args.index)
    except (ReproError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.node is not None:
        node = _parse_node(args)
        if node is None:
            print(f"--int-nodes expects an integer node, got {args.node!r}",
                  file=sys.stderr)
            return 1
        if node not in index:
            # The index stores the labels, so coerce to the build's
            # label type (either direction) instead of demanding
            # --int-nodes re-match it.
            if isinstance(node, str):
                try:
                    coerced = int(node)
                except ValueError:
                    coerced = None
            else:
                coerced = str(node)
            if coerced is not None and coerced in index:
                node = coerced
        if node not in index:
            print(f"node {node!r} not in index", file=sys.stderr)
            return 1
        if args.cardinality is not None:
            print(f"{node}\t{index.node_cardinality_at(node, args.cardinality):.2f}")
            return 0
        if args.kind is not None and not args.neighborhood:
            # An explicit --kind with --node asks for that node's
            # centrality, not its distance distribution.
            value = index.node_closeness_centrality(
                node, **_centrality_kwargs(args)
            )
            print(f"{node}\t{value:.6g}")
            return 0
        for distance, estimate in index.node_neighborhood_function(node):
            print(f"{distance:g}\t{estimate:.2f}")
        return 0
    if args.cardinality is not None:
        for node, estimate in index.cardinality_at(args.cardinality).items():
            print(f"{node}\t{estimate:.2f}")
        return 0
    if args.neighborhood:
        for distance, estimate in index.neighborhood_function():
            print(f"{distance:g}\t{estimate:.2f}")
        return 0
    for node, value in index.top_central(args.top, **_centrality_kwargs(args)):
        print(f"{node}\t{value:.6g}")
    return 0


def cmd_distinct_count(args) -> int:
    counter = HipDistinctCounter(
        HyperLogLog(args.k, HashFamily(args.seed), args.register_bits)
    )
    stream = args.input if args.input else sys.stdin
    handle = open(stream) if isinstance(stream, str) else stream
    try:
        for line in handle:
            element = line.strip()
            if element:
                counter.add(element)
    finally:
        if isinstance(stream, str):
            handle.close()
    print(f"hip\t{counter.estimate():.1f}")
    print(f"hll\t{counter.sketch.estimate():.1f}")
    return 0


def cmd_figures(args) -> int:
    from repro.eval.fig2 import Fig2Config, run_figure2
    from repro.eval.fig3 import Fig3Config, run_figure3
    from repro.eval.reporting import render_table

    if args.figure == "fig2":
        result = run_figure2(
            Fig2Config(k=args.k, runs=args.runs, max_n=args.max_n)
        )
    else:
        result = run_figure3(
            Fig3Config(k=args.k, runs=args.runs, max_n=args.max_n)
        )
    print(
        render_table(
            f"{args.figure} k={args.k} runs={args.runs} max_n={args.max_n}",
            "size",
            result.checkpoints,
            result.nrmse,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-Distances Sketches with HIP estimators (CLI)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sketch", help="build and dump the ADS of every node")
    _add_common_graph_args(p)
    p.add_argument("--out", help="output file (default: stdout)")
    p.set_defaults(func=cmd_sketch)

    p = sub.add_parser("centrality", help="rank nodes by estimated centrality")
    _add_common_graph_args(p)
    p.add_argument(
        "--kind",
        choices=["classic", "harmonic", "decay", "distsum"],
        default="classic",
    )
    p.add_argument("--half-life", type=float, default=1.0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_centrality)

    p = sub.add_parser(
        "neighborhood", help="estimated distance distribution of one node"
    )
    _add_common_graph_args(p)
    p.add_argument("--node", required=True)
    p.set_defaults(func=cmd_neighborhood)

    p = sub.add_parser(
        "build-index",
        help="build the flat-array ADS index of every node and save it",
    )
    _add_common_graph_args(p)
    p.add_argument(
        "--flavor",
        choices=["bottomk", "kmins", "kpartition"],
        default="bottomk",
    )
    p.add_argument(
        "--method",
        choices=["auto", "pruned_dijkstra", "dp"],
        default="auto",
    )
    p.add_argument(
        "--direction", choices=["forward", "backward"], default="forward"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded parallel build (default 1; "
        "the result is bit-identical at any worker count)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="save a sharded on-disk layout: --out becomes a directory of "
        "M shard files plus a manifest (default: one flat file)",
    )
    p.add_argument("--out", required=True, help="index output file")
    p.set_defaults(func=cmd_build_index)

    p = sub.add_parser(
        "query", help="serve estimates from a saved ADS index"
    )
    p.add_argument(
        "index",
        help="index file written by build-index (or a sharded layout "
        "directory / its manifest.json)",
    )
    p.add_argument(
        "--kind",
        choices=["classic", "harmonic", "decay", "distsum"],
        default=None,
        help="centrality kind for the top-central query (default: "
        "classic), or for one node's centrality with --node",
    )
    p.add_argument("--half-life", type=float, default=1.0)
    p.add_argument("--top", type=int, default=10)
    p.add_argument(
        "--node",
        help="restrict to one node (its neighborhood function by "
        "default; its centrality with --kind; its cardinality with "
        "--cardinality)",
    )
    p.add_argument(
        "--cardinality",
        type=float,
        default=None,
        metavar="D",
        help="neighborhood-size estimate at distance D (all nodes, or "
        "--node's)",
    )
    p.add_argument(
        "--neighborhood",
        action="store_true",
        help="whole-graph neighborhood function (or --node's without it)",
    )
    p.add_argument(
        "--int-nodes", action="store_true", help="parse --node as an integer"
    )
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "distinct-count",
        help="HIP + HLL distinct count of newline-separated elements",
    )
    p.add_argument("--k", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--register-bits", type=int, default=5)
    p.add_argument("--input", help="file to read (default: stdin)")
    p.set_defaults(func=cmd_distinct_count)

    p = sub.add_parser("figures", help="regenerate a paper figure panel")
    p.add_argument("figure", choices=["fig2", "fig3"])
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--max-n", type=int, default=10_000)
    p.set_defaults(func=cmd_figures)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        # Commands handle their own expected failures; this guard turns
        # anything that escapes (unreadable graph file, bad parameters)
        # into a clean non-zero exit instead of a traceback.
        print(str(error), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
