"""Approximate counters (Section 7) and the HIP distinct counter (Section 6).

:class:`~repro.counters.morris.MorrisCounter` is the classic O(log log n)-
bit approximate counter of Morris/Flajolet, extended -- as Section 7 of the
paper does -- to arbitrary positive weighted increments and counter merges
via inverse-probability estimation.

:class:`~repro.counters.hip_distinct.HipDistinctCounter` is the paper's
streaming distinct counter: any MinHash sketch plus a running sum of HIP
adjusted weights, updated only when the sketch itself updates.  With a
HyperLogLog sketch it is exactly Algorithm 3.
"""

from repro.counters.hip_distinct import HipDistinctCounter, algorithm3_counter
from repro.counters.morris import MorrisCounter

__all__ = ["MorrisCounter", "HipDistinctCounter", "algorithm3_counter"]
