"""Streaming HIP distinct counter (Section 6; Algorithm 3 generalised).

The construction: maintain any MinHash sketch over the stream; every time
the sketch is *modified* by an element, that element was, in ADS terms, a
new entry of the first-occurrence stream ADS -- its HIP probability is the
sketch's current update probability p, and its adjusted weight 1/p is added
to a running count.  Repeated elements never modify the sketch, so the
counter estimates the number of *distinct* elements, unbiasedly, at every
prefix of the stream.

A note on Algorithm 3's pseudocode: the paper increments the count by
``(sum_i I[M_i<31] 2^{-M_i})^{-1}``.  The unbiased HIP weight for a
k-partition sketch (Equation 8) is ``k`` times that, since a new element's
update probability is the *average* -- not the sum -- of per-bucket
thresholds.  We implement the unbiased form (with it, the first distinct
element gets weight exactly 1); DESIGN.md discusses the discrepancy.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro._util import require
from repro.counters.morris import MorrisCounter
from repro.rand.hashing import HashFamily
from repro.sketches.base import MinHashSketch
from repro.sketches.hll import HyperLogLog


class HipDistinctCounter:
    """Wrap a MinHash sketch with a running HIP adjusted-weight sum.

    Parameters
    ----------
    sketch:
        Any :class:`~repro.sketches.base.MinHashSketch` (all three flavors
        work; a :class:`~repro.sketches.hll.HyperLogLog` gives exactly the
        Algorithm 3 counter).
    approximate_counter_base:
        When given (b > 1), the running count itself is stored in a
        :class:`MorrisCounter` with that base instead of an exact float --
        the fully compressed variant Section 6 describes.  Section 7
        recommends ``b <= 1 + 1/k``.
    """

    def __init__(
        self,
        sketch: MinHashSketch,
        approximate_counter_base: Optional[float] = None,
        counter_seed: int = 0,
    ):
        self.sketch = sketch
        if approximate_counter_base is None:
            self._count: float = 0.0
            self._morris: Optional[MorrisCounter] = None
        else:
            require(
                approximate_counter_base > 1.0,
                "approximate counter base must be > 1",
            )
            self._count = 0.0
            self._morris = MorrisCounter(
                approximate_counter_base, seed=counter_seed
            )

    # ------------------------------------------------------------------
    def add(self, item: Hashable) -> bool:
        """Process one stream element; True when the sketch was modified."""
        p = self.sketch.update_probability()
        if not self.sketch.add(item):
            return False
        if p <= 0.0:
            # Only reachable in pathological saturation races; the sketch
            # itself refuses updates once saturated, so p>0 whenever an
            # update happens.  Guard anyway to keep the counter finite.
            return True
        weight = 1.0 / p
        if self._morris is not None:
            self._morris.add(weight)
        else:
            self._count += weight
        return True

    def update(self, items) -> int:
        """Process a whole iterable; return the number of sketch updates."""
        return sum(1 for item in items if self.add(item))

    def estimate(self) -> float:
        """Current unbiased estimate of the number of distinct elements."""
        if self._morris is not None:
            return self._morris.estimate()
        return self._count

    @property
    def saturated(self) -> bool:
        """True when no future element can change the estimate."""
        return self.sketch.update_probability() <= 0.0

    def __repr__(self) -> str:
        return (
            f"HipDistinctCounter(sketch={self.sketch!r}, "
            f"estimate={self.estimate():.4g})"
        )


def algorithm3_counter(
    k: int, family: Optional[HashFamily] = None, register_bits: int = 5, seed: int = 0
) -> HipDistinctCounter:
    """Algorithm 3 exactly: HIP on a k-partition base-2 sketch with 5-bit
    saturating registers (the HyperLogLog layout)."""
    if family is None:
        family = HashFamily(seed)
    return HipDistinctCounter(HyperLogLog(k, family, register_bits))
