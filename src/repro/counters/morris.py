"""Morris/Flajolet approximate counters with weighted updates and merging.

Section 7: the counter stores only an integer exponent ``x`` and estimates
``n_hat = b**x - 1``.  The paper's extension handles an arbitrary positive
increase Y in two steps: deterministically advance by the largest i whose
estimate increase is <= Y, then probabilistically round the leftover --
an inverse-probability estimate, so the counter stays exactly unbiased by
induction over updates.  Merging two counters is adding one counter's
estimate to the other.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro._util import require
from repro.errors import ParameterError


class MorrisCounter:
    """Unbiased approximate counter with base ``b > 1``.

    Smaller bases give lower variance but need more exponent values: the
    relative error scale is about ``b - 1`` and the representation is
    ``log_b`` of the count, i.e. ``log2 log_b n`` bits in hardware terms.
    The HIP distinct counter uses ``b = 1 + 1/k`` so the approximate
    counter's noise is negligible next to the sketch's (Section 7).

    Parameters
    ----------
    b:
        Exponent base (> 1).
    seed / rng:
        Randomization for the probabilistic rounding; pass a shared
        ``random.Random`` to make multi-counter experiments reproducible.
    """

    def __init__(
        self, b: float = 2.0, seed: int = 0, rng: Optional[random.Random] = None
    ):
        require(b > 1.0, f"Morris counter base must be > 1, got {b}")
        self.b = float(b)
        self.x = 0
        self._rng = rng if rng is not None else random.Random(seed)

    # ------------------------------------------------------------------
    def estimate(self) -> float:
        """The unbiased estimate b**x - 1."""
        return self.b**self.x - 1.0

    def add(self, amount: float) -> None:
        """Increase the represented count by *amount* >= 0 (Section 7).

        Deterministic part: the largest i with
        ``b**x * (b**i - 1) <= amount``.  Stochastic part: the leftover
        Delta is added as 1 with probability Delta / (b**x_new * (b-1)).
        """
        if amount < 0:
            raise ParameterError(f"cannot add a negative amount: {amount}")
        if amount == 0:
            return
        scale = self.b**self.x
        i = int(math.floor(math.log(amount / scale + 1.0, self.b)))
        # Repair floating-point edge cases around exact powers.
        while i > 0 and scale * (self.b**i - 1.0) > amount:
            i -= 1
        while scale * (self.b ** (i + 1) - 1.0) <= amount:
            i += 1
        leftover = amount - scale * (self.b**i - 1.0)
        self.x += i
        threshold = self.b**self.x * (self.b - 1.0)
        if self._rng.random() < leftover / threshold:
            self.x += 1

    def increment(self) -> None:
        """Classic unit increment (equals ``add(1)``)."""
        self.add(1.0)

    def merge(self, other: "MorrisCounter") -> None:
        """Fold *other* into this counter: ``add(other.estimate())``.

        Requires equal bases; the result is unbiased for the sum of both
        represented counts.
        """
        if not isinstance(other, MorrisCounter):
            raise ParameterError("can only merge with another MorrisCounter")
        if other.b != self.b:
            raise ParameterError(
                f"cannot merge counters with bases {self.b} and {other.b}"
            )
        self.add(other.estimate())

    # ------------------------------------------------------------------
    @property
    def exponent_bits(self) -> int:
        """Bits needed to store the current exponent (representation cost
        of the counter; O(log log n) as promised)."""
        return max(1, self.x).bit_length()

    def __repr__(self) -> str:
        return f"MorrisCounter(b={self.b}, x={self.x}, est={self.estimate():.3g})"
