"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ParameterError(ReproError, ValueError):
    """An argument is outside its documented domain (e.g. k < 1, b <= 1)."""


class GraphError(ReproError, ValueError):
    """A graph operation received an invalid node, edge, or weight."""


class EstimatorError(ReproError, ValueError):
    """An estimator was applied to a sketch it cannot handle."""
