"""Cardinality and statistics estimators (Sections 4, 5, 8 of the paper).

* :mod:`repro.estimators.basic` -- the classic per-flavor MinHash
  cardinality estimators (Section 4); UMVUE-optimal for their inputs.
* :mod:`repro.estimators.hip` -- Historic Inverse Probability adjusted
  weights for all three ADS flavors (Section 5); halves the variance.
* :mod:`repro.estimators.permutation` -- the permutation estimator
  (Section 5.4), superior when cardinality is a good fraction of n.
* :mod:`repro.estimators.size` -- the unbiased estimator that uses only
  the ADS size (Section 8).
* :mod:`repro.estimators.statistics` -- HIP estimation of Q_g and
  C_{alpha,beta} (Equations 1-3, 5) with the standard decay kernels.
* :mod:`repro.estimators.naive` -- the reachable-set MinHash baseline the
  introduction compares HIP against.
* :mod:`repro.estimators.bounds` -- every closed-form CV / MRE / size
  expression the paper states, used as test oracles and figure overlays.
"""

from repro.estimators.basic import (
    bottom_k_cardinality,
    k_mins_cardinality,
    k_partition_cardinality,
)
from repro.estimators.bounds import (
    basic_cv_upper_bound,
    basic_mre_kmins,
    expected_ads_size_bottomk,
    expected_ads_size_kpartition,
    hip_base_b_cv,
    hip_cv_upper_bound,
    hip_cv_lower_bound,
    hip_mre_reference,
)
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    hip_cardinality,
    hip_statistic,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)
from repro.estimators.permutation import PermutationCardinalityEstimator
from repro.estimators.size import size_cardinality_estimate
from repro.estimators.statistics import (
    closeness_centrality_estimate,
    exponential_decay_kernel,
    harmonic_kernel,
    neighborhood_kernel,
    q_statistic_estimate,
)

__all__ = [
    "k_mins_cardinality",
    "bottom_k_cardinality",
    "k_partition_cardinality",
    "bottom_k_adjusted_weights",
    "k_mins_adjusted_weights",
    "k_partition_adjusted_weights",
    "hip_cardinality",
    "hip_statistic",
    "PermutationCardinalityEstimator",
    "size_cardinality_estimate",
    "q_statistic_estimate",
    "closeness_centrality_estimate",
    "neighborhood_kernel",
    "exponential_decay_kernel",
    "harmonic_kernel",
    "basic_cv_upper_bound",
    "hip_cv_upper_bound",
    "hip_cv_lower_bound",
    "hip_base_b_cv",
    "basic_mre_kmins",
    "hip_mre_reference",
    "expected_ads_size_bottomk",
    "expected_ads_size_kpartition",
]
