"""Basic MinHash cardinality estimators (Section 4).

"Basic" is the paper's name for estimators applied to the MinHash sketch
alone (as opposed to HIP, which uses the whole ADS / update history).  By
the Lehmann-Scheffe argument of Section 4 these are the unique minimum-
variance unbiased estimators of their inputs -- HIP beats them only by
consuming *more* information, not by better arithmetic.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

from repro._util import require
from repro.errors import EstimatorError


def k_mins_cardinality(minima: Sequence[float]) -> float:
    """(k-1) / sum_h -ln(1 - x_h)  over the k permutation minima.

    Unbiased for k > 1 with CV = 1/sqrt(k-2) (Section 4.1).  Minima equal
    to 1 denote untouched permutations (empty set contributes infinity to
    the denominator, so an all-empty sketch estimates 0).
    """
    k = len(minima)
    require(k >= 2, f"the k-mins estimator requires k >= 2, got k={k}")
    total = 0.0
    for x in minima:
        if not 0.0 <= x <= 1.0:
            raise EstimatorError(f"k-mins minima must lie in [0,1], got {x}")
        if x >= 1.0:
            return 0.0  # an untouched permutation => empty set
        total += -math.log1p(-x)
    if total == 0.0:
        raise EstimatorError("all permutation minima are exactly 0")
    return (k - 1) / total


def bottom_k_cardinality(
    size: int, tau: float, k: int, sup: float = 1.0
) -> float:
    """The conditional inverse-probability bottom-k estimate (Section 4.2).

    Parameters
    ----------
    size:
        Number of elements currently in the sketch.
    tau:
        kth smallest rank (``sup`` when fewer than k elements were seen).
    k:
        Sketch size parameter.
    sup:
        Supremum of the rank range: 1 for uniform ranks, ``inf`` for
        exponential ranks (Section 9); selects the inclusion-probability
        formula ``tau`` vs ``1 - exp(-tau)``.

    When the sketch holds fewer than k elements the estimate is *exact*
    (= size); otherwise it is ``(k-1) / P[rank < tau]``.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    require(size >= 0, f"size must be >= 0, got {size}")
    if size < k:
        return float(size)
    if sup == 1.0:
        require(0.0 < tau <= 1.0, f"uniform tau must be in (0,1], got {tau}")
        inclusion = tau
    elif math.isinf(sup):
        require(tau > 0.0, f"exponential tau must be positive, got {tau}")
        inclusion = -math.expm1(-tau)
    else:
        raise EstimatorError(f"unsupported rank supremum {sup!r}")
    return (k - 1) / inclusion


def k_partition_cardinality(
    minima: Sequence[float], argmin: Sequence[Optional[Hashable]]
) -> float:
    """k'(k'-1) / sum over nonempty buckets of -ln(1 - x)  (Section 4.3).

    k' is the number of nonempty buckets; conditioning on k' and treating
    buckets as equal n/k' shares reduces to a k'-mins estimate scaled by
    k'.  When k' <= 1 the estimate is the number of nonempty buckets
    itself (the paper notes the estimator is 0 at k'=1 before this floor;
    returning k' in {0,1} keeps tiny-set estimates sane and only affects
    cardinalities <= 1 in expectation).
    """
    require(len(minima) == len(argmin), "minima/argmin length mismatch")
    k_prime = sum(1 for item in argmin if item is not None)
    if k_prime <= 1:
        return float(k_prime)
    total = 0.0
    for x, item in zip(minima, argmin):
        if item is None:
            continue
        if not 0.0 < x < 1.0:
            raise EstimatorError(f"nonempty bucket minimum must be in (0,1), got {x}")
        total += -math.log1p(-x)
    if total == 0.0:
        raise EstimatorError("all bucket minima are exactly 0")
    return k_prime * (k_prime - 1) / total
