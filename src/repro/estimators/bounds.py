"""Closed-form variance / error / size expressions stated in the paper.

These are the oracle values the figures overlay and the tests compare
simulations against:

* Section 4.1: basic k-mins CV ``1/sqrt(k-2)`` and its exact MRE.
* Theorem 5.1: HIP CV upper bound ``1/sqrt(2(k-1))`` (exact finite-n form).
* Theorem 5.2: HIP CV lower bound ``1/sqrt(2k)``.
* Section 5.6: base-b HIP CV ``sqrt((1+b)/(4(k-1)))``.
* Lemma 2.2: expected ADS sizes.
* Section 6: the HLL reference constant 1.08/sqrt(k).
"""

from __future__ import annotations

import math

from repro._util import harmonic_number, require


def basic_cv_upper_bound(k: int) -> float:
    """CV of the basic k-mins estimator, 1/sqrt(k-2); also an upper bound
    for the basic bottom-k estimator (Lemma 4.3).  Requires k > 2."""
    require(k > 2, f"basic CV bound needs k > 2 (variance unbounded), got {k}")
    return 1.0 / math.sqrt(k - 2)


def basic_cv_lower_bound(k: int) -> float:
    """Cramer-Rao bound for any unbiased k-mins estimator (Lemma 4.1)."""
    require(k >= 1, f"k must be >= 1, got {k}")
    return 1.0 / math.sqrt(k)


def hip_cv_upper_bound(k: int) -> float:
    """First-order CV bound of the bottom-k HIP estimator, 1/sqrt(2(k-1))
    (Theorem 5.1).  Requires k > 1."""
    require(k > 1, f"HIP CV bound needs k > 1, got {k}")
    return 1.0 / math.sqrt(2.0 * (k - 1))


def hip_cv_finite_n(n: int, k: int) -> float:
    """Theorem 5.1's exact finite-n bound
    sqrt(1 - (n + k(k-1))/n^2) / sqrt(2(k-1)); zero when n <= k."""
    require(k > 1, f"HIP CV bound needs k > 1, got {k}")
    require(n >= 1, f"n must be >= 1, got {n}")
    if n <= k:
        return 0.0
    inner = 1.0 - (n + k * (k - 1)) / float(n * n)
    return math.sqrt(max(inner, 0.0)) / math.sqrt(2.0 * (k - 1))


def hip_cv_lower_bound(k: int) -> float:
    """Asymptotic lower bound 1/sqrt(2k) for any unbiased nonnegative
    linear estimator on the ADS (Theorem 5.2)."""
    require(k >= 1, f"k must be >= 1, got {k}")
    return 1.0 / math.sqrt(2.0 * k)


def hip_base_b_cv(k: int, b: float) -> float:
    """Section 5.6 / Section 6: CV of HIP with base-b rounded ranks,
    sqrt((1+b) / (4(k-1))).  At b=2 this is ~0.866/sqrt(k)."""
    require(k > 1, f"k must be > 1, got {k}")
    require(b > 1.0, f"base must be > 1, got {b}")
    return math.sqrt((1.0 + b) / (4.0 * (k - 1)))


def hll_nrmse_reference(k: int, constant: float = 1.08) -> float:
    """The paper's quoted HyperLogLog NRMSE, ~1.08/sqrt(k) (Section 6)."""
    require(k >= 1, f"k must be >= 1, got {k}")
    return constant / math.sqrt(k)


def basic_mre_kmins(k: int) -> float:
    """Exact MRE of the basic k-mins estimator (Section 4.1):
    2 (k-1)^{k-2} / ((k-2)! e^{k-1}).  Computed in log space."""
    require(k > 2, f"MRE formula needs k > 2, got {k}")
    log_value = (
        math.log(2.0)
        + (k - 2) * math.log(k - 1)
        - math.lgamma(k - 1)
        - (k - 1)
    )
    return math.exp(log_value)


def basic_mre_kmins_approx(k: int) -> float:
    """First-order approximation sqrt(2/(pi (k-2))) of the MRE above."""
    require(k > 2, f"MRE approximation needs k > 2, got {k}")
    return math.sqrt(2.0 / (math.pi * (k - 2)))


def hip_mre_reference(k: int) -> float:
    """The reference MRE for HIP shown in Figure 2, sqrt(1/(pi (k-1)))."""
    require(k > 1, f"k must be > 1, got {k}")
    return math.sqrt(1.0 / (math.pi * (k - 1)))


def expected_ads_size_bottomk(n: int, k: int) -> float:
    """Lemma 2.2: E|ADS| = sum_i min(1, k/i) = k + k (H_n - H_k) for a
    node with n reachable nodes (n itself counted)."""
    require(n >= 0, f"n must be >= 0, got {n}")
    require(k >= 1, f"k must be >= 1, got {k}")
    if n <= k:
        return float(n)
    return k + k * (harmonic_number(n) - harmonic_number(k))


def expected_ads_size_kpartition(n: int, k: int) -> float:
    """Lemma 2.2's k-partition size, computed exactly.

    The paper states E|ADS| ~= k H_{n/k} assuming buckets hold n/k nodes
    each; the exact value is ``k * E[H_X]`` with X ~ Binomial(n, 1/k)
    (a bucket of X nodes contributes H_X prefix-minimum records).  The
    two agree for n >> k; the exact form also covers the sparse regime
    n ~ k where many buckets are empty.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require(k >= 1, f"k must be >= 1, got {k}")
    if n <= 0:
        return 0.0
    if k == 1:
        return harmonic_number(n)
    p = 1.0 / k
    mean = n * p
    sd = math.sqrt(n * p * (1.0 - p))
    lo = max(1, int(mean - 12.0 * sd) - 1)  # H_0 = 0: skip x = 0
    hi = min(n, int(mean + 12.0 * sd) + 2)
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for x in range(lo, hi + 1):
        log_pmf = (
            math.lgamma(n + 1)
            - math.lgamma(x + 1)
            - math.lgamma(n - x + 1)
            + x * log_p
            + (n - x) * log_q
        )
        total += math.exp(log_pmf) * harmonic_number(x)
    return k * total


def expected_ads_size_kpartition_approx(n: int, k: int) -> float:
    """The paper's stated approximation k H_{n/k} (valid for n >> k)."""
    require(n >= 0, f"n must be >= 0, got {n}")
    require(k >= 1, f"k must be >= 1, got {k}")
    if n <= 0:
        return 0.0
    return k * harmonic_number(max(1, round(n / k)))
