"""Historic Inverse Probability (HIP) adjusted weights (Section 5).

For each node j in ADS(i), the HIP probability tau_ij is j's inclusion
probability conditioned on the ranks of all nodes closer to i; the adjusted
weight a_ij = 1/tau_ij is an unbiased presence estimate, and sums of
``a_ij * g(j, d_ij)`` unbiasedly estimate any distance-based statistic Q_g
(Equation 5).

The three flavor-specific weight functions below operate on plain entry
sequences *sorted by the scan order* (increasing distance, ties broken by
the ADS's tiebreak), so they serve both the graph ADS classes and the
stream simulators:

* bottom-k (Lemma 5.1):  tau = kth smallest rank among *scanned* entries;
* k-mins (Equation 7):   tau = 1 - prod_h (1 - min_h);
* k-partition (Eq. 8):   tau = (1/k) sum_h min over scanned in bucket h.

Bottom-k gives the first k scanned nodes weight exactly 1 (tau is the
k-th smallest scanned rank, 1 while fewer than k are scanned); k-mins and
k-partition condition on per-permutation / per-bucket minima, so only the
first scanned node is certain.  All three produce weights non-decreasing
in distance (inclusion gets harder further out).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro._util import require
from repro.errors import EstimatorError


def bottom_k_adjusted_weights(
    ranks: Sequence[float],
    k: int,
    inclusion_probability: Optional[Callable[[float, int], float]] = None,
) -> List[float]:
    """HIP adjusted weights for a bottom-k ADS entry sequence.

    Parameters
    ----------
    ranks:
        Rank of each ADS entry, in scan order (increasing distance from
        the source; the source itself is entry 0 with some rank).
    k:
        The ADS parameter.
    inclusion_probability:
        Maps (threshold tau, entry index) -> P[rank < tau] for that entry.
        Defaults to uniform ranks where the probability is tau itself.
        Exponential / weighted ranks (Section 9) pass
        ``lambda tau, i: -expm1(-beta_i * tau)``.

    Returns one weight per entry, in the same order.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    weights: List[float] = []
    # Max-heap (negated) of the k smallest ranks scanned so far.
    smallest: List[float] = []
    for index, rank in enumerate(ranks):
        if len(smallest) < k:
            tau = None  # fewer than k closer nodes: inclusion certain
        else:
            tau = -smallest[0]
        if tau is None:
            weights.append(1.0)
        else:
            if inclusion_probability is None:
                p = tau
            else:
                p = inclusion_probability(tau, index)
            if not 0.0 < p <= 1.0:
                raise EstimatorError(
                    f"HIP probability must be in (0,1], got {p} at entry {index}"
                )
            weights.append(1.0 / p)
        # The scanned entry now belongs to the "closer" set of later ones.
        if len(smallest) < k:
            heapq.heappush(smallest, -rank)
        elif rank < -smallest[0]:
            heapq.heapreplace(smallest, -rank)
    return weights


def k_mins_adjusted_weights(
    rank_vectors: Sequence[Sequence[float]], k: int
) -> List[float]:
    """HIP adjusted weights for a k-mins ADS entry sequence (Equation 7).

    ``rank_vectors[i]`` holds entry i's rank under each of the k
    permutations; entries must again be in scan order.  tau_i is
    ``1 - prod_h (1 - m_h)`` with m_h the running minimum of permutation h
    over *previously scanned* entries (1 when none).
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    minima = [1.0] * k
    weights: List[float] = []
    for vector in rank_vectors:
        if len(vector) != k:
            raise EstimatorError(
                f"rank vector length {len(vector)} does not match k={k}"
            )
        p_none = 1.0
        for m in minima:
            p_none *= 1.0 - m
        tau = 1.0 - p_none
        if tau <= 0.0:
            raise EstimatorError("k-mins HIP probability vanished")
        weights.append(1.0 / tau)
        for h in range(k):
            if vector[h] < minima[h]:
                minima[h] = vector[h]
    return weights


def k_partition_adjusted_weights(
    entries: Sequence[Tuple[int, float]], k: int
) -> List[float]:
    """HIP adjusted weights for a k-partition ADS sequence (Equation 8).

    ``entries[i] = (bucket, rank)`` in scan order.  tau_i is the average
    over buckets of the running per-bucket minimum rank among previously
    scanned entries (1 for untouched buckets).
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    minima = [1.0] * k
    weights: List[float] = []
    for bucket, rank in entries:
        if not 0 <= bucket < k:
            raise EstimatorError(f"bucket {bucket} outside [0, {k})")
        tau = sum(minima) / k
        if tau <= 0.0:
            raise EstimatorError("k-partition HIP probability vanished")
        weights.append(1.0 / tau)
        if rank < minima[bucket]:
            minima[bucket] = rank
    return weights


def hip_cardinality(
    weights: Sequence[float],
    distances: Sequence[float],
    d: float = math.inf,
) -> float:
    """Neighborhood cardinality estimate: sum of adjusted weights of ADS
    entries within query distance d (Section 5)."""
    if len(weights) != len(distances):
        raise EstimatorError("weights/distances length mismatch")
    return sum(w for w, dist in zip(weights, distances) if dist <= d)


def hip_statistic(
    weights: Sequence[float],
    distances: Sequence[float],
    nodes: Sequence[Hashable],
    g: Callable[[Hashable, float], float],
) -> float:
    """Q_g estimate  sum_j a_ij g(j, d_ij)  over ADS entries (Equation 5)."""
    if not len(weights) == len(distances) == len(nodes):
        raise EstimatorError("weights/distances/nodes length mismatch")
    return sum(
        w * float(g(node, dist))
        for w, dist, node in zip(weights, distances, nodes)
    )
