"""The naive reachable-set MinHash baseline for Q_g (introduction, §5.1).

The paper's point of comparison for general statistics: take the bottom-k
MinHash sketch of *all* reachable nodes (a uniform k-sample), average
g(j, d_ij) over the k samples and multiply by a cardinality estimate of
the reachable set.  Because the sample ignores distance, statistics
concentrated on close nodes suffer up to an (n/k)-fold variance penalty
versus HIP -- the gap the benchmark `bench_table_qg` measures.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence, Tuple

from repro._util import require
from repro.errors import EstimatorError
from repro.estimators.basic import bottom_k_cardinality


def naive_q_statistic(
    entries: Sequence[Tuple[float, Hashable, float]],
    k: int,
    g: Callable[[Hashable, float], float],
    include_source: bool = True,
) -> float:
    """Estimate Q_g from the k globally-smallest-rank ADS entries.

    Parameters
    ----------
    entries:
        ``(rank, node, distance)`` triples -- normally every entry of a
        bottom-k ADS; the k smallest ranks among them form exactly the
        bottom-k MinHash sketch of the reachable set.
    k:
        Sketch size.
    g:
        The statistic's kernel g(node, distance) >= 0.

    Returns ``n_hat * mean(g over the k sampled nodes)`` where ``n_hat``
    is the basic bottom-k estimate of the number of reachable nodes.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    if not entries:
        return 0.0
    sample = sorted(entries)[:k]
    tau = sample[-1][0] if len(sample) >= k else 1.0
    n_hat = bottom_k_cardinality(len(sample), tau, k)
    values: List[float] = []
    for rank, node, dist in sample:
        if not include_source and dist == 0.0:
            continue
        value = float(g(node, dist))
        if value < 0.0:
            raise EstimatorError("g must be nonnegative")
        values.append(value)
    if not values:
        return 0.0
    # When the sketch is exact (fewer than k reachable nodes) return the
    # exact sum instead of the sample-mean extrapolation.
    if len(sample) < k:
        return sum(values)
    return n_hat * sum(values) / len(sample)
