"""The permutation cardinality estimator (Section 5.4).

A HIP variant for bottom-k sketches whose ranks are a strict random
permutation of [n] (n = domain size, known).  Sampling ranks *without*
replacement is more informative than i.i.d. uniform ranks once the
estimated cardinality is a good fraction of n: the paper observes parity
with plain HIP below 0.2 n and significant gains above.

Operation (stream view, elements arriving by increasing distance / first
occurrence): maintain the bottom-k of permutation ranks and a running
estimate ``s_hat``.  The first k distinct elements each add weight 1
(estimate exact).  Later, when an element's rank beats the current kth
smallest rank mu, the expected number of distinct arrivals since the
previous update is ``(n - s + 1)/(mu - k + 1)``; plugging the unbiased
``s_hat`` for the unknown s gives the update weight.  Once the sketch
holds exactly the ranks {1..k} no further update can occur and queries
apply the saturation correction ``s_hat (k+1)/k - 1``.
"""

from __future__ import annotations

import heapq
from typing import Hashable, List, Optional, Set

from repro._util import require
from repro.errors import EstimatorError
from repro.rand.ranks import PermutationRanks


class PermutationCardinalityEstimator:
    """Streaming estimator over a known domain of size n.

    Parameters
    ----------
    k:
        Sketch size.
    ranks:
        A :class:`~repro.rand.ranks.PermutationRanks` over the full domain,
        or None to supply integer ranks directly to :meth:`add_rank`.
    n:
        Domain size; inferred from *ranks* when omitted.
    """

    def __init__(
        self,
        k: int,
        ranks: Optional[PermutationRanks] = None,
        n: Optional[int] = None,
    ):
        require(k >= 1, f"k must be >= 1, got {k}")
        if ranks is None and n is None:
            raise EstimatorError("either ranks or n must be provided")
        self.k = int(k)
        self.ranks = ranks
        self.n = int(n if n is not None else ranks.n)
        require(self.n >= 1, f"domain size must be >= 1, got {self.n}")
        self._heap: List[int] = []  # max-heap (negated) of k smallest ranks
        self._members: Set[int] = set()
        self._estimate = 0.0

    # ------------------------------------------------------------------
    def add(self, item: Hashable) -> bool:
        """Process a stream element through the permutation rank map."""
        if self.ranks is None:
            raise EstimatorError(
                "this estimator was built without a rank map; use add_rank"
            )
        return self.add_rank(int(self.ranks.rank(item)))

    def add_rank(self, sigma: int) -> bool:
        """Process an element with permutation rank *sigma* in [1, n].

        Returns True when the sketch (and the estimate) was updated.
        Repeats are harmless: a rank already in the sketch is skipped, and
        an evicted element's rank can never re-enter (it exceeds mu).
        """
        require(1 <= sigma <= self.n, f"rank {sigma} outside [1, {self.n}]")
        if sigma in self._members:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -sigma)
            self._members.add(sigma)
            self._estimate += 1.0
            return True
        mu = -self._heap[0]
        if sigma >= mu:
            return False
        # Weight of the gap since the previous update (Section 5.4),
        # computed with the *pre-update* mu and estimate.
        weight = (self.n - self._estimate + 1.0) / (mu - self.k + 1.0)
        self._estimate += weight
        evicted = -heapq.heapreplace(self._heap, -sigma)
        self._members.discard(evicted)
        self._members.add(sigma)
        return True

    def update(self, items) -> int:
        return sum(1 for item in items if self.add(item))

    # ------------------------------------------------------------------
    @property
    def saturated(self) -> bool:
        """True when the sketch holds exactly the ranks {1..k}."""
        return len(self._heap) == self.k and -self._heap[0] == self.k

    def estimate(self) -> float:
        """Current cardinality estimate, with the saturation correction
        ``s_hat (k+1)/k - 1`` applied when the sketch is saturated."""
        if self.saturated:
            return self._estimate * (self.k + 1.0) / self.k - 1.0
        return self._estimate

    def __repr__(self) -> str:
        return (
            f"PermutationCardinalityEstimator(k={self.k}, n={self.n}, "
            f"estimate={self.estimate():.4g})"
        )
