"""Cardinality estimation from the ADS size alone (Section 8).

The number of ADS entries within distance d is itself informative: entry i
(by Dijkstra rank) is present with probability min(1, k/i).  Lemma 8.1
derives the *unique* unbiased estimator that uses only this count:

    E_s = s                          for s <= k
    E_s = k (1 + 1/k)^(s-k+1) - 1    for s > k

Weaker than HIP (it ignores the rank values) but applicable when only the
number of sketch modifications is observable -- e.g. watching an opaque
streaming counter being updated.

The closed form at k=1 gives 2^s - 1 (the text's "simply 2^s" drops the
-1); :func:`size_estimates_by_recurrence` reproduces Lemma 8.1's defining
recurrence exactly, and the tests verify the closed form against it.
"""

from __future__ import annotations

from typing import List

from repro._util import require


def size_cardinality_estimate(s: int, k: int) -> float:
    """Lemma 8.1's closed form, unbiased over the ADS-size distribution."""
    require(s >= 0, f"size must be >= 0, got {s}")
    require(k >= 1, f"k must be >= 1, got {k}")
    if s <= k:
        return float(s)
    return k * (1.0 + 1.0 / k) ** (s - k + 1) - 1.0


def ads_size_distribution(n: int, k: int) -> List[float]:
    """P[|ADS| = i] for a neighborhood of n nodes: the C_{i,n} table of
    Lemma 8.1, computed by its defining recurrence.

    Returns a list of length n+1 (index = size).  Used as a test oracle:
    the estimator must satisfy sum_i C_{i,n} E_i = n for every n.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require(k >= 1, f"k must be >= 1, got {k}")
    # previous[i] = C_{i, ell} for the current prefix length ell.
    previous = [0.0] * (n + 1)
    previous[0] = 1.0  # C_{0,0} = 1: empty prefix, empty sketch
    for ell in range(1, n + 1):
        current = [0.0] * (n + 1)
        p_include = min(1.0, k / ell)
        for i in range(0, ell + 1):
            stay = previous[i] * (1.0 - p_include) if i <= ell - 1 else 0.0
            grow = previous[i - 1] * p_include if i >= 1 else 0.0
            current[i] = stay + grow
        previous = current
    return previous


def size_estimates_by_recurrence(k: int, s_max: int) -> List[float]:
    """Solve recurrence (9) of Section 8 for E_k..E_{s_max}.

    Returns a list indexed by s (entries below k are the exact values s).
    The closed form must match this list; the tests assert it does.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    require(s_max >= k, f"s_max must be >= k, got {s_max} < {k}")
    estimates = [float(s) for s in range(s_max + 1)]
    for s in range(k + 1, s_max + 1):
        # Distribution of the ADS size after s elements: C_{i,s}.
        distribution = ads_size_distribution(s, k)
        acc = sum(
            estimates[i] * distribution[i] for i in range(k, s)
        )
        if distribution[s] <= 0.0:
            raise ZeroDivisionError("degenerate size distribution")
        estimates[s] = (s - acc) / distribution[s]
    return estimates
