"""HIP estimation of distance-based statistics Q_g and centralities
C_{alpha,beta} (Equations 1-3 and 5 of the paper).

A statistic is specified by ``g(node, distance)`` (Equation 1) or by a
decay kernel ``alpha`` over distances and a node weight/filter ``beta``
(Equation 2).  Given the adjusted weights of an ADS, the estimate is a
single weighted sum over the (logarithmically many) ADS entries -- and the
same ADS answers *any* such query, including ones whose beta-filter is
chosen after the sketches were built, which is the flexibility the paper
highlights over beta-specific sketch constructions.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.errors import EstimatorError

Kernel = Callable[[float], float]


# ----------------------------------------------------------------------
# Standard kernels from the introduction
# ----------------------------------------------------------------------
# Module-level callable classes, not closures: the parallel kernel tier
# ships alpha callables to worker processes, and a pickled instance of
# one of these round-trips where a lambda would not.
class _NeighborhoodKernel:
    __slots__ = ("d",)

    def __init__(self, d: float):
        self.d = float(d)

    def __call__(self, x: float) -> float:
        return 1.0 if x <= self.d else 0.0


class _ReachabilityKernel:
    __slots__ = ()

    def __call__(self, x: float) -> float:
        return 1.0


class _ExponentialDecayKernel:
    __slots__ = ("half_life",)

    def __init__(self, half_life: float):
        self.half_life = float(half_life)

    def __call__(self, x: float) -> float:
        return 2.0 ** (-x / self.half_life)


class _HarmonicKernel:
    __slots__ = ()

    def __call__(self, x: float) -> float:
        return 1.0 / x if x > 0 else 0.0


class _InversePolynomialKernel:
    __slots__ = ("power",)

    def __init__(self, power: float):
        self.power = float(power)

    def __call__(self, x: float) -> float:
        return x**-self.power if x > 0 else 0.0


def neighborhood_kernel(d: float) -> Kernel:
    """alpha(x) = 1 for x <= d else 0: C_alpha = d-neighborhood size."""
    return _NeighborhoodKernel(d)


def reachability_kernel() -> Kernel:
    """alpha(x) = 1: C_alpha = number of reachable nodes."""
    return _ReachabilityKernel()


def exponential_decay_kernel(half_life: float = 1.0) -> Kernel:
    """alpha(x) = 2^{-x/half_life} (Dangalchev's residual closeness at
    half_life=1)."""
    if half_life <= 0:
        raise EstimatorError(f"half_life must be positive, got {half_life}")
    return _ExponentialDecayKernel(half_life)


def harmonic_kernel() -> Kernel:
    """alpha(x) = 1/x for x > 0 (harmonic centrality); alpha(0) = 0."""
    return _HarmonicKernel()


CENTRALITY_KINDS = ("classic", "harmonic", "decay", "distsum")


def centrality_kind_kwargs(kind: str, half_life: float = 1.0) -> dict:
    """Map a centrality *kind* name to closeness-estimator kwargs.

    The single source of truth behind the CLI's ``--kind`` option and
    the HTTP API's ``kind`` parameter, so shell and wire queries agree
    number-for-number: ``classic`` -> Bavelas closeness, ``harmonic`` ->
    the harmonic kernel, ``decay`` -> exponential decay with
    *half_life*, ``distsum`` -> the raw sum of distances.
    """
    if kind == "classic":
        return {"classic": True}
    if kind == "harmonic":
        return {"alpha": harmonic_kernel()}
    if kind == "decay":
        return {"alpha": exponential_decay_kernel(half_life)}
    if kind == "distsum":
        return {}
    raise EstimatorError(
        f"unknown centrality kind {kind!r}; expected one of "
        f"{list(CENTRALITY_KINDS)}"
    )


def inverse_polynomial_kernel(power: float) -> Kernel:
    """alpha(x) = 1/x^power for x > 0 (generalised distance decay)."""
    if power <= 0:
        raise EstimatorError(f"power must be positive, got {power}")
    return _InversePolynomialKernel(power)


# ----------------------------------------------------------------------
# Estimators over (node, distance, adjusted-weight) triples
# ----------------------------------------------------------------------
def q_statistic_estimate(
    nodes: Sequence[Hashable],
    distances: Sequence[float],
    weights: Sequence[float],
    g: Callable[[Hashable, float], float],
    include_source: bool = True,
) -> float:
    """Q_g-hat(i) = sum_j a_ij g(j, d_ij)  (Equation 5).

    The entry at distance 0 is the source itself; pass
    ``include_source=False`` to exclude it (the convention for
    centralities, where only j != i contribute).
    """
    if not len(nodes) == len(distances) == len(weights):
        raise EstimatorError("nodes/distances/weights length mismatch")
    total = 0.0
    for node, dist, weight in zip(nodes, distances, weights):
        if not include_source and dist == 0.0:
            continue
        value = float(g(node, dist))
        if value < 0.0:
            raise EstimatorError(
                f"g must be nonnegative (got {value} at node {node!r}); "
                "HIP unbiasedness and the variance bounds assume g >= 0"
            )
        total += weight * value
    return total


def closeness_centrality_estimate(
    nodes: Sequence[Hashable],
    distances: Sequence[float],
    weights: Sequence[float],
    alpha: Optional[Kernel] = None,
    beta: Optional[Callable[[Hashable], float]] = None,
) -> float:
    """C-hat_{alpha,beta}(i) = sum_j a_ij alpha(d_ij) beta(j)  (Equation 3).

    ``alpha=None`` means the *sum of distances* (the inverse of classic
    closeness centrality -- Q_g with g = d); any provided alpha must be a
    non-increasing nonnegative kernel for the Theorem 5.1 CV guarantee to
    apply.  beta defaults to 1.
    """
    def g(node: Hashable, dist: float) -> float:
        weight = 1.0 if beta is None else float(beta(node))
        if alpha is None:
            return dist * weight
        return float(alpha(dist)) * weight

    return q_statistic_estimate(
        nodes, distances, weights, g, include_source=False
    )
