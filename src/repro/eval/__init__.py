"""Evaluation harness: the simulations behind the paper's figures.

Section 5.5 observes that the estimators' error at cardinality n does not
depend on graph structure -- only on the ranks of the first n scanned
nodes -- so Figures 2 and 3 are stream simulations.  This subpackage
contains faithful reimplementations of those simulations with two layers:

* reference implementations that drive the actual library objects
  (sketches, counters, estimators) element by element;
* vectorised fast paths (numpy prefix-min / event-compression tricks)
  used for the large sweeps, asserted equal to the reference layer in
  the test suite.
"""

from repro.eval.fig2 import Fig2Config, run_figure2
from repro.eval.fig3 import Fig3Config, run_figure3
from repro.eval.metrics import error_summary, mean_relative_error, nrmse
from repro.eval.reporting import render_table
from repro.eval.tables import (
    ads_size_table,
    baseb_variance_table,
    distinct_counter_constants_table,
    morris_counter_table,
)

__all__ = [
    "nrmse",
    "mean_relative_error",
    "error_summary",
    "Fig2Config",
    "run_figure2",
    "Fig3Config",
    "run_figure3",
    "render_table",
    "ads_size_table",
    "distinct_counter_constants_table",
    "baseb_variance_table",
    "morris_counter_table",
]
