"""Figure 2: NRMSE and MRE of neighborhood-cardinality estimators.

The paper's panels (k in {5, 10, 50}) compare, as a function of the
estimated cardinality, the basic estimators of all three flavors against
the bottom-k HIP estimator and the permutation estimator, with the
analytic reference lines 1/sqrt(k-2) and 1/sqrt(2(k-1)).

Per Section 5.5 the simulation is graph-free: present n distinct elements
in arrival order and estimate the prefix cardinality at log-spaced
checkpoints.  The per-run estimators here are numpy fast paths
(prefix-minima and event compression); tests assert they agree with the
library's object-level implementations element for element.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._util import log_spaced_checkpoints, require
from repro.estimators.bounds import (
    basic_cv_upper_bound,
    basic_mre_kmins_approx,
    hip_cv_upper_bound,
    hip_mre_reference,
)
from repro.estimators.permutation import PermutationCardinalityEstimator

ALL_ESTIMATORS = (
    "kmins_basic",
    "kpartition_basic",
    "bottomk_basic",
    "bottomk_hip",
    "permutation",
)


@dataclass
class Fig2Config:
    """One panel of Figure 2."""

    k: int
    runs: int
    max_n: int
    seed: int = 0
    checkpoints_per_decade: int = 8
    estimators: Tuple[str, ...] = ALL_ESTIMATORS

    def __post_init__(self) -> None:
        require(self.k >= 3, f"Figure 2 needs k >= 3, got {self.k}")
        require(self.runs >= 1, "runs must be >= 1")
        require(self.max_n >= self.k, "max_n must be >= k")
        unknown = set(self.estimators) - set(ALL_ESTIMATORS)
        require(not unknown, f"unknown estimators: {sorted(unknown)}")


#: The paper's exact panel parameters.
PAPER_FIG2_PANELS = (
    Fig2Config(k=5, runs=1000, max_n=10_000),
    Fig2Config(k=10, runs=500, max_n=10_000),
    Fig2Config(k=50, runs=250, max_n=50_000),
)


@dataclass
class Fig2Result:
    config: Fig2Config
    checkpoints: List[int]
    nrmse: Dict[str, List[float]]
    mre: Dict[str, List[float]]
    references: Dict[str, float] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Per-run estimate series (one value per checkpoint)
# ----------------------------------------------------------------------
def kmins_estimates(
    rank_matrix: np.ndarray, checkpoints: Sequence[int]
) -> np.ndarray:
    """Basic k-mins estimates at each checkpoint.

    *rank_matrix* has shape (n, k): element i's rank in permutation h.
    """
    k = rank_matrix.shape[1]
    prefix_min = np.minimum.accumulate(rank_matrix, axis=0)
    out = np.empty(len(checkpoints))
    for j, c in enumerate(checkpoints):
        x = prefix_min[c - 1]
        out[j] = (k - 1) / float(np.sum(-np.log1p(-x)))
    return out


def kpartition_estimates(
    ranks: np.ndarray,
    buckets: np.ndarray,
    k: int,
    checkpoints: Sequence[int],
) -> np.ndarray:
    """Basic k-partition estimates at each checkpoint (Section 4.3)."""
    positions: List[np.ndarray] = []
    running_minima: List[np.ndarray] = []
    for h in range(k):
        idx = np.flatnonzero(buckets == h)
        positions.append(idx)
        running_minima.append(
            np.minimum.accumulate(ranks[idx]) if idx.size else np.empty(0)
        )
    out = np.empty(len(checkpoints))
    for j, c in enumerate(checkpoints):
        total = 0.0
        k_prime = 0
        for h in range(k):
            pos = np.searchsorted(positions[h], c, side="left") - 1
            if pos >= 0:
                k_prime += 1
                total += -math.log1p(-float(running_minima[h][pos]))
        if k_prime <= 1 or total <= 0.0:
            out[j] = float(k_prime)
        else:
            out[j] = k_prime * (k_prime - 1) / total
    return out


def bottomk_basic_estimates(
    ranks: np.ndarray, k: int, checkpoints: Sequence[int]
) -> np.ndarray:
    """Basic bottom-k estimates at each checkpoint (exact below k)."""
    out = np.empty(len(checkpoints))
    for j, c in enumerate(checkpoints):
        if c < k:
            out[j] = float(c)
        else:
            tau = float(np.partition(ranks[:c], k - 1)[k - 1])
            out[j] = (k - 1) / tau
    return out


def bottomk_hip_estimates(
    ranks: np.ndarray, k: int, checkpoints: Sequence[int]
) -> np.ndarray:
    """Bottom-k HIP estimates at each checkpoint (event replay)."""
    values = ranks.tolist()
    heap: List[float] = []  # max-heap (negated) of the k smallest ranks
    estimate = 0.0
    out = np.empty(len(checkpoints))
    cp_index = 0
    total_cp = len(checkpoints)
    for i, r in enumerate(values, start=1):
        if len(heap) < k:
            estimate += 1.0
            heapq.heappush(heap, -r)
        else:
            tau = -heap[0]
            if r < tau:
                estimate += 1.0 / tau
                heapq.heapreplace(heap, -r)
        while cp_index < total_cp and checkpoints[cp_index] == i:
            out[cp_index] = estimate
            cp_index += 1
    return out


def permutation_estimates(
    sigma: np.ndarray, k: int, n: int, checkpoints: Sequence[int]
) -> np.ndarray:
    """Permutation-estimator values at each checkpoint (Section 5.4)."""
    estimator = PermutationCardinalityEstimator(k, n=n)
    out = np.empty(len(checkpoints))
    cp_index = 0
    total_cp = len(checkpoints)
    for i, rank in enumerate(sigma.tolist(), start=1):
        estimator.add_rank(int(rank))
        while cp_index < total_cp and checkpoints[cp_index] == i:
            out[cp_index] = estimator.estimate()
            cp_index += 1
    return out


# ----------------------------------------------------------------------
# Panel runner
# ----------------------------------------------------------------------
def run_figure2(config: Fig2Config) -> Fig2Result:
    """Run one panel: all configured estimators, all runs, all checkpoints."""
    checkpoints = log_spaced_checkpoints(
        config.max_n, config.checkpoints_per_decade
    )
    names = list(config.estimators)
    sq_err = {name: np.zeros(len(checkpoints)) for name in names}
    abs_err = {name: np.zeros(len(checkpoints)) for name in names}

    truth = np.array(checkpoints, dtype=float)
    for run in range(config.runs):
        rng = np.random.RandomState(config.seed + 1_000_003 * run)
        estimates: Dict[str, np.ndarray] = {}
        if "kmins_basic" in names:
            matrix = rng.random_sample((config.max_n, config.k))
            estimates["kmins_basic"] = kmins_estimates(matrix, checkpoints)
        if {"kpartition_basic", "bottomk_basic", "bottomk_hip"} & set(names):
            ranks = rng.random_sample(config.max_n)
            if "kpartition_basic" in names:
                buckets = rng.randint(0, config.k, size=config.max_n)
                estimates["kpartition_basic"] = kpartition_estimates(
                    ranks, buckets, config.k, checkpoints
                )
            if "bottomk_basic" in names:
                estimates["bottomk_basic"] = bottomk_basic_estimates(
                    ranks, config.k, checkpoints
                )
            if "bottomk_hip" in names:
                estimates["bottomk_hip"] = bottomk_hip_estimates(
                    ranks, config.k, checkpoints
                )
        if "permutation" in names:
            sigma = rng.permutation(config.max_n) + 1
            estimates["permutation"] = permutation_estimates(
                sigma, config.k, config.max_n, checkpoints
            )
        for name in names:
            relative = estimates[name] / truth - 1.0
            sq_err[name] += relative**2
            abs_err[name] += np.abs(relative)

    nrmse = {
        name: list(np.sqrt(sq_err[name] / config.runs)) for name in names
    }
    mre = {name: list(abs_err[name] / config.runs) for name in names}
    references = {
        "basic_cv_ub": basic_cv_upper_bound(config.k),
        "hip_cv_ub": hip_cv_upper_bound(config.k),
        "basic_mre_ub": basic_mre_kmins_approx(config.k),
        "hip_mre_ref": hip_mre_reference(config.k),
    }
    return Fig2Result(
        config=config,
        checkpoints=list(checkpoints),
        nrmse=nrmse,
        mre=mre,
        references=references,
    )
