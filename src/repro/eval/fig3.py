"""Figure 3: HIP vs HyperLogLog distinct counting on the same sketch.

Panels k in {16, 32, 64}, 5-bit saturating base-2 registers, cardinalities
up to 10^6: the raw HLL estimator, the bias-corrected HLL estimator (with
the small-range linear-counting patch), and the HIP estimator running on
the identical register array, plus the analytic HIP line
sqrt((b+1)/(4(k-1))).

The fast path compresses each run to its O(k log n) register-update
events: all three estimators' inputs (sum of 2^-M over all registers, the
zero-register count, and the non-saturated threshold sum) change only at
events, so a run over 10^6 elements costs one numpy pass plus a few
hundred Python steps.  Tests assert exact agreement with the object-level
HyperLogLog / HipDistinctCounter implementations fed the same values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._util import log_spaced_checkpoints, require
from repro.estimators.bounds import hip_base_b_cv
from repro.sketches.hll import hll_alpha

ALL_SERIES = ("hll_raw", "hll", "hip")


@dataclass
class Fig3Config:
    """One panel of Figure 3."""

    k: int
    runs: int
    max_n: int
    register_bits: int = 5
    seed: int = 0
    checkpoints_per_decade: int = 6

    def __post_init__(self) -> None:
        require(self.k >= 2, f"k must be >= 2, got {self.k}")
        require(self.runs >= 1, "runs must be >= 1")
        require(self.max_n >= 1, "max_n must be >= 1")
        require(self.register_bits >= 1, "register_bits must be >= 1")


#: The paper's exact panel parameters.
PAPER_FIG3_PANELS = (
    Fig3Config(k=16, runs=5000, max_n=1_000_000),
    Fig3Config(k=32, runs=5000, max_n=1_000_000),
    Fig3Config(k=64, runs=2000, max_n=1_000_000),
)


@dataclass
class Fig3Result:
    config: Fig3Config
    checkpoints: List[int]
    nrmse: Dict[str, List[float]]
    mre: Dict[str, List[float]]
    references: Dict[str, float] = field(default_factory=dict)


def registers_from_uniform(u: np.ndarray, max_register: int) -> np.ndarray:
    """h = min(max_register, ceil(-log2 u)) -- Algorithm 3's hash step."""
    h = np.ceil(-np.log2(u)).astype(np.int64)
    np.clip(h, 1, max_register, out=h)
    return h


def simulate_run(
    h_values: np.ndarray,
    buckets: np.ndarray,
    k: int,
    max_register: int,
    checkpoints: Sequence[int],
) -> Dict[str, np.ndarray]:
    """One stream replayed through all three estimators.

    *h_values* and *buckets* are per-element register values and bucket
    indices (this explicit-input form is what the tests drive with
    hash-family data to prove equality with the sketch objects).

    Returns arrays of estimates per checkpoint for 'hll_raw', 'hll', 'hip'.
    """
    n = len(h_values)
    alpha = hll_alpha(k)
    # Event extraction: per bucket, strictly-increasing running maxima.
    events: List[Tuple[int, int, int, int]] = []  # (position, bucket, old, new)
    for bucket in range(k):
        idx = np.flatnonzero(buckets == bucket)
        if idx.size == 0:
            continue
        values = h_values[idx]
        running = np.maximum.accumulate(values)
        previous = np.concatenate(([0], running[:-1]))
        hits = np.flatnonzero(values > previous)
        for j in hits:
            events.append(
                (int(idx[j]), bucket, int(previous[j]), int(values[j]))
            )
    events.sort()

    # Replay: maintain sum_full = sum over ALL registers of 2^-M (HLL raw),
    # zeros = #untouched registers (HLL small-range), and sum_live = sum
    # over non-saturated registers of 2^-M (the HIP update probability
    # times k).  All change only at events.
    sum_full = float(k)
    sum_live = float(k)
    zeros = k
    hip_count = 0.0
    out = {name: np.empty(len(checkpoints)) for name in ALL_SERIES}
    cp_index = 0
    total_cp = len(checkpoints)

    def record_until(position: int) -> None:
        """Emit estimates for all checkpoints strictly before *position*."""
        nonlocal cp_index
        while cp_index < total_cp and checkpoints[cp_index] <= position:
            raw = alpha * k * k / sum_full
            corrected = raw
            if raw <= 2.5 * k and zeros > 0:
                corrected = k * math.log(k / zeros)
            out["hll_raw"][cp_index] = raw
            out["hll"][cp_index] = corrected
            out["hip"][cp_index] = hip_count
            cp_index += 1

    for position, bucket, old, new in events:
        record_until(position)  # checkpoints before this element arrives
        if sum_live > 0.0:
            hip_count += k / sum_live
        sum_full += 2.0 ** (-new) - 2.0 ** (-old)
        if old == 0:
            zeros -= 1
        sum_live += (2.0 ** (-new) if new < max_register else 0.0) - (
            2.0 ** (-old)
        )
    record_until(n)
    return out


def run_figure3(config: Fig3Config) -> Fig3Result:
    """Run one panel: all runs, all checkpoints, all three estimators."""
    checkpoints = log_spaced_checkpoints(
        config.max_n, config.checkpoints_per_decade
    )
    max_register = (1 << config.register_bits) - 1
    sq_err = {name: np.zeros(len(checkpoints)) for name in ALL_SERIES}
    abs_err = {name: np.zeros(len(checkpoints)) for name in ALL_SERIES}
    truth = np.array(checkpoints, dtype=float)
    for run in range(config.runs):
        rng = np.random.RandomState(config.seed + 999_983 * run)
        u = rng.random_sample(config.max_n)
        np.clip(u, 1e-300, None, out=u)
        h_values = registers_from_uniform(u, max_register)
        buckets = rng.randint(0, config.k, size=config.max_n)
        estimates = simulate_run(
            h_values, buckets, config.k, max_register, checkpoints
        )
        for name in ALL_SERIES:
            relative = estimates[name] / truth - 1.0
            sq_err[name] += relative**2
            abs_err[name] += np.abs(relative)
    nrmse = {
        name: list(np.sqrt(sq_err[name] / config.runs))
        for name in ALL_SERIES
    }
    mre = {name: list(abs_err[name] / config.runs) for name in ALL_SERIES}
    references = {
        "hip_base2_cv": hip_base_b_cv(config.k, 2.0),
        "hll_reference": 1.08 / math.sqrt(config.k),
        "hip_large_n": math.sqrt(3.0 / (4.0 * config.k)),
    }
    return Fig3Result(
        config=config,
        checkpoints=list(checkpoints),
        nrmse=nrmse,
        mre=mre,
        references=references,
    )
