"""Empirical error metrics used throughout the evaluation.

The paper reports the Normalized Root Mean Square Error (NRMSE), which
equals the CV for unbiased estimators, and the Mean Relative Error (MRE),
``E|n - n_hat| / n`` (Section 5.5).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import ParameterError


def _check(estimates: Sequence[float], truth: float) -> None:
    if truth <= 0:
        raise ParameterError(f"truth must be positive, got {truth}")
    if not estimates:
        raise ParameterError("estimates must be non-empty")


def nrmse(estimates: Sequence[float], truth: float) -> float:
    """sqrt(E[(n_hat - n)^2]) / n."""
    _check(estimates, truth)
    mean_square = sum((e - truth) ** 2 for e in estimates) / len(estimates)
    return math.sqrt(mean_square) / truth


def mean_relative_error(estimates: Sequence[float], truth: float) -> float:
    """E[|n_hat - n|] / n."""
    _check(estimates, truth)
    return sum(abs(e - truth) for e in estimates) / (len(estimates) * truth)


def relative_bias(estimates: Sequence[float], truth: float) -> float:
    """(E[n_hat] - n) / n; ~0 for unbiased estimators."""
    _check(estimates, truth)
    return sum(estimates) / len(estimates) / truth - 1.0


def error_summary(estimates: Sequence[float], truth: float) -> Dict[str, float]:
    """All three metrics in one dict (keys: nrmse, mre, bias)."""
    return {
        "nrmse": nrmse(estimates, truth),
        "mre": mean_relative_error(estimates, truth),
        "bias": relative_bias(estimates, truth),
    }
