"""Plain-text rendering of figure/table series (no plotting dependency).

Every bench prints its series through :func:`render_table`, producing the
same rows the paper plots; EXPERIMENTS.md embeds these tables.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    columns: Dict[str, Sequence[float]],
    precision: int = 4,
    notes: Optional[str] = None,
) -> str:
    """Render aligned columns: one row per x value, one column per series."""
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(x_values):
            raise ValueError(
                f"column {name!r} has {len(columns[name])} values for "
                f"{len(x_values)} x points"
            )
    width = max(12, precision + 6)
    header_cells = [f"{x_label:>10}"] + [f"{n:>{width}}" for n in names]
    lines = [title, "-" * len(title), "".join(header_cells)]
    for i, x in enumerate(x_values):
        cells = [f"{x:>10}"]
        for name in names:
            value = columns[name][i]
            if value is None:
                cells.append(f"{'-':>{width}}")
            else:
                cells.append(f"{value:>{width}.{precision}f}")
        lines.append("".join(cells))
    if notes:
        lines.append(notes)
    return "\n".join(lines) + "\n"
