"""Validation tables for the paper's lemmas and in-text constants.

Beyond the two figures, the paper makes quantitative claims we reproduce
as tables:

* Lemma 2.2 -- expected ADS sizes k + k(H_n - H_k) and k H_{n/k};
* Section 6 -- NRMSE constants: HLL ~ 1.08/sqrt(k) vs HIP ~ 0.866/sqrt(k),
  and base-sqrt(2) HIP ~ 0.777/sqrt(k);
* Section 5.6 -- base-b rounding inflates HIP variance by ~(1+b)/2;
* Section 7 -- Morris counters stay unbiased under weighted updates with
  relative error scale ~sqrt(b-1);
* Section 5.1 / intro -- HIP vs the naive reachable-set estimator for
  concentrated Q_g statistics (up to n/k variance gap).
"""

from __future__ import annotations

import heapq
import math
import statistics
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro._util import require
from repro.counters.morris import MorrisCounter
from repro.estimators.bounds import (
    expected_ads_size_bottomk,
    expected_ads_size_kpartition,
    hip_base_b_cv,
)


# ----------------------------------------------------------------------
# Lemma 2.2: expected ADS sizes
# ----------------------------------------------------------------------
def ads_size_table(
    n_values: Sequence[int],
    k_values: Sequence[int],
    runs: int = 200,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Measured vs predicted E|ADS| for bottom-k and k-partition flavors.

    Uses the stream equivalence (Section 5.5): the ADS of a node with n
    reachable nodes has the same size distribution as the update history
    of a MinHash sketch fed n distinct elements.
    """
    rows: List[Dict[str, float]] = []
    for k in k_values:
        for n in n_values:
            bottomk_sizes = np.zeros(runs)
            kpart_sizes = np.zeros(runs)
            for run in range(runs):
                rng = np.random.RandomState(seed + 7919 * run + k)
                ranks = rng.random_sample(n)
                # bottom-k: count prefix-bottom-k membership events.
                heap: List[float] = []
                count = 0
                for r in ranks.tolist():
                    if len(heap) < k:
                        heapq.heappush(heap, -r)
                        count += 1
                    elif r < -heap[0]:
                        heapq.heapreplace(heap, -r)
                        count += 1
                bottomk_sizes[run] = count
                # k-partition: per-bucket strict running-minimum events.
                buckets = rng.randint(0, k, size=n)
                minima = np.ones(k)
                count = 0
                for b, r in zip(buckets.tolist(), ranks.tolist()):
                    if r < minima[b]:
                        minima[b] = r
                        count += 1
                kpart_sizes[run] = count
            rows.append(
                {
                    "k": k,
                    "n": n,
                    "bottomk_measured": float(bottomk_sizes.mean()),
                    "bottomk_predicted": expected_ads_size_bottomk(n, k),
                    "kpartition_measured": float(kpart_sizes.mean()),
                    "kpartition_predicted": expected_ads_size_kpartition(n, k),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section 6 constants: HLL vs HIP, and base-b HIP counters
# ----------------------------------------------------------------------
def simulate_hip_base_b(
    u: np.ndarray,
    buckets: np.ndarray,
    k: int,
    base: float,
    max_register: int,
) -> float:
    """Final HIP estimate on a k-partition base-*b* sketch (one run)."""
    registers = np.zeros(k, dtype=np.int64)
    h_values = np.ceil(-np.log(u) / math.log(base)).astype(np.int64)
    np.clip(h_values, 1, max_register, out=h_values)
    sum_live = float(k)  # sum over non-saturated buckets of base^-M
    count = 0.0
    for b, h in zip(buckets.tolist(), h_values.tolist()):
        old = registers[b]
        if h <= old:
            continue
        if sum_live > 0.0:
            count += k / sum_live
        registers[b] = h
        sum_live += (base ** (-h) if h < max_register else 0.0) - base ** (
            -old
        )
    return count


def distinct_counter_constants_table(
    k_values: Sequence[int],
    n: int = 100_000,
    runs: int = 100,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """NRMSE * sqrt(k) of HLL and of HIP at base 2 and base sqrt(2),
    against the paper's constants 1.08, 0.866, and 0.777."""
    from repro.eval.fig3 import registers_from_uniform, simulate_run

    rows: List[Dict[str, float]] = []
    for k in k_values:
        errors: Dict[str, List[float]] = {
            "hll": [], "hip_b2": [], "hip_bsqrt2": []
        }
        for run in range(runs):
            rng = np.random.RandomState(seed + 104_729 * run + k)
            u = rng.random_sample(n)
            np.clip(u, 1e-300, None, out=u)
            buckets = rng.randint(0, k, size=n)
            h_values = registers_from_uniform(u, 31)
            est = simulate_run(h_values, buckets, k, 31, [n])
            errors["hll"].append(float(est["hll"][0]) / n - 1.0)
            errors["hip_b2"].append(float(est["hip"][0]) / n - 1.0)
            # base sqrt(2): 6-bit registers keep the same saturation point.
            hip_sqrt2 = simulate_hip_base_b(
                u, buckets, k, math.sqrt(2.0), 63
            )
            errors["hip_bsqrt2"].append(hip_sqrt2 / n - 1.0)
        row: Dict[str, float] = {"k": k, "n": n}
        for name, errs in errors.items():
            row[f"{name}_nrmse_sqrtk"] = math.sqrt(
                sum(e * e for e in errs) / len(errs)
            ) * math.sqrt(k)
        row["paper_hll"] = 1.08
        row["paper_hip_b2"] = math.sqrt(3.0 / 4.0) / math.sqrt((k - 1) / k)
        row["paper_hip_bsqrt2"] = math.sqrt(
            (1 + math.sqrt(2.0)) / 4.0
        ) / math.sqrt((k - 1) / k)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Section 5.6: base-b rounding variance factor for ADS HIP
# ----------------------------------------------------------------------
def baseb_variance_table(
    k: int,
    bases: Sequence[float],
    n: int = 20_000,
    runs: int = 150,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Measured CV of bottom-k HIP with base-b rounded ranks vs the
    analytic sqrt((1+b)/(4(k-1))) (full ranks correspond to b -> 1)."""
    rows: List[Dict[str, float]] = []
    for base in bases:
        errors: List[float] = []
        for run in range(runs):
            rng = np.random.RandomState(seed + 65_537 * run)
            u = rng.random_sample(n)
            np.clip(u, 1e-300, None, out=u)
            if base > 1.0:
                h = np.ceil(-np.log(u) / math.log(base)).astype(np.int64)
                np.clip(h, 1, None, out=h)
                ranks = np.asarray(base, dtype=float) ** (-h)
            else:
                ranks = u
            heap: List[float] = []
            estimate = 0.0
            for r in ranks.tolist():
                if len(heap) < k:
                    estimate += 1.0
                    heapq.heappush(heap, -r)
                else:
                    tau = -heap[0]
                    if r < tau:
                        estimate += 1.0 / tau
                        heapq.heapreplace(heap, -r)
            errors.append(estimate / n - 1.0)
        measured = math.sqrt(sum(e * e for e in errors) / len(errors))
        predicted = (
            hip_base_b_cv(k, base)
            if base > 1.0
            else 1.0 / math.sqrt(2.0 * (k - 1))
        )
        rows.append(
            {
                "base": base,
                "k": k,
                "measured_cv": measured,
                "predicted_cv": predicted,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 7: Morris counters
# ----------------------------------------------------------------------
def morris_counter_table(
    bases: Sequence[float],
    total: int = 10_000,
    runs: int = 400,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Bias and CV of Morris counters under unit and weighted updates."""
    rows: List[Dict[str, float]] = []
    for base in bases:
        unit_estimates: List[float] = []
        weighted_estimates: List[float] = []
        for run in range(runs):
            counter = MorrisCounter(b=base, seed=seed + 31 * run)
            for _ in range(total):
                counter.increment()
            unit_estimates.append(counter.estimate())
            counter = MorrisCounter(b=base, seed=seed + 31 * run + 7)
            remaining = float(total)
            step = max(1.0, total / 64.0)
            while remaining > 0:
                amount = min(step, remaining)
                counter.add(amount)
                remaining -= amount
            weighted_estimates.append(counter.estimate())
        rows.append(
            {
                "base": base,
                "total": total,
                "unit_bias": statistics.mean(unit_estimates) / total - 1.0,
                "unit_cv": statistics.pstdev(unit_estimates) / total,
                "weighted_bias": statistics.mean(weighted_estimates) / total
                - 1.0,
                "weighted_cv": statistics.pstdev(weighted_estimates) / total,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Intro / Section 5.1: HIP vs the naive reachable-set estimator for Q_g
# ----------------------------------------------------------------------
def qg_variance_table(
    graph,
    k: int,
    g: Callable,
    exact_fn: Callable,
    node_sample: Sequence,
    seeds: Sequence[int],
) -> Dict[str, float]:
    """Empirical MSE of HIP vs naive Q_g estimation over hash seeds.

    *exact_fn(node)* must return the exact Q_g value; the table reports
    relative MSE of both estimators averaged over the node sample.
    """
    from repro.ads import build_ads_set
    from repro.rand.hashing import HashFamily

    hip_sq = 0.0
    naive_sq = 0.0
    samples = 0
    for seed in seeds:
        ads_set = build_ads_set(graph, k, family=HashFamily(seed))
        for node in node_sample:
            exact = float(exact_fn(node))
            if exact <= 0.0:
                continue
            hip_est = ads_set[node].q_statistic(g)
            naive_est = ads_set[node].naive_q_statistic(g)
            hip_sq += (hip_est / exact - 1.0) ** 2
            naive_sq += (naive_est / exact - 1.0) ** 2
            samples += 1
    require(samples > 0, "no usable (node, seed) samples")
    return {
        "k": k,
        "samples": samples,
        "hip_nrmse": math.sqrt(hip_sq / samples),
        "naive_nrmse": math.sqrt(naive_sq / samples),
        "variance_ratio": naive_sq / hip_sq if hip_sq > 0 else float("inf"),
    }
