"""Graph substrate: adjacency-list graphs, traversal, exact ground truth.

The paper's sketches summarise the shortest-path distance relation of a
graph; this subpackage supplies that substrate from scratch -- a compact
adjacency-list :class:`~repro.graph.digraph.Graph`, BFS / Dijkstra /
Bellman-Ford traversals, exact distance-based statistics used as ground
truth in tests and benchmarks, seeded random-graph generators for
workloads, and edge-list IO.
"""

from repro.graph.csr import (
    CSRGraph,
    NodeInterner,
    csr_bfs_distances,
    csr_dijkstra_distances,
)
from repro.graph.digraph import Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    figure1_ranks,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.properties import (
    closeness_centrality_exact,
    distance_distribution,
    exact_neighborhood_function,
    effective_diameter,
    graph_diameter,
    harmonic_centrality_exact,
    neighborhood_cardinality,
    reachable_set,
)
from repro.graph.traversal import (
    bellman_ford_distances,
    bfs_distances,
    dijkstra_distances,
    dijkstra_order,
    single_source_distances,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "NodeInterner",
    "csr_bfs_distances",
    "csr_dijkstra_distances",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "gnp_random_graph",
    "barabasi_albert_graph",
    "random_geometric_graph",
    "random_tree",
    "figure1_graph",
    "figure1_ranks",
    "read_edge_list",
    "write_edge_list",
    "bfs_distances",
    "dijkstra_distances",
    "bellman_ford_distances",
    "single_source_distances",
    "dijkstra_order",
    "exact_neighborhood_function",
    "neighborhood_cardinality",
    "distance_distribution",
    "reachable_set",
    "graph_diameter",
    "effective_diameter",
    "closeness_centrality_exact",
    "harmonic_centrality_exact",
]
