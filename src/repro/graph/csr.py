"""Compact integer-ID graph backend: interning plus CSR adjacency.

The adjacency-dict :class:`~repro.graph.digraph.Graph` is convenient but
every traversal pays dictionary hashing and per-call list allocation, and
every stored neighbour is a boxed Python object.  For the paper's target
workloads (Section 6 runs graphs with billions of edges) the useful
representation is the one every large-graph system converges on: intern
node labels to dense integers ``0..n-1`` and store the adjacency as three
flat arrays in Compressed Sparse Row form --

* ``indptr``  (n+1 ints): node i's out-edges live at ``indptr[i]:indptr[i+1]``;
* ``indices`` (m ints):   the target node id of each edge slot;
* ``weights`` (m floats): edge weights, omitted entirely when every
  weight is 1 (the unweighted fast path).

A :class:`CSRGraph` keeps *both* the forward arrays and the transpose
arrays (undirected graphs share the same objects), because PRUNEDDIJKSTRA
scans on G^T and the DP builder propagates along in-edges: ``transpose()``
is an O(1) array swap, not a copy.

The mapping between user-facing labels and ids is a :class:`NodeInterner`;
ids are assigned in first-seen order, so a ``Graph`` converted with
``to_csr()`` numbers nodes in insertion order.  All label-level methods
(``out_neighbors``, ``edges`` ...) mirror the ``Graph`` API so estimator
code and the CLI can treat the two backends interchangeably.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node, float]


class NodeInterner:
    """Bijection between arbitrary hashable node labels and ids 0..n-1.

    Ids are dense and assigned in first-seen order, which makes them
    usable directly as indices into the flat per-node arrays every CSR
    algorithm allocates.
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self, labels: Iterable[Node] = ()):
        self._ids: Dict[Node, int] = {}
        self._labels: List[Node] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Node) -> int:
        """Return the id of *label*, assigning the next free id if new."""
        existing = self._ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._ids[label] = new_id
        self._labels.append(label)
        return new_id

    def id_of(self, label: Node) -> int:
        try:
            return self._ids[label]
        except KeyError:
            raise GraphError(f"node {label!r} is not in the graph")

    def label_of(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self._labels):
            raise GraphError(f"node id {node_id} outside [0, {len(self)})")
        return self._labels[node_id]

    def labels(self) -> List[Node]:
        """All labels in id order (id ``i`` maps to ``labels()[i]``)."""
        return list(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Node) -> bool:
        return label in self._ids

    def __repr__(self) -> str:
        return f"NodeInterner(n={len(self)})"


def _pack_adjacency(
    adjacency: Sequence[Dict[int, float]],
) -> Tuple[array, array, Optional[array]]:
    """Pack per-node ``{target_id: weight}`` dicts into CSR arrays.

    Returns ``(indptr, indices, weights)`` with ``weights`` None when all
    weights are 1 (the unweighted representation).
    """
    indptr = array("q", [0])
    indices = array("q")
    weights = array("d")
    weighted = False
    total = 0
    for targets in adjacency:
        total += len(targets)
        indptr.append(total)
        for target, weight in targets.items():
            indices.append(target)
            weights.append(weight)
            if weight != 1.0:
                weighted = True
    return indptr, indices, (weights if weighted else None)


def _transpose_arrays(
    n: int, indptr: array, indices: array, weights: Optional[array]
) -> Tuple[array, array, Optional[array]]:
    """Counting-sort transpose of a CSR adjacency."""
    in_degree = [0] * n
    for target in indices:
        in_degree[target] += 1
    t_indptr = array("q", [0] * (n + 1))
    running = 0
    for i in range(n):
        t_indptr[i + 1] = running = running + in_degree[i]
    cursor = list(t_indptr[:n])
    t_indices = array("q", bytes(8 * len(indices)))
    t_weights = array("d", bytes(8 * len(indices))) if weights is not None else None
    for source in range(n):
        for slot in range(indptr[source], indptr[source + 1]):
            target = indices[slot]
            position = cursor[target]
            cursor[target] = position + 1
            t_indices[position] = source
            if t_weights is not None:
                t_weights[position] = weights[slot]
    return t_indptr, t_indices, t_weights


class CSRGraph:
    """Array-backed graph over dense integer node ids.

    Construct with :meth:`from_edges` / :meth:`from_graph` (or
    ``Graph.to_csr()``); the raw constructor wires pre-packed arrays and
    is what :meth:`transpose` uses to build an O(1) view.

    Semantics match :class:`~repro.graph.digraph.Graph`: no self-loops,
    positive weights, parallel edges collapse to the minimum weight, and
    an undirected edge is stored in both adjacency rows but counted once
    by :attr:`num_edges`.
    """

    __slots__ = (
        "directed",
        "interner",
        "_indptr",
        "_indices",
        "_weights",
        "_t_indptr",
        "_t_indices",
        "_t_weights",
        "_num_edges",
        "_t_adjacency_cache",
        "_transpose_view",
    )

    def __init__(
        self,
        directed: bool,
        interner: NodeInterner,
        indptr: array,
        indices: array,
        weights: Optional[array],
        t_indptr: array,
        t_indices: array,
        t_weights: Optional[array],
        num_edges: int,
    ):
        self.directed = bool(directed)
        self.interner = interner
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._t_indptr = t_indptr
        self._t_indices = t_indices
        self._t_weights = t_weights
        self._num_edges = int(num_edges)
        self._t_adjacency_cache = None
        self._transpose_view = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple],
        directed: bool = False,
        nodes: Iterable[Node] = (),
    ) -> "CSRGraph":
        """Build from ``(u, v)`` / ``(u, v, weight)`` tuples.

        *nodes* pre-interns labels (useful for isolated nodes or to pin
        the id order); edge endpoints are interned in first-seen order
        after that.
        """
        interner = NodeInterner(nodes)
        adjacency: List[Dict[int, float]] = [dict() for _ in range(len(interner))]

        def _ensure(label: Node) -> int:
            node_id = interner.intern(label)
            while len(adjacency) < len(interner):
                adjacency.append(dict())
            return node_id

        num_edges = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1.0
            elif len(edge) == 3:
                u, v = edge[0], edge[1]
                w = float(edge[2])
            else:
                raise GraphError(f"edge tuple must have 2 or 3 fields: {edge!r}")
            if u == v:
                raise GraphError(f"self-loop on node {u!r} is not allowed")
            if not w > 0.0:
                raise GraphError(f"edge weight must be positive, got {w}")
            uid, vid = _ensure(u), _ensure(v)
            existing = adjacency[uid].get(vid)
            if existing is None:
                num_edges += 1
            elif existing <= w:
                continue
            adjacency[uid][vid] = w
            if not directed:
                adjacency[vid][uid] = w
        return cls._from_adjacency(directed, interner, adjacency, num_edges)

    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Convert an adjacency-dict :class:`Graph` (insertion-order ids)."""
        interner = NodeInterner(graph.nodes())
        adjacency: List[Dict[int, float]] = [dict() for _ in range(len(interner))]
        for u in graph.nodes():
            uid = interner.id_of(u)
            row = adjacency[uid]
            for v, w in graph.out_neighbors(u):
                row[interner.id_of(v)] = w
        return cls._from_adjacency(
            graph.directed, interner, adjacency, graph.num_edges
        )

    @classmethod
    def _from_adjacency(
        cls,
        directed: bool,
        interner: NodeInterner,
        adjacency: Sequence[Dict[int, float]],
        num_edges: int,
    ) -> "CSRGraph":
        indptr, indices, weights = _pack_adjacency(adjacency)
        if directed:
            t_indptr, t_indices, t_weights = _transpose_arrays(
                len(interner), indptr, indices, weights
            )
        else:
            t_indptr, t_indices, t_weights = indptr, indices, weights
        return cls(
            directed, interner, indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        )

    # ------------------------------------------------------------------
    # Array access (the contract hot paths build on)
    # ------------------------------------------------------------------
    def forward_arrays(self) -> Tuple[array, array, Optional[array]]:
        """``(indptr, indices, weights)``; weights is None when unweighted."""
        return self._indptr, self._indices, self._weights

    def transpose_arrays(self) -> Tuple[array, array, Optional[array]]:
        """The same three arrays for G^T (shared objects when undirected)."""
        return self._t_indptr, self._t_indices, self._t_weights

    def transpose_adjacency_lists(self) -> list:
        """Per-node transpose neighbor lists for scan-heavy cores, built
        once per graph and cached (the graph is immutable): a list of
        target-id lists when unweighted, of ``(target, weight)`` pair
        lists when weighted.  The ADS cores run one competition per
        permutation/bucket over the same arrays, so the O(m) unboxing
        must not be paid per run.
        """
        cached = self._t_adjacency_cache
        if cached is None:
            indptr = self._t_indptr.tolist()
            indices = self._t_indices.tolist()
            if self._t_weights is None:
                cached = [
                    indices[indptr[i]:indptr[i + 1]]
                    for i in range(self.num_nodes)
                ]
            else:
                weights = self._t_weights.tolist()
                cached = [
                    list(zip(indices[indptr[i]:indptr[i + 1]],
                             weights[indptr[i]:indptr[i + 1]]))
                    for i in range(self.num_nodes)
                ]
            self._t_adjacency_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Queries (Graph-compatible, label-level)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.interner)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def nodes(self) -> List[Node]:
        return self.interner.labels()

    def has_node(self, u: Node) -> bool:
        return u in self.interner

    def has_edge(self, u: Node, v: Node) -> bool:
        if u not in self.interner or v not in self.interner:
            return False
        uid, vid = self.interner.id_of(u), self.interner.id_of(v)
        for slot in range(self._indptr[uid], self._indptr[uid + 1]):
            if self._indices[slot] == vid:
                return True
        return False

    def edge_weight(self, u: Node, v: Node) -> float:
        uid, vid = self.interner.id_of(u), self.interner.id_of(v)
        for slot in range(self._indptr[uid], self._indptr[uid + 1]):
            if self._indices[slot] == vid:
                return self._weights[slot] if self._weights is not None else 1.0
        raise GraphError(f"no edge {u!r} -> {v!r}")

    def out_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        uid = self.interner.id_of(u)
        label_of = self.interner.label_of
        lo, hi = self._indptr[uid], self._indptr[uid + 1]
        if self._weights is None:
            return [(label_of(self._indices[s]), 1.0) for s in range(lo, hi)]
        return [
            (label_of(self._indices[s]), self._weights[s]) for s in range(lo, hi)
        ]

    def in_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        uid = self.interner.id_of(u)
        label_of = self.interner.label_of
        lo, hi = self._t_indptr[uid], self._t_indptr[uid + 1]
        if self._t_weights is None:
            return [(label_of(self._t_indices[s]), 1.0) for s in range(lo, hi)]
        return [
            (label_of(self._t_indices[s]), self._t_weights[s])
            for s in range(lo, hi)
        ]

    def out_degree(self, u: Node) -> int:
        uid = self.interner.id_of(u)
        return self._indptr[uid + 1] - self._indptr[uid]

    def in_degree(self, u: Node) -> int:
        uid = self.interner.id_of(u)
        return self._t_indptr[uid + 1] - self._t_indptr[uid]

    def is_weighted(self) -> bool:
        return self._weights is not None

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(u, v, weight)``; each undirected edge appears once."""
        label_of = self.interner.label_of
        for uid in range(self.num_nodes):
            for slot in range(self._indptr[uid], self._indptr[uid + 1]):
                vid = self._indices[slot]
                if not self.directed and vid < uid:
                    continue  # the uid < vid orientation already yielded it
                w = self._weights[slot] if self._weights is not None else 1.0
                yield (label_of(uid), label_of(vid), w)

    # ------------------------------------------------------------------
    # Worker shipping (parallel ADS builds)
    # ------------------------------------------------------------------
    def to_arrays_payload(self) -> tuple:
        """The graph as a compact picklable tuple of its raw arrays.

        This is what the sharded ADS builder ships to worker processes:
        labels plus the six CSR arrays (``array`` objects pickle as raw
        bytes), *without* the derived adjacency-list cache, which each
        worker rebuilds lazily.  For undirected graphs the transpose
        entries are the same objects, and pickle's memo keeps them
        shared on the other side.
        """
        return (
            self.directed,
            self.interner.labels(),
            self._indptr,
            self._indices,
            self._weights,
            self._t_indptr,
            self._t_indices,
            self._t_weights,
            self._num_edges,
        )

    @classmethod
    def from_arrays_payload(cls, payload: tuple) -> "CSRGraph":
        """Rebuild a graph from :meth:`to_arrays_payload` (worker side)."""
        (
            directed, labels, indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        ) = payload
        return cls(
            directed, NodeInterner(labels), indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """G^T as an O(1) view: forward and transpose arrays swapped.

        The view is memoized (and points back at this graph), so
        repeated ``transpose()`` calls share one object -- and with it
        the lazily built adjacency-list cache.
        """
        view = self._transpose_view
        if view is None:
            view = CSRGraph(
                self.directed, self.interner,
                self._t_indptr, self._t_indices, self._t_weights,
                self._indptr, self._indices, self._weights,
                self._num_edges,
            )
            view._transpose_view = self
            self._transpose_view = view
        return view

    def to_graph(self):
        """Materialise an adjacency-dict :class:`Graph` (legacy backend)."""
        from repro.graph.digraph import Graph

        result = Graph(directed=self.directed)
        for label in self.nodes():
            result.add_node(label)
        for u, v, w in self.edges():
            result.add_edge(u, v, w)
        return result

    def __contains__(self, u: Node) -> bool:
        return u in self.interner

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, n={self.num_nodes}, m={self.num_edges})"


# ----------------------------------------------------------------------
# CSR-specialised traversal
# ----------------------------------------------------------------------
def csr_bfs_distance_list(graph: CSRGraph, source_id: int) -> List[float]:
    """Hop distances from id *source_id*; ``inf`` marks unreachable ids."""
    indptr, indices, _ = graph.forward_arrays()
    dist = [float("inf")] * graph.num_nodes
    dist[source_id] = 0.0
    frontier = [source_id]
    level = 0.0
    inf = float("inf")
    while frontier:
        level += 1.0
        nxt = []
        for u in frontier:
            for slot in range(indptr[u], indptr[u + 1]):
                v = indices[slot]
                if dist[v] == inf:
                    dist[v] = level
                    nxt.append(v)
        frontier = nxt
    return dist


def csr_dijkstra_distance_list(graph: CSRGraph, source_id: int) -> List[float]:
    """Weighted distances from id *source_id*; ``inf`` marks unreachable."""
    indptr, indices, weights = graph.forward_arrays()
    if weights is None:
        return csr_bfs_distance_list(graph, source_id)
    inf = float("inf")
    dist = [inf] * graph.num_nodes
    settled = [False] * graph.num_nodes
    heap: List[Tuple[float, int]] = [(0.0, source_id)]
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        dist[u] = d
        for slot in range(indptr[u], indptr[u + 1]):
            v = indices[slot]
            if not settled[v]:
                candidate = d + weights[slot]
                if candidate < dist[v]:
                    dist[v] = candidate
                    heappush(heap, (candidate, v))
    return dist


def _distance_dict(graph: CSRGraph, dist: List[float]) -> Dict[Node, float]:
    label_of = graph.interner.label_of
    inf = float("inf")
    return {
        label_of(i): d for i, d in enumerate(dist) if d != inf
    }


def csr_bfs_distances(graph: CSRGraph, source: Node) -> Dict[Node, float]:
    """Label-level BFS distances (API parity with ``bfs_distances``)."""
    sid = graph.interner.id_of(source)
    return _distance_dict(graph, csr_bfs_distance_list(graph, sid))


def csr_dijkstra_distances(graph: CSRGraph, source: Node) -> Dict[Node, float]:
    """Label-level Dijkstra distances (parity with ``dijkstra_distances``)."""
    sid = graph.interner.id_of(source)
    return _distance_dict(graph, csr_dijkstra_distance_list(graph, sid))
