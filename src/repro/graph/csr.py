"""Compact integer-ID graph backend: interning plus CSR adjacency.

The adjacency-dict :class:`~repro.graph.digraph.Graph` is convenient but
every traversal pays dictionary hashing and per-call list allocation, and
every stored neighbour is a boxed Python object.  For the paper's target
workloads (Section 6 runs graphs with billions of edges) the useful
representation is the one every large-graph system converges on: intern
node labels to dense integers ``0..n-1`` and store the adjacency as three
flat arrays in Compressed Sparse Row form --

* ``indptr``  (n+1 ints): node i's out-edges live at ``indptr[i]:indptr[i+1]``;
* ``indices`` (m ints):   the target node id of each edge slot;
* ``weights`` (m floats): edge weights, omitted entirely when every
  weight is 1 (the unweighted fast path).

A :class:`CSRGraph` keeps *both* the forward arrays and the transpose
arrays (undirected graphs share the same objects), because PRUNEDDIJKSTRA
scans on G^T and the DP builder propagates along in-edges: ``transpose()``
is an O(1) array swap, not a copy.

CSR arrays are immutable, but the *graph* no longer is: :meth:`add_edges`
absorbs edge arrivals into a small per-node overlay buffer (a dict of
pending arcs per endpoint) without touching the packed arrays, and the
graph re-CSRs itself periodically -- :meth:`consolidate` folds the buffer
back into fresh arrays, and runs automatically once the buffer outgrows a
fraction of the packed edge count.  Every label-level query
(``out_neighbors``, ``has_edge``, ``edges`` ...) merges the overlay on
the fly, so readers always see the up-to-date graph; the raw array
accessors (``forward_arrays`` ...) consolidate first, because the builder
cores they feed scan arrays, not overlays.

The mapping between user-facing labels and ids is a :class:`NodeInterner`;
ids are assigned in first-seen order, so a ``Graph`` converted with
``to_csr()`` numbers nodes in insertion order.  All label-level methods
(``out_neighbors``, ``edges`` ...) mirror the ``Graph`` API so estimator
code and the CLI can treat the two backends interchangeably.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node, float]


class NodeInterner:
    """Bijection between arbitrary hashable node labels and ids 0..n-1.

    Ids are dense and assigned in first-seen order, which makes them
    usable directly as indices into the flat per-node arrays every CSR
    algorithm allocates.
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self, labels: Iterable[Node] = ()):
        self._ids: Dict[Node, int] = {}
        self._labels: List[Node] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Node) -> int:
        """Return the id of *label*, assigning the next free id if new."""
        existing = self._ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._ids[label] = new_id
        self._labels.append(label)
        return new_id

    def id_of(self, label: Node) -> int:
        try:
            return self._ids[label]
        except KeyError:
            raise GraphError(f"node {label!r} is not in the graph")

    def label_of(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self._labels):
            raise GraphError(f"node id {node_id} outside [0, {len(self)})")
        return self._labels[node_id]

    def labels(self) -> List[Node]:
        """All labels in id order (id ``i`` maps to ``labels()[i]``)."""
        return list(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Node) -> bool:
        return label in self._ids

    def __repr__(self) -> str:
        return f"NodeInterner(n={len(self)})"


def _pack_adjacency(
    adjacency: Sequence[Dict[int, float]],
) -> Tuple[array, array, Optional[array]]:
    """Pack per-node ``{target_id: weight}`` dicts into CSR arrays.

    Returns ``(indptr, indices, weights)`` with ``weights`` None when all
    weights are 1 (the unweighted representation).
    """
    indptr = array("q", [0])
    indices = array("q")
    weights = array("d")
    weighted = False
    total = 0
    for targets in adjacency:
        total += len(targets)
        indptr.append(total)
        for target, weight in targets.items():
            indices.append(target)
            weights.append(weight)
            if weight != 1.0:
                weighted = True
    return indptr, indices, (weights if weighted else None)


def _transpose_arrays(
    n: int, indptr: array, indices: array, weights: Optional[array]
) -> Tuple[array, array, Optional[array]]:
    """Counting-sort transpose of a CSR adjacency."""
    in_degree = [0] * n
    for target in indices:
        in_degree[target] += 1
    t_indptr = array("q", [0] * (n + 1))
    running = 0
    for i in range(n):
        t_indptr[i + 1] = running = running + in_degree[i]
    cursor = list(t_indptr[:n])
    t_indices = array("q", bytes(8 * len(indices)))
    t_weights = array("d", bytes(8 * len(indices))) if weights is not None else None
    for source in range(n):
        for slot in range(indptr[source], indptr[source + 1]):
            target = indices[slot]
            position = cursor[target]
            cursor[target] = position + 1
            t_indices[position] = source
            if t_weights is not None:
                t_weights[position] = weights[slot]
    return t_indptr, t_indices, t_weights


class CSRGraph:
    """Array-backed graph over dense integer node ids.

    Construct with :meth:`from_edges` / :meth:`from_graph` (or
    ``Graph.to_csr()``); the raw constructor wires pre-packed arrays and
    is what :meth:`transpose` uses to build an O(1) view.

    Semantics match :class:`~repro.graph.digraph.Graph`: no self-loops,
    positive weights, parallel edges collapse to the minimum weight, and
    an undirected edge is stored in both adjacency rows but counted once
    by :attr:`num_edges`.
    """

    __slots__ = (
        "directed",
        "interner",
        "_indptr",
        "_indices",
        "_weights",
        "_t_indptr",
        "_t_indices",
        "_t_weights",
        "_num_edges",
        "_t_adjacency_cache",
        "_transpose_view",
        "_pending_out",
        "_pending_in",
        "_pending_meta",
        "_base_n",
    )

    def __init__(
        self,
        directed: bool,
        interner: NodeInterner,
        indptr: array,
        indices: array,
        weights: Optional[array],
        t_indptr: array,
        t_indices: array,
        t_weights: Optional[array],
        num_edges: int,
    ):
        self.directed = bool(directed)
        self.interner = interner
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._t_indptr = t_indptr
        self._t_indices = t_indices
        self._t_weights = t_weights
        self._num_edges = int(num_edges)
        self._t_adjacency_cache = None
        self._transpose_view = None
        # Pending-edge overlay: arcs accepted by add_edges but not yet
        # folded into the packed arrays.  For undirected graphs the two
        # dicts are the same object (an undirected arc is its own
        # reverse), mirroring the shared base arrays.  _pending_meta is
        # shared with the transpose view so edge counts and the
        # weighted flag stay consistent across both orientations.
        self._pending_out: Dict[int, Dict[int, float]] = {}
        self._pending_in: Dict[int, Dict[int, float]] = (
            {} if directed else self._pending_out
        )
        self._pending_meta: Dict[str, int] = {"edges": 0, "weighted": 0}
        self._base_n = len(indptr) - 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple],
        directed: bool = False,
        nodes: Iterable[Node] = (),
    ) -> "CSRGraph":
        """Build from ``(u, v)`` / ``(u, v, weight)`` tuples.

        *nodes* pre-interns labels (useful for isolated nodes or to pin
        the id order); edge endpoints are interned in first-seen order
        after that.
        """
        interner = NodeInterner(nodes)
        adjacency: List[Dict[int, float]] = [dict() for _ in range(len(interner))]

        def _ensure(label: Node) -> int:
            node_id = interner.intern(label)
            while len(adjacency) < len(interner):
                adjacency.append(dict())
            return node_id

        num_edges = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1.0
            elif len(edge) == 3:
                u, v = edge[0], edge[1]
                w = float(edge[2])
            else:
                raise GraphError(f"edge tuple must have 2 or 3 fields: {edge!r}")
            if u == v:
                raise GraphError(f"self-loop on node {u!r} is not allowed")
            if not w > 0.0:
                raise GraphError(f"edge weight must be positive, got {w}")
            uid, vid = _ensure(u), _ensure(v)
            existing = adjacency[uid].get(vid)
            if existing is None:
                num_edges += 1
            elif existing <= w:
                continue
            adjacency[uid][vid] = w
            if not directed:
                adjacency[vid][uid] = w
        return cls._from_adjacency(directed, interner, adjacency, num_edges)

    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Convert an adjacency-dict :class:`Graph` (insertion-order ids)."""
        interner = NodeInterner(graph.nodes())
        adjacency: List[Dict[int, float]] = [dict() for _ in range(len(interner))]
        for u in graph.nodes():
            uid = interner.id_of(u)
            row = adjacency[uid]
            for v, w in graph.out_neighbors(u):
                row[interner.id_of(v)] = w
        return cls._from_adjacency(
            graph.directed, interner, adjacency, graph.num_edges
        )

    @classmethod
    def _from_adjacency(
        cls,
        directed: bool,
        interner: NodeInterner,
        adjacency: Sequence[Dict[int, float]],
        num_edges: int,
    ) -> "CSRGraph":
        indptr, indices, weights = _pack_adjacency(adjacency)
        if directed:
            t_indptr, t_indices, t_weights = _transpose_arrays(
                len(interner), indptr, indices, weights
            )
        else:
            t_indptr, t_indices, t_weights = indptr, indices, weights
        return cls(
            directed, interner, indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        )

    # ------------------------------------------------------------------
    # Dynamic edges: the append buffer and its periodic re-CSR
    # ------------------------------------------------------------------
    @property
    def pending_edges(self) -> int:
        """Edges accepted by :meth:`add_edges` but not yet re-CSRed."""
        return self._pending_meta["edges"]

    def _current_weight(self, uid: int, vid: int) -> Optional[float]:
        """The weight of arc uid->vid right now (overlay wins), or None."""
        row = self._pending_out.get(uid)
        if row is not None and vid in row:
            return row[vid]
        if uid < self._base_n:
            for slot in range(self._indptr[uid], self._indptr[uid + 1]):
                if self._indices[slot] == vid:
                    return (
                        self._weights[slot]
                        if self._weights is not None else 1.0
                    )
        return None

    def add_edges(
        self,
        edges: Iterable[Tuple],
        auto_consolidate: bool = True,
    ) -> List[Tuple[int, int, float]]:
        """Absorb ``(u, v)`` / ``(u, v, weight)`` arrivals into the buffer.

        Semantics match :meth:`from_edges`: new labels are interned in
        first-seen order, self-loops and non-positive weights are
        :class:`GraphError`, and a parallel edge collapses to the
        minimum weight (an arrival no lighter than the current edge is
        a no-op).  Undirected edges land in both adjacency directions.

        Returns the list of *directed arcs* ``(uid, vid, weight)`` that
        were inserted or whose weight decreased -- both orientations for
        an undirected edge -- which is exactly the seed set an
        incremental sketch update must re-propagate from
        (:mod:`repro.ads.dynamic`).

        With ``auto_consolidate`` (the default) the buffer re-CSRs
        itself once it outgrows ``max(64, num_edges // 8)`` pending
        edges, keeping overlay lookups O(1)-ish; pass ``False`` to
        keep the overlay until an explicit :meth:`consolidate`.
        """
        interner = self.interner
        applied: List[Tuple[int, int, float]] = []
        meta = self._pending_meta
        # Validate the whole batch BEFORE touching any state: a
        # malformed tuple mid-batch must not leave earlier edges half
        # applied (the caller would retry the fixed batch and the
        # already-inserted edges would silently no-op as duplicates --
        # fatal when an index update is replaying the same batch).
        normalized: List[Tuple[Node, Node, float]] = []
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1.0
            elif len(edge) == 3:
                u, v = edge[0], edge[1]
                w = float(edge[2])
            else:
                raise GraphError(
                    f"edge tuple must have 2 or 3 fields: {edge!r}"
                )
            if u == v:
                raise GraphError(f"self-loop on node {u!r} is not allowed")
            if not w > 0.0:
                raise GraphError(f"edge weight must be positive, got {w}")
            normalized.append((u, v, w))
        for u, v, w in normalized:
            uid, vid = interner.intern(u), interner.intern(v)
            existing = self._current_weight(uid, vid)
            if existing is not None and existing <= w:
                continue
            if existing is None:
                self._num_edges += 1
            meta["edges"] += 1
            if w != 1.0:
                meta["weighted"] = 1
            self._pending_out.setdefault(uid, {})[vid] = w
            self._pending_in.setdefault(vid, {})[uid] = w
            applied.append((uid, vid, w))
            if not self.directed:
                self._pending_out.setdefault(vid, {})[uid] = w
                self._pending_in.setdefault(uid, {})[vid] = w
                applied.append((vid, uid, w))
        view = self._transpose_view
        if view is not None:
            view._num_edges = self._num_edges
        if auto_consolidate and meta["edges"] > max(64, self._num_edges // 8):
            self.consolidate()
        return applied

    def consolidate(self) -> "CSRGraph":
        """Fold the pending-edge buffer back into packed CSR arrays.

        O(n + m); afterwards ``pending_edges == 0`` and every array
        accessor serves the updated graph.  The memoized transpose view
        (if one exists) is refreshed in place, so references obtained
        from :meth:`transpose` stay valid.  Returns ``self``.
        """
        n = self.num_nodes
        if self._pending_meta["edges"] == 0 and self._base_n == n:
            return self
        adjacency: List[Dict[int, float]] = [
            dict(self._merged_row_pairs(uid, transpose=False))
            for uid in range(n)
        ]
        indptr, indices, weights = _pack_adjacency(adjacency)
        self._indptr, self._indices, self._weights = indptr, indices, weights
        if self.directed:
            self._t_indptr, self._t_indices, self._t_weights = (
                _transpose_arrays(n, indptr, indices, weights)
            )
        else:
            self._t_indptr, self._t_indices, self._t_weights = (
                indptr, indices, weights
            )
        # clear() in place: the dict objects are shared with the
        # transpose view (and with each other when undirected).
        self._pending_out.clear()
        self._pending_in.clear()
        self._pending_meta["edges"] = 0
        self._pending_meta["weighted"] = 0
        self._base_n = n
        self._t_adjacency_cache = None
        view = self._transpose_view
        if view is not None:
            view._indptr = self._t_indptr
            view._indices = self._t_indices
            view._weights = self._t_weights
            view._t_indptr = self._indptr
            view._t_indices = self._indices
            view._t_weights = self._weights
            view._num_edges = self._num_edges
            view._base_n = n
            view._t_adjacency_cache = None
        return self

    def _merged_row_pairs(
        self, uid: int, transpose: bool
    ) -> List[Tuple[int, float]]:
        """One node's ``(target_id, weight)`` pairs, overlay merged in.

        Base-array order first (overridden weights substituted in
        place), then buffered additions in insertion order -- the order
        :meth:`from_edges` would have packed them in.
        """
        if transpose:
            indptr, indices, weights = (
                self._t_indptr, self._t_indices, self._t_weights
            )
            row = self._pending_in.get(uid)
        else:
            indptr, indices, weights = (
                self._indptr, self._indices, self._weights
            )
            row = self._pending_out.get(uid)
        pairs: List[Tuple[int, float]] = []
        if uid < self._base_n:
            if row:
                remaining = dict(row)
                for slot in range(indptr[uid], indptr[uid + 1]):
                    vid = indices[slot]
                    if vid in remaining:
                        pairs.append((vid, remaining.pop(vid)))
                    else:
                        pairs.append((
                            vid,
                            weights[slot] if weights is not None else 1.0,
                        ))
                pairs.extend(remaining.items())
                return pairs
            for slot in range(indptr[uid], indptr[uid + 1]):
                pairs.append((
                    indices[slot],
                    weights[slot] if weights is not None else 1.0,
                ))
            return pairs
        return list(row.items()) if row else []

    def out_neighbor_id_pairs(self, uid: int) -> List[Tuple[int, float]]:
        """``(target_id, weight)`` out-arcs of id *uid*, buffer included."""
        return self._merged_row_pairs(uid, transpose=False)

    def in_neighbor_id_pairs(self, uid: int) -> List[Tuple[int, float]]:
        """``(source_id, weight)`` in-arcs of id *uid*, buffer included.

        This is the adjacency view incremental sketch maintenance
        propagates over (forward ADS updates travel along in-arcs), so
        it must see buffered arcs without forcing a consolidation.
        """
        return self._merged_row_pairs(uid, transpose=True)

    # ------------------------------------------------------------------
    # Array access (the contract hot paths build on)
    # ------------------------------------------------------------------
    def forward_arrays(self) -> Tuple[array, array, Optional[array]]:
        """``(indptr, indices, weights)``; weights is None when unweighted.

        Consolidates the pending-edge buffer first: array consumers
        (builder cores, payload shipping) scan arrays, not overlays.
        """
        self.consolidate()
        return self._indptr, self._indices, self._weights

    def transpose_arrays(self) -> Tuple[array, array, Optional[array]]:
        """The same three arrays for G^T (shared objects when undirected)."""
        self.consolidate()
        return self._t_indptr, self._t_indices, self._t_weights

    def transpose_adjacency_lists(self) -> list:
        """Per-node transpose neighbor lists for scan-heavy cores, built
        once per graph and cached (the graph is immutable): a list of
        target-id lists when unweighted, of ``(target, weight)`` pair
        lists when weighted.  The ADS cores run one competition per
        permutation/bucket over the same arrays, so the O(m) unboxing
        must not be paid per run.
        """
        self.consolidate()
        cached = self._t_adjacency_cache
        if cached is None:
            indptr = self._t_indptr.tolist()
            indices = self._t_indices.tolist()
            if self._t_weights is None:
                cached = [
                    indices[indptr[i]:indptr[i + 1]]
                    for i in range(self.num_nodes)
                ]
            else:
                weights = self._t_weights.tolist()
                cached = [
                    list(zip(indices[indptr[i]:indptr[i + 1]],
                             weights[indptr[i]:indptr[i + 1]]))
                    for i in range(self.num_nodes)
                ]
            self._t_adjacency_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Queries (Graph-compatible, label-level)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.interner)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def nodes(self) -> List[Node]:
        return self.interner.labels()

    def has_node(self, u: Node) -> bool:
        return u in self.interner

    def has_edge(self, u: Node, v: Node) -> bool:
        if u not in self.interner or v not in self.interner:
            return False
        uid, vid = self.interner.id_of(u), self.interner.id_of(v)
        return self._current_weight(uid, vid) is not None

    def edge_weight(self, u: Node, v: Node) -> float:
        uid, vid = self.interner.id_of(u), self.interner.id_of(v)
        weight = self._current_weight(uid, vid)
        if weight is None:
            raise GraphError(f"no edge {u!r} -> {v!r}")
        return weight

    def out_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        uid = self.interner.id_of(u)
        label_of = self.interner.label_of
        return [
            (label_of(vid), w)
            for vid, w in self._merged_row_pairs(uid, transpose=False)
        ]

    def in_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        uid = self.interner.id_of(u)
        label_of = self.interner.label_of
        return [
            (label_of(vid), w)
            for vid, w in self._merged_row_pairs(uid, transpose=True)
        ]

    def out_degree(self, u: Node) -> int:
        uid = self.interner.id_of(u)
        if not self._pending_out and uid < self._base_n:
            return self._indptr[uid + 1] - self._indptr[uid]
        return len(self._merged_row_pairs(uid, False))

    def in_degree(self, u: Node) -> int:
        uid = self.interner.id_of(u)
        if not self._pending_in and uid < self._base_n:
            return self._t_indptr[uid + 1] - self._t_indptr[uid]
        return len(self._merged_row_pairs(uid, True))

    def is_weighted(self) -> bool:
        return self._weights is not None or bool(
            self._pending_meta["weighted"]
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(u, v, weight)``; each undirected edge appears once."""
        label_of = self.interner.label_of
        for uid in range(self.num_nodes):
            for vid, w in self._merged_row_pairs(uid, transpose=False):
                if not self.directed and vid < uid:
                    continue  # the uid < vid orientation already yielded it
                yield (label_of(uid), label_of(vid), w)

    # ------------------------------------------------------------------
    # Worker shipping (parallel ADS builds)
    # ------------------------------------------------------------------
    def to_arrays_payload(self) -> tuple:
        """The graph as a compact picklable tuple of its raw arrays.

        This is what the sharded ADS builder ships to worker processes:
        labels plus the six CSR arrays (``array`` objects pickle as raw
        bytes), *without* the derived adjacency-list cache, which each
        worker rebuilds lazily.  For undirected graphs the transpose
        entries are the same objects, and pickle's memo keeps them
        shared on the other side.
        """
        self.consolidate()
        return (
            self.directed,
            self.interner.labels(),
            self._indptr,
            self._indices,
            self._weights,
            self._t_indptr,
            self._t_indices,
            self._t_weights,
            self._num_edges,
        )

    @classmethod
    def from_arrays_payload(cls, payload: tuple) -> "CSRGraph":
        """Rebuild a graph from :meth:`to_arrays_payload` (worker side)."""
        (
            directed, labels, indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        ) = payload
        return cls(
            directed, NodeInterner(labels), indptr, indices, weights,
            t_indptr, t_indices, t_weights, num_edges,
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """G^T as an O(1) view: forward and transpose arrays swapped.

        The view is memoized (and points back at this graph), so
        repeated ``transpose()`` calls share one object -- and with it
        the lazily built adjacency-list cache.
        """
        view = self._transpose_view
        if view is None:
            view = CSRGraph(
                self.directed, self.interner,
                self._t_indptr, self._t_indices, self._t_weights,
                self._indptr, self._indices, self._weights,
                self._num_edges,
            )
            # The view shares the pending-edge buffer, orientation
            # swapped, so arcs buffered through either object are
            # visible (and consolidated) through both.
            view._pending_out = self._pending_in
            view._pending_in = self._pending_out
            view._pending_meta = self._pending_meta
            view._base_n = self._base_n
            view._transpose_view = self
            self._transpose_view = view
        return view

    def to_graph(self):
        """Materialise an adjacency-dict :class:`Graph` (legacy backend)."""
        from repro.graph.digraph import Graph

        result = Graph(directed=self.directed)
        for label in self.nodes():
            result.add_node(label)
        for u, v, w in self.edges():
            result.add_edge(u, v, w)
        return result

    def __contains__(self, u: Node) -> bool:
        return u in self.interner

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, n={self.num_nodes}, m={self.num_edges})"


# ----------------------------------------------------------------------
# CSR-specialised traversal
# ----------------------------------------------------------------------
def csr_bfs_distance_list(graph: CSRGraph, source_id: int) -> List[float]:
    """Hop distances from id *source_id*; ``inf`` marks unreachable ids."""
    indptr, indices, _ = graph.forward_arrays()
    dist = [float("inf")] * graph.num_nodes
    dist[source_id] = 0.0
    frontier = [source_id]
    level = 0.0
    inf = float("inf")
    while frontier:
        level += 1.0
        nxt = []
        for u in frontier:
            for slot in range(indptr[u], indptr[u + 1]):
                v = indices[slot]
                if dist[v] == inf:
                    dist[v] = level
                    nxt.append(v)
        frontier = nxt
    return dist


def csr_dijkstra_distance_list(graph: CSRGraph, source_id: int) -> List[float]:
    """Weighted distances from id *source_id*; ``inf`` marks unreachable."""
    indptr, indices, weights = graph.forward_arrays()
    if weights is None:
        return csr_bfs_distance_list(graph, source_id)
    inf = float("inf")
    dist = [inf] * graph.num_nodes
    settled = [False] * graph.num_nodes
    heap: List[Tuple[float, int]] = [(0.0, source_id)]
    while heap:
        d, u = heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        dist[u] = d
        for slot in range(indptr[u], indptr[u + 1]):
            v = indices[slot]
            if not settled[v]:
                candidate = d + weights[slot]
                if candidate < dist[v]:
                    dist[v] = candidate
                    heappush(heap, (candidate, v))
    return dist


def _distance_dict(graph: CSRGraph, dist: List[float]) -> Dict[Node, float]:
    label_of = graph.interner.label_of
    inf = float("inf")
    return {
        label_of(i): d for i, d in enumerate(dist) if d != inf
    }


def csr_bfs_distances(graph: CSRGraph, source: Node) -> Dict[Node, float]:
    """Label-level BFS distances (API parity with ``bfs_distances``)."""
    sid = graph.interner.id_of(source)
    return _distance_dict(graph, csr_bfs_distance_list(graph, sid))


def csr_dijkstra_distances(graph: CSRGraph, source: Node) -> Dict[Node, float]:
    """Label-level Dijkstra distances (parity with ``dijkstra_distances``)."""
    sid = graph.interner.id_of(source)
    return _distance_dict(graph, csr_dijkstra_distance_list(graph, sid))
