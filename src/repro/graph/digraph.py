"""A compact adjacency-list graph supporting the paper's requirements.

The paper considers "directed or undirected, weighted or unweighted graphs"
(Section 2).  This class covers all four combinations with one
representation: per-node dictionaries of successor -> weight, plus (for
directed graphs) predecessor dictionaries so that the transpose view needed
by PRUNEDDIJKSTRA (Algorithm 1 runs Dijkstra "on G^T") is O(1) to obtain.
Nodes are arbitrary hashable objects; edge weights are positive floats.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node, float]


class Graph:
    """Adjacency-list graph (directed or undirected, weighted or not).

    Parallel edges are not stored: re-adding an existing edge keeps the
    *smaller* weight, which preserves all shortest-path distances and is
    the behaviour every algorithm in this library expects.

    Examples
    --------
    >>> g = Graph(directed=True)
    >>> g.add_edge("a", "b", 8.0)
    >>> g.add_edge("a", "c", 9.0)
    >>> sorted(g.out_neighbors("a"))
    [('b', 8.0), ('c', 9.0)]
    """

    __slots__ = ("directed", "_succ", "_pred", "_num_edges")

    def __init__(self, directed: bool = False):
        self.directed = bool(directed)
        self._succ: Dict[Node, Dict[Node, float]] = {}
        # For undirected graphs _pred is the same dict object as _succ.
        self._pred: Dict[Node, Dict[Node, float]] = (
            {} if self.directed else self._succ
        )
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, u: Node) -> None:
        """Ensure node *u* exists (isolated nodes are allowed)."""
        if u not in self._succ:
            self._succ[u] = {}
            if self.directed:
                self._pred[u] = {}

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add edge u -> v (both directions when undirected).

        Self-loops are rejected: they never change a distance and would
        only distort degree-based workload statistics.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        w = float(weight)
        if not w > 0.0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        existing = self._succ[u].get(v)
        if existing is None:
            self._num_edges += 1
        elif existing <= w:
            return
        self._succ[u][v] = w
        if self.directed:
            self._pred[v][u] = w
        else:
            self._succ[v][u] = w

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple], directed: bool = False
    ) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        graph = cls(directed=directed)
        for edge in edges:
            if len(edge) == 2:
                graph.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                graph.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphError(f"edge tuple must have 2 or 3 fields: {edge!r}")
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(u, v, weight)``; each undirected edge appears once.

        Undirected dedup tracks *emitted source nodes* (self-loops are
        rejected at insertion, so an edge {u, v} is yielded exactly when
        its first-scanned endpoint reaches the other): no ``repr`` calls,
        and distinct nodes with colliding reprs stay distinct.
        """
        if self.directed:
            for u, nbrs in self._succ.items():
                for v, w in nbrs.items():
                    yield (u, v, w)
            return
        emitted_sources = set()
        for u, nbrs in self._succ.items():
            for v, w in nbrs.items():
                if v in emitted_sources:
                    continue
                yield (u, v, w)
            emitted_sources.add(u)

    def has_node(self, u: Node) -> bool:
        return u in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def edge_weight(self, u: Node, v: Node) -> float:
        try:
            return self._succ[u][v]
        except KeyError:
            raise GraphError(f"no edge {u!r} -> {v!r}")

    def out_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        """Successors of *u* as ``(node, weight)`` pairs."""
        self._require_node(u)
        return list(self._succ[u].items())

    def in_neighbors(self, u: Node) -> List[Tuple[Node, float]]:
        """Predecessors of *u* as ``(node, weight)`` pairs."""
        self._require_node(u)
        return list(self._pred[u].items())

    def out_degree(self, u: Node) -> int:
        self._require_node(u)
        return len(self._succ[u])

    def in_degree(self, u: Node) -> int:
        self._require_node(u)
        return len(self._pred[u])

    def is_weighted(self) -> bool:
        """True when any edge weight differs from 1 (selects Dijkstra/BFS)."""
        return any(w != 1.0 for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "Graph":
        """Return G^T (an undirected graph is its own transpose, copied)."""
        result = Graph(directed=self.directed)
        for u in self._succ:
            result.add_node(u)
        for u, v, w in self.edges():
            if self.directed:
                result.add_edge(v, u, w)
            else:
                result.add_edge(u, v, w)
        return result

    def to_csr(self):
        """Convert to the integer-ID :class:`~repro.graph.csr.CSRGraph`
        backend (ids follow node insertion order)."""
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_graph(self)

    def copy(self) -> "Graph":
        result = Graph(directed=self.directed)
        for u in self._succ:
            result.add_node(u)
        for u, v, w in self.edges():
            result.add_edge(u, v, w)
        return result

    def _require_node(self, u: Node) -> None:
        if u not in self._succ:
            raise GraphError(f"node {u!r} is not in the graph")

    def __contains__(self, u: Node) -> bool:
        return u in self._succ

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"Graph({kind}, n={self.num_nodes}, m={self.num_edges})"
