"""Seeded graph generators used as evaluation workloads.

The paper's own figures are graph-independent stream simulations
(Section 5.5), but the library's examples, tests and ablation benchmarks
exercise ADS construction and centrality estimation on real graph shapes:
social-like (Barabasi-Albert), random (Erdos-Renyi / geometric), and
structured (paths, grids, trees).  ``figure1_graph`` reconstructs the
paper's worked example exactly.
"""

from __future__ import annotations

import math
import random
from typing import Dict

from repro._util import require
from repro.graph.digraph import Graph


def path_graph(n: int, directed: bool = False) -> Graph:
    """0 - 1 - ... - (n-1) with unit weights."""
    require(n >= 1, f"path_graph requires n >= 1, got {n}")
    graph = Graph(directed=directed)
    graph.add_node(0)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int, directed: bool = False) -> Graph:
    """A simple cycle on n >= 3 nodes."""
    require(n >= 3, f"cycle_graph requires n >= 3, got {n}")
    graph = Graph(directed=directed)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def star_graph(n: int) -> Graph:
    """A hub (node 0) joined to n-1 leaves."""
    require(n >= 2, f"star_graph requires n >= 2, got {n}")
    graph = Graph(directed=False)
    for i in range(1, n):
        graph.add_edge(0, i)
    return graph


def complete_graph(n: int) -> Graph:
    """All pairs joined with unit weights."""
    require(n >= 1, f"complete_graph requires n >= 1, got {n}")
    graph = Graph(directed=False)
    graph.add_node(0)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols lattice; node ids are (row, col) tuples."""
    require(rows >= 1 and cols >= 1, "grid dimensions must be >= 1")
    graph = Graph(directed=False)
    graph.add_node((0, 0))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def gnp_random_graph(
    n: int, p: float, seed: int = 0, directed: bool = False
) -> Graph:
    """Erdos-Renyi G(n, p) with a seeded RNG.

    Uses the geometric skipping method, so the cost is O(n + m) rather
    than O(n^2) -- the library must be able to generate sparse graphs with
    many nodes cheaply.
    """
    require(n >= 1, f"gnp_random_graph requires n >= 1, got {n}")
    require(0.0 <= p <= 1.0, f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph(directed=directed)
    for i in range(n):
        graph.add_node(i)
    if p == 0.0:
        return graph
    if p == 1.0:
        for i in range(n):
            for j in range(n):
                if i != j and (directed or i < j):
                    graph.add_edge(i, j)
        return graph
    log_q = math.log(1.0 - p)
    # Iterate over the implicit list of candidate pairs, skipping
    # geometrically distributed gaps between successes.
    total = n * (n - 1) if directed else n * (n - 1) // 2
    index = -1
    while True:
        gap = int(math.floor(math.log(1.0 - rng.random()) / log_q))
        index += gap + 1
        if index >= total:
            break
        if directed:
            u, v = divmod(index, n - 1)
            if v >= u:
                v += 1
        else:
            # Invert the row-major upper-triangle enumeration.
            u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * index)) // 2)
            offset = index - u * (2 * n - u - 1) // 2
            v = u + 1 + offset
        graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: each new node attaches to m targets.

    The canonical "social/Web graph" stand-in: heavy-tailed degrees and a
    small diameter, which is the regime where ADS-based estimation shines.
    """
    require(m >= 1, f"barabasi_albert_graph requires m >= 1, got {m}")
    require(n > m, f"barabasi_albert_graph requires n > m, got n={n}, m={m}")
    rng = random.Random(seed)
    graph = Graph(directed=False)
    # Seed with a complete graph on m+1 nodes so every node (including
    # the initial ones) ends with degree >= m.
    repeated: list = []
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            graph.add_edge(i, j)
            repeated.extend((i, j))
    for new_node in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            graph.add_edge(new_node, t)
            repeated.extend((new_node, t))
    return graph


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> Graph:
    """Points in the unit square, joined when within *radius*; edge weight
    is the Euclidean distance (a natural weighted-graph workload)."""
    require(n >= 1, f"random_geometric_graph requires n >= 1, got {n}")
    require(radius > 0.0, f"radius must be positive, got {radius}")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    graph = Graph(directed=False)
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            xj, yj = points[j]
            d = math.hypot(xi - xj, yi - yj)
            if d <= radius and d > 0.0:
                graph.add_edge(i, j, d)
    return graph


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random recursive tree on n nodes (node i attaches to a
    uniform earlier node)."""
    require(n >= 1, f"random_tree requires n >= 1, got {n}")
    rng = random.Random(seed)
    graph = Graph(directed=False)
    graph.add_node(0)
    for i in range(1, n):
        graph.add_edge(i, rng.randrange(i))
    return graph


def figure1_graph() -> Graph:
    """The paper's Figure 1 example: an 8-node weighted digraph.

    The figure itself is not machine-readable, so the edge set is
    reconstructed to satisfy *every* distance stated in Example 2.1:

    * forward from a: a,b,c,d,e,f,g,h at (0, 8, 9, 18, 19, 20, 21, 26);
    * reverse to b:   b,a,g,c,h,d,e,f at (0, 8, 18, 30, 31, 39, 40, 41).

    ``tests/test_paper_example.py`` verifies both distance profiles and
    reproduces the ADS contents stated in the example.
    """
    edges = [
        ("a", "b", 8.0),
        ("a", "c", 9.0),
        ("c", "d", 9.0),
        ("c", "e", 10.0),
        ("c", "f", 11.0),
        ("c", "g", 12.0),
        ("d", "h", 8.0),
        ("e", "h", 9.0),
        ("f", "h", 10.0),
        ("g", "a", 10.0),
        ("h", "g", 13.0),
    ]
    return Graph.from_edges(edges, directed=True)


def figure1_ranks() -> Dict[str, float]:
    """Rank values consistent with Example 2.1 and Figure 1's multiset.

    Figure 1 lists the rank multiset {0.1 ... 0.8}; the per-node assignment
    below is the unique-up-to-slack solution of the constraints implied by
    the ADS contents in Example 2.1 (e.g. r(h) < r(d) < r(f) < r(c) <
    r(a) < r(b), r(e) > r(c), r(g) > r(a)).
    """
    return {
        "a": 0.5,
        "b": 0.7,
        "c": 0.4,
        "d": 0.2,
        "e": 0.6,
        "f": 0.3,
        "g": 0.8,
        "h": 0.1,
    }
