"""Edge-list persistence (whitespace-separated text, '#' comments).

A tiny, dependency-free format compatible with the SNAP-style edge lists
commonly used to distribute the social/Web graphs the paper targets:
``u v [weight]`` per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.digraph import Graph


def write_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write *graph* to *path*; weights are included only when not all 1."""
    weighted = graph.is_weighted()
    lines = [
        "# adsketch edge list",
        f"# directed={graph.directed} weighted={weighted}",
        f"# nodes={graph.num_nodes} edges={graph.num_edges}",
    ]
    isolated = [
        u
        for u in graph.nodes()
        if graph.out_degree(u) == 0 and graph.in_degree(u) == 0
    ]
    for u in isolated:
        lines.append(f"#node {u}")
    for u, v, w in graph.edges():
        if weighted:
            lines.append(f"{u} {v} {w!r}")
        else:
            lines.append(f"{u} {v}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(
    path: Union[str, Path],
    directed: Union[bool, None] = None,
    node_type: type = str,
) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any
    SNAP-style file).

    ``directed=None`` (the default) honours the ``# directed=...`` header
    when present and falls back to undirected otherwise; pass an explicit
    bool to override.  ``node_type`` converts node tokens (e.g. ``int``).
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if directed is None:
        directed = any(
            line.startswith("#") and "directed=True" in line for line in lines
        )
    graph = Graph(directed=directed)
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#node "):
            graph.add_node(node_type(line[len("#node "):].strip()))
            continue
        if line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) == 2:
            graph.add_edge(node_type(fields[0]), node_type(fields[1]))
        elif len(fields) == 3:
            graph.add_edge(
                node_type(fields[0]), node_type(fields[1]), float(fields[2])
            )
        else:
            raise GraphError(f"malformed edge-list line: {raw!r}")
    return graph
