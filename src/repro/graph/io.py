"""Edge-list persistence (whitespace-separated text, '#' comments).

A tiny, dependency-free format compatible with the SNAP-style edge lists
commonly used to distribute the social/Web graphs the paper targets:
``u v [weight]`` per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.digraph import Graph


def write_edge_list(
    graph, path: Union[str, Path], all_nodes: bool = False
) -> None:
    """Write *graph* to *path*; weights are included only when not all 1.

    Accepts either backend (:class:`Graph` or
    :class:`~repro.graph.csr.CSRGraph`) -- only the shared query
    surface is used, so a CSR graph need not be copied into adjacency
    dicts just to be persisted.

    With ``all_nodes=True`` every node is listed as a ``#node`` line in
    iteration order *before* the edges, which pins the node order a
    reader reconstructs -- required when the file must stay in lockstep
    with an :class:`~repro.ads.index.AdsIndex` whose entry ids are
    positional (``repro update-index --write-graph``).  The default
    lists only isolated nodes (edges imply the rest).
    """
    weighted = graph.is_weighted()
    lines = [
        "# adsketch edge list",
        f"# directed={graph.directed} weighted={weighted}",
        f"# nodes={graph.num_nodes} edges={graph.num_edges}",
    ]
    if all_nodes:
        listed = graph.nodes()
    else:
        listed = [
            u
            for u in graph.nodes()
            if graph.out_degree(u) == 0 and graph.in_degree(u) == 0
        ]
    for u in listed:
        lines.append(f"#node {u}")
    for u, v, w in graph.edges():
        if weighted:
            lines.append(f"{u} {v} {w!r}")
        else:
            lines.append(f"{u} {v}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(
    path: Union[str, Path],
    directed: Union[bool, None] = None,
    node_type: type = str,
) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any
    SNAP-style file).

    ``directed=None`` (the default) honours the ``# directed=...`` header
    when present and falls back to undirected otherwise; pass an explicit
    bool to override.  ``node_type`` converts node tokens (e.g. ``int``).
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if directed is None:
        directed = any(
            line.startswith("#") and "directed=True" in line for line in lines
        )
    graph = Graph(directed=directed)
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#node "):
            graph.add_node(node_type(line[len("#node "):].strip()))
            continue
        if line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) == 2:
            graph.add_edge(node_type(fields[0]), node_type(fields[1]))
        elif len(fields) == 3:
            graph.add_edge(
                node_type(fields[0]), node_type(fields[1]), float(fields[2])
            )
        else:
            raise GraphError(f"malformed edge-list line: {raw!r}")
    return graph


def read_edge_batch(
    path: Union[str, Path], node_type: type = str
) -> list:
    """Read an edge *batch* file: ``u v [weight]`` tuples, no graph.

    The update-stream counterpart of :func:`read_edge_list` -- the same
    line format (blank lines and ``#`` comments skipped), but returning
    plain edge tuples for :meth:`repro.ads.index.AdsIndex.apply_edges`
    / :meth:`repro.graph.csr.CSRGraph.add_edges` instead of
    materialising a graph.
    """
    edges = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            raise GraphError(f"malformed edge-batch line: {raw!r}")
        try:
            u, v = node_type(fields[0]), node_type(fields[1])
        except ValueError as error:
            raise GraphError(f"malformed edge-batch line: {raw!r} ({error})")
        if len(fields) == 3:
            try:
                edges.append((u, v, float(fields[2])))
            except ValueError as error:
                raise GraphError(
                    f"malformed edge-batch line: {raw!r} ({error})"
                )
        else:
            edges.append((u, v))
    return edges
