"""Exact distance-based graph statistics (the paper's ground truths).

Everything the sketches *estimate* is computed here *exactly* with
repeated single-source shortest-path scans: neighborhood cardinalities
n_d(v), the graph distance distribution, closeness and harmonic
centralities, diameters.  Cost is O(n (m + n log n)), fine for the test
and benchmark graph sizes, and exactly the cost the paper's sketches are
designed to avoid at scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.digraph import Graph, Node
from repro.graph.traversal import single_source_distances


def reachable_set(graph: Graph, source: Node) -> Set[Node]:
    """All nodes reachable from *source* (including itself)."""
    return set(single_source_distances(graph, source))


def neighborhood_cardinality(graph: Graph, source: Node, d: float) -> int:
    """Exact n_d(source): number of nodes within distance *d* (inclusive)."""
    dist = single_source_distances(graph, source)
    return sum(1 for value in dist.values() if value <= d)


def exact_neighborhood_function(
    graph: Graph, source: Node
) -> List[Tuple[float, int]]:
    """The full distance distribution of *source*.

    Returns sorted ``(distance, cumulative_count)`` pairs: for each distinct
    distance d the number of nodes with distance <= d.  This is the exact
    object ADS cardinality estimators approximate.
    """
    dist = sorted(single_source_distances(graph, source).values())
    result: List[Tuple[float, int]] = []
    for i, d in enumerate(dist, start=1):
        if result and result[-1][0] == d:
            result[-1] = (d, i)
        else:
            result.append((d, i))
    return result


def distance_distribution(graph: Graph) -> List[Tuple[float, int]]:
    """Whole-graph distance distribution: pairs (d, #ordered pairs <= d).

    The "distance distribution of the whole graph" from the introduction:
    the number of ordered pairs (i, j), i != j, with d_ij <= d.  Computed
    by n single-source scans.
    """
    counts: Dict[float, int] = {}
    for source in graph.nodes():
        for target, d in single_source_distances(graph, source).items():
            if target != source:
                counts[d] = counts.get(d, 0) + 1
    result: List[Tuple[float, int]] = []
    running = 0
    for d in sorted(counts):
        running += counts[d]
        result.append((d, running))
    return result


def graph_diameter(graph: Graph) -> float:
    """Largest finite pairwise distance (0 for a single node)."""
    best = 0.0
    for source in graph.nodes():
        dist = single_source_distances(graph, source)
        if dist:
            best = max(best, max(dist.values()))
    return best


def effective_diameter(graph: Graph, quantile: float = 0.9) -> float:
    """Smallest d such that >= quantile of connected ordered pairs have
    d_ij <= d.  The classic ANF summary statistic."""
    if not 0.0 < quantile <= 1.0:
        raise GraphError(f"quantile must be in (0, 1], got {quantile}")
    distribution = distance_distribution(graph)
    if not distribution:
        return 0.0
    total = distribution[-1][1]
    threshold = quantile * total
    for d, cumulative in distribution:
        if cumulative >= threshold:
            return d
    return distribution[-1][0]


def closeness_centrality_exact(
    graph: Graph,
    source: Node,
    alpha: Optional[Callable[[float], float]] = None,
    beta: Optional[Callable[[Node], float]] = None,
) -> float:
    """Exact C_{alpha,beta}(source) = sum_j alpha(d_sj) beta(j)  (Eq. 2).

    Defaults: alpha = identity-on-distance is *not* the default -- with no
    arguments this returns the classic sum of distances (the inverse of
    closeness centrality, Q_g with g = d).  Pass ``alpha`` for distance
    decay and ``beta`` for node weights/filters.  The source itself is
    excluded, matching the convention d > 0 contributions only when alpha
    is a decay kernel.
    """
    dist = single_source_distances(graph, source)
    total = 0.0
    for node, d in dist.items():
        if node == source:
            continue
        weight = 1.0 if beta is None else float(beta(node))
        if alpha is None:
            total += d * weight
        else:
            total += float(alpha(d)) * weight
    return total


def harmonic_centrality_exact(graph: Graph, source: Node) -> float:
    """Exact harmonic centrality sum_{j != source} 1/d_sj  ([40],[7])."""
    return closeness_centrality_exact(
        graph, source, alpha=lambda d: 1.0 / d if d > 0 else 0.0
    )
