"""Single-source shortest path computations (BFS, Dijkstra, Bellman-Ford).

These are the exact-computation workhorses: ground truth for every
estimator test, and the scan engine inside the PRUNEDDIJKSTRA ADS builder.
``dijkstra_order`` additionally yields nodes in the paper's *Dijkstra rank*
order pi_vi (Section 2): position in the nearest-neighbor list of the
source, with ties broken by a caller-supplied key exactly as Appendix B.3
prescribes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.csr import (
    CSRGraph,
    csr_bfs_distances,
    csr_dijkstra_distances,
)
from repro.graph.digraph import Graph, Node


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Hop distances from *source*, ignoring edge weights.

    Dispatches to the flat-array scan when *graph* is a
    :class:`~repro.graph.csr.CSRGraph`.
    """
    if isinstance(graph, CSRGraph):
        return csr_bfs_distances(graph, source)
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} is not in the graph")
    dist: Dict[Node, float] = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _ in graph.out_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1.0
                queue.append(v)
    return dist


def dijkstra_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Weighted distances from *source* (non-negative weights).

    Dispatches to the flat-array scan when *graph* is a
    :class:`~repro.graph.csr.CSRGraph`.
    """
    if isinstance(graph, CSRGraph):
        return csr_dijkstra_distances(graph, source)
    return dict(dijkstra_order(graph, source))


def dijkstra_order(
    graph: Graph,
    source: Node,
    tiebreak: Optional[Callable[[Node], object]] = None,
) -> Iterator[Tuple[Node, float]]:
    """Yield ``(node, distance)`` in non-decreasing distance from *source*.

    When *tiebreak* is given, equal-distance nodes are yielded in
    increasing ``tiebreak(node)`` order, making the scan order a total
    order -- this realises the paper's "unique distances" assumption
    (Section 2, Appendix B.3) and is shared by all ADS builders so that
    they produce identical sketches.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} is not in the graph")
    if tiebreak is None:
        def tiebreak(node):  # insertion-order-independent default
            return repr(node)
    dist: Dict[Node, float] = {}
    heap: List[Tuple[float, object, Node]] = [(0.0, tiebreak(source), source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        yield (u, d)
        for v, w in graph.out_neighbors(u):
            if v not in dist:
                heapq.heappush(heap, (d + w, tiebreak(v), v))


def bellman_ford_distances(
    graph: Graph, source: Node, max_rounds: Optional[int] = None
) -> Dict[Node, float]:
    """Distances via synchronous Bellman-Ford rounds.

    Provided as an independent oracle for cross-checking Dijkstra and as
    the conceptual skeleton of the DP ADS builder (Section 3).  Rounds are
    bounded by ``n - 1`` (or *max_rounds*); all weights must be positive so
    negative cycles cannot occur.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} is not in the graph")
    dist: Dict[Node, float] = {source: 0.0}
    frontier = {source}
    rounds = graph.num_nodes - 1 if max_rounds is None else max_rounds
    for _ in range(max(rounds, 0)):
        updates: Dict[Node, float] = {}
        for u in frontier:
            du = dist[u]
            for v, w in graph.out_neighbors(u):
                candidate = du + w
                if candidate < dist.get(v, float("inf")) and candidate < updates.get(
                    v, float("inf")
                ):
                    updates[v] = candidate
        if not updates:
            break
        dist.update(updates)
        frontier = set(updates)
    return dist


def single_source_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """BFS for unweighted graphs, Dijkstra otherwise."""
    if graph.is_weighted():
        return dijkstra_distances(graph, source)
    return bfs_distances(graph, source)


def dijkstra_ranks(
    graph: Graph,
    source: Node,
    tiebreak: Optional[Callable[[Node], object]] = None,
) -> Dict[Node, int]:
    """The paper's pi_{source,j}: 1-based position of j in the sorted
    nearest-neighbor list of *source* (Section 2)."""
    ranks: Dict[Node, int] = {}
    for position, (node, _) in enumerate(
        dijkstra_order(graph, source, tiebreak), start=1
    ):
        ranks[node] = position
    return ranks
