"""Randomization substrate: deterministic hashing and rank assignments.

Every sketch in this library (MinHash sketches, All-Distances Sketches,
HyperLogLog registers) is *coordinated*: sketches of different sets or of
different graph nodes are derived from the same random permutation(s) of the
item domain (Section 2 of the paper).  A permutation is realised as a
:class:`~repro.rand.ranks.RankAssignment` that maps every item to a
reproducible pseudo-random rank.  All randomness flows through the seeded
hash functions in :mod:`repro.rand.hashing`, so results are reproducible
across processes and platforms.
"""

from repro.rand.hashing import (
    HashFamily,
    bucket_of,
    hash64,
    unit_interval_hash,
)
from repro.rand.ranks import (
    BaseBRanks,
    ExponentialRanks,
    PermutationRanks,
    RankAssignment,
    UniformRanks,
    discretize_rank,
    rounded_rank_value,
)

__all__ = [
    "HashFamily",
    "bucket_of",
    "hash64",
    "unit_interval_hash",
    "RankAssignment",
    "UniformRanks",
    "ExponentialRanks",
    "BaseBRanks",
    "PermutationRanks",
    "discretize_rank",
    "rounded_rank_value",
]
