"""Deterministic, seedable hash functions.

The paper assumes "random hash functions" supplying each node a rank
``r(j) ~ U[0,1]`` and (for k-partition sketches) a uniform bucket
``BUCKET(j) ~ U[1..k]`` (Section 2).  We realise them with the splitmix64
finalizer, a well-mixed 64-bit permutation that passes standard avalanche
tests, keyed by a user seed.  Integer items are hashed directly; other
hashable items are first reduced to 64 bits with BLAKE2b (stdlib), which is
stable across processes, unlike Python's built-in ``hash``.
"""

from __future__ import annotations

import hashlib
from typing import Hashable

from repro._util import require

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer (a bijection on 64-bit ints)."""
    x = (x + _GOLDEN_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _item_to_int(item: Hashable) -> int:
    """Reduce an arbitrary hashable item to a stable 64-bit integer."""
    if isinstance(item, bool):
        return int(item)
    if isinstance(item, int):
        return item & _MASK64
    if isinstance(item, bytes):
        payload = item
    elif isinstance(item, str):
        payload = item.encode("utf-8")
    else:
        payload = repr(item).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def hash64(item: Hashable, seed: int = 0) -> int:
    """Return a uniform pseudo-random 64-bit integer for (*item*, *seed*).

    Different seeds give (empirically) independent hash functions, which is
    how the library realises the k independent permutations of a k-mins
    sketch and the independent bucket mapping of a k-partition sketch.
    """
    x = _item_to_int(item)
    return _splitmix64(x ^ _splitmix64(seed & _MASK64))


def unit_interval_hash(item: Hashable, seed: int = 0) -> float:
    """Return a pseudo-random float in the open interval (0, 1).

    The value ``(h + 0.5) / 2**64`` can never be exactly 0 or 1, which the
    rank algebra relies on (a rank of exactly 1 is reserved for the
    supremum ``kth_r`` of an undersized set, and ``-log(r)`` must be
    finite).
    """
    return (hash64(item, seed) + 0.5) / 2.0**64


def bucket_of(item: Hashable, k: int, seed: int = 0) -> int:
    """Return a uniform bucket index in ``[0, k)`` for *item*.

    The bucket hash is salted differently from the rank hash so that an
    item's bucket and rank are independent.
    """
    require(k >= 1, f"bucket_of requires k >= 1, got {k}")
    return hash64(item, seed ^ 0x5BF03635) % k


class HashFamily:
    """A seeded family of independent hash functions over one item domain.

    Instances are cheap value objects; two families with the same seed
    produce identical hashes, which is what makes sketches *coordinated*.

    Parameters
    ----------
    seed:
        Master seed.  All member functions are derived from it.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def rank(self, item: Hashable, index: int = 0) -> float:
        """Uniform (0,1) rank of *item* under permutation number *index*."""
        return unit_interval_hash(item, self.seed ^ (index * 0x9E3779B9))

    def bucket(self, item: Hashable, k: int) -> int:
        """Uniform bucket in ``[0, k)`` for *item* (independent of ranks)."""
        return bucket_of(item, k, self.seed)

    def tiebreak(self, item: Hashable) -> int:
        """A 64-bit value used only to break distance ties (Appendix B.3).

        Salted so it is independent of both ranks and buckets; estimator
        unbiasedness requires the tie-break order to carry no information
        about ranks.
        """
        return hash64(item, self.seed ^ 0x7F4A7C15)

    def __repr__(self) -> str:
        return f"HashFamily(seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.seed))
