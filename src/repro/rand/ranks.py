"""Rank assignments: the random permutations underlying every sketch.

Section 2 of the paper specifies a permutation of the item domain by random
rank values ``r(j) ~ U[0,1]``.  This module provides that assignment plus
the three variants the paper uses:

* :class:`UniformRanks` -- full-precision uniform ranks (Sections 2-5).
* :class:`ExponentialRanks` -- ranks ``-ln(1-u)/beta(j)`` for non-uniform
  node weights beta (Section 9); also the analytic device used throughout
  Section 4 (uniform ranks with beta = 1 transformed monotonically).
* :class:`BaseBRanks` -- rounded ranks ``b**-h`` with integer register
  ``h = ceil(-log_b r)`` (Sections 2 "Base-b ranks", 4.4, 5.6); base 2 with
  saturation is exactly the HyperLogLog register content.
* :class:`PermutationRanks` -- a strict permutation of ``[n]`` used by the
  permutation cardinality estimator (Section 5.4).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Hashable, Iterable, Optional

from repro._util import require
from repro.rand.hashing import HashFamily


def discretize_rank(r: float, b: float) -> int:
    """Return the base-*b* register ``h = ceil(-log_b r)`` for rank *r*.

    The rounded rank value is ``b**-h`` which is the largest power of
    ``1/b`` that is <= ... strictly below r's bracket; the paper stores only
    the integer ``h``.  For ``r`` in (0,1) and ``b > 1`` the result is >= 1,
    so an all-zero register array means "no item seen yet".
    """
    require(0.0 < r < 1.0, f"rank must be in (0,1), got {r}")
    require(b > 1.0, f"base must be > 1, got {b}")
    h = math.ceil(-math.log(r) / math.log(b))
    # Restore the bracket invariant b**-h <= r < b**-(h-1) against
    # floating error when r sits on (or numerically near) a power of 1/b.
    if r < b ** (-h):
        h += 1
    elif r >= b ** (-(h - 1)):
        h -= 1
    return max(h, 1)


def rounded_rank_value(h: int, b: float) -> float:
    """Return the rounded rank ``b**-h`` encoded by register value *h*."""
    require(h >= 0, f"register must be >= 0, got {h}")
    require(b > 1.0, f"base must be > 1, got {b}")
    return float(b) ** (-h)


class RankAssignment:
    """A mapping from items to pseudo-random ranks (one random permutation).

    Subclasses implement :meth:`rank`.  ``sup`` is the supremum of the rank
    range, returned by ``kth_r`` on undersized sets (Section 2): 1 for
    uniform and base-b ranks, infinity for exponential ranks, ``n + 1`` for
    permutation ranks.
    """

    sup: float = 1.0

    def rank(self, item: Hashable) -> float:
        raise NotImplementedError

    def __call__(self, item: Hashable) -> float:
        return self.rank(item)


class UniformRanks(RankAssignment):
    """Full-precision uniform (0,1) ranks from a seeded hash family.

    Parameters
    ----------
    family:
        The shared :class:`HashFamily`; sketches built from the same family
        (and *index*) are coordinated.
    index:
        Which of the family's independent permutations to use.  A k-mins
        sketch uses indices ``0..k-1``.
    """

    sup = 1.0

    def __init__(self, family: HashFamily, index: int = 0):
        self.family = family
        self.index = int(index)

    def rank(self, item: Hashable) -> float:
        return self.family.rank(item, self.index)

    def __repr__(self) -> str:
        return f"UniformRanks(seed={self.family.seed}, index={self.index})"


class ExponentialRanks(RankAssignment):
    """Exponentially distributed ranks with per-item rate ``beta(item)``.

    Section 9: drawing ``r(i) ~ Exp(beta(i))`` (equivalently
    ``-ln(1 - u)/beta(i)`` for uniform u) makes heavier items likelier to
    enter sketches, so estimators of neighborhood *weight* retain the
    uniform-case CV guarantees.  With ``beta = 1`` this is the monotone
    transform used in all the paper's variance analysis.
    """

    sup = math.inf

    def __init__(
        self,
        family: HashFamily,
        weight: Optional[Callable[[Hashable], float]] = None,
        index: int = 0,
    ):
        self.family = family
        self.weight = weight
        self.index = int(index)

    def rank(self, item: Hashable) -> float:
        u = self.family.rank(item, self.index)
        beta = 1.0 if self.weight is None else float(self.weight(item))
        require(beta > 0.0, f"item weight must be positive, got {beta}")
        return -math.log1p(-u) / beta

    def __repr__(self) -> str:
        return f"ExponentialRanks(seed={self.family.seed}, index={self.index})"


class BaseBRanks(RankAssignment):
    """Rounded base-*b* ranks ``b**-h`` with optional register saturation.

    ``max_register`` models fixed-width registers: HyperLogLog uses base 2
    with 5-bit registers, so ``max_register = 31`` (Section 6, Algorithm 3).
    A saturated register can no longer grow, which the HIP distinct counter
    accounts for by assigning saturated buckets update probability 0.
    """

    sup = 1.0

    def __init__(
        self,
        family: HashFamily,
        b: float = 2.0,
        index: int = 0,
        max_register: Optional[int] = None,
    ):
        require(b > 1.0, f"base must be > 1, got {b}")
        if max_register is not None:
            require(max_register >= 1, "max_register must be >= 1")
        self.family = family
        self.b = float(b)
        self.index = int(index)
        self.max_register = max_register

    def register(self, item: Hashable) -> int:
        """Integer register value ``min(max_register, ceil(-log_b r))``."""
        h = discretize_rank(self.family.rank(item, self.index), self.b)
        if self.max_register is not None:
            h = min(h, self.max_register)
        return h

    def rank(self, item: Hashable) -> float:
        return rounded_rank_value(self.register(item), self.b)

    def __repr__(self) -> str:
        return (
            f"BaseBRanks(seed={self.family.seed}, b={self.b}, "
            f"index={self.index}, max_register={self.max_register})"
        )


class PermutationRanks(RankAssignment):
    """A strict uniform permutation of a finite item domain.

    Ranks are the integers ``1..n``.  Section 5.4's permutation estimator
    needs these: it exploits the fact that ranks are sampled *without*
    replacement from ``[n]``, which carries strictly more information than
    i.i.d. uniform ranks when the estimated cardinality is a good fraction
    of n.
    """

    def __init__(self, items: Iterable[Hashable], seed: int = 0):
        ordered = list(items)
        require(len(ordered) >= 1, "permutation domain must be non-empty")
        require(
            len(set(ordered)) == len(ordered),
            "permutation domain must not contain duplicates",
        )
        rng = random.Random(seed)
        positions = list(range(1, len(ordered) + 1))
        rng.shuffle(positions)
        self._position = dict(zip(ordered, positions))
        self.n = len(ordered)
        self.sup = float(self.n + 1)

    def rank(self, item: Hashable) -> float:
        try:
            return float(self._position[item])
        except KeyError:
            raise KeyError(f"item {item!r} is not in the permutation domain")

    def __repr__(self) -> str:
        return f"PermutationRanks(n={self.n})"
