"""Query serving: a long-lived HTTP daemon over a (mmap-loaded) index.

The build pipeline ends with an :class:`~repro.ads.index.AdsIndex` on
disk; this package is the layer that takes traffic against it:

* :class:`AdsServer` -- stdlib ``http.server`` JSON API with a bounded
  worker pool and an LRU cache for whole-graph results
  (:mod:`repro.serve.server`);
* :class:`AsyncAdsServer` -- the asyncio transport over the same
  routing: pipelined HTTP/1.1 parsing, bounded in-flight backpressure,
  optional micro-batch coalescing (:mod:`repro.serve.aio`);
* :class:`QueryClient` -- keep-alive stdlib client, JSON or binary
  wire mode (:mod:`repro.serve.client`);
* :class:`RouterServer` / :class:`AsyncRouterServer` -- the sharded
  cluster tier: fan-out over node-range workers, exact merges, replica
  failover, startup topology validation
  (:class:`ClusterTopologyError`), and automatic stale-replica resync
  (:mod:`repro.serve.cluster`, :mod:`repro.serve.membership`);
* :mod:`repro.serve.wire` -- the compact binary codec both transports
  negotiate via ``Accept``/``Content-Type``;
* :class:`LruCache` -- the cache primitive (:mod:`repro.serve.cache`);
* :class:`ReadWriteLock` -- readers/writer exclusion for live updates
  (:mod:`repro.serve.locks`);
* :mod:`repro.serve.schemas` -- wire-format parsing and shaping.

Shell entry points: ``python -m repro serve --index graph.adsidx``
(add ``--graph graph.txt`` to accept ``POST /update``,
``--async-loop`` for the asyncio transport, ``--cluster START:STOP``
to serve one node-range shard) and ``python -m repro route --index
graph.adsidx --group URL[,URL...] ...`` for the cluster router.
"""

from repro.serve.cache import LruCache
from repro.serve.client import QueryClient, ServeClientError
from repro.serve.cluster import (
    AsyncRouterServer,
    ClusterTopologyError,
    RouterServer,
)
from repro.serve.locks import ReadWriteLock
from repro.serve.membership import ClusterMembership, Replica, ShardGroup
from repro.serve.schemas import WireError
from repro.serve.server import AdsServer
from repro.serve.aio import AsyncAdsServer
from repro.serve.wire import WireFormatError

__all__ = [
    "AdsServer",
    "AsyncAdsServer",
    "AsyncRouterServer",
    "ClusterMembership",
    "ClusterTopologyError",
    "LruCache",
    "QueryClient",
    "Replica",
    "RouterServer",
    "ServeClientError",
    "ShardGroup",
    "WireError",
    "WireFormatError",
]
