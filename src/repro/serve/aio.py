"""``AsyncAdsServer``: the asyncio pipelined serving transport.

The threaded daemon (:class:`~repro.serve.server.AdsServer`) spends
most of each request outside the index: ``http.server`` parses headers
through :mod:`email`, hands every connection across a worker queue,
and renders a response through layered ``send_*`` calls.  At ~180 us
per request that caps single-query throughput in the low thousands of
qps -- while the same index answers hundreds of thousands of node
queries per second when they arrive batched.  This module removes the
per-request transport tax: one event loop, a hand-rolled HTTP/1.1
keep-alive parser that consumes a whole TCP segment at a time --
every complete *pipelined* request in the read buffer is parsed and
dispatched synchronously, and all their responses go out in one
write -- so a segment of N requests costs two syscalls and one round
trip, not 2N and N.

Routing, schemas, caching, and locking are exactly the threaded
server's -- ``AsyncAdsServer`` subclasses ``AdsServer`` and funnels
every request through the shared
:meth:`~repro.serve.server.AdsServer.handle_request`, so JSON payloads
are byte-identical across transports and the binary wire codec
(:mod:`repro.serve.wire`) is negotiated the same way.

Three serving behaviours are new here:

* **Pipelining** -- the parser consumes requests from the stream as
  fast as they arrive; a client may write N requests in one segment
  and read N responses, paying one round trip total.
* **Backpressure** -- at most ``max_in_flight`` requests may be
  dispatching concurrently; beyond that the server answers ``503``
  with ``Retry-After`` and closes (counted as ``transport.load_shed``
  in ``/stats``, surfaced as ``saturation`` in ``/healthz``).
* **Coalescing** -- with ``coalesce_window > 0``, single-node
  ``GET /cardinality`` queries that arrive within the window are
  micro-batched into one
  :meth:`~repro.ads.index.AdsIndex.nodes_cardinality_at` call under a
  single read-lock acquisition.  Values are bit-identical to
  uncoalesced queries by construction; only the call count changes.
  Off by default: a window only pays for itself under concurrent
  load, and it would add pure latency to a lone sequential client.

Queries run inline on the event loop (they are microseconds of bisect
arithmetic; a thread handoff would cost more than the query), so a
whole-graph sweep does briefly stall other connections -- the LRU
cache exists precisely so sweeps amortise to a dict lookup.  Writes
(``POST /update`` / ``/compact``) take the same writer-preferring lock
as the threaded server and work identically.
"""

from __future__ import annotations

import asyncio
import math
import socket
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro._util import require
from repro.ads.index import AdsIndex
from repro.errors import ReproError
from repro.serve import wire
from repro.serve.schemas import (
    WireError,
    json_safe_number,
    parse_float,
    resolve_node,
)
from repro.serve.server import _MAX_BODY_BYTES, AdsServer, ServerBase

_MAX_HEADER_COUNT = 64
#: A request head (request line + headers) must fit in this many
#: bytes; mirrors ``http.server``'s 64 KiB request-line ceiling.
_MAX_HEAD_BYTES = 65536
#: Read size for the connection loop.  Large enough that a deep
#: pipeline of single-node queries arrives in one read.
_READ_CHUNK = 262144

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _ProtocolError(Exception):
    """A request the parser must refuse; the connection closes after
    the error response (unread body bytes would poison the stream)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _Coalescer:
    """Micro-batches concurrent single-node cardinality queries.

    Pending ``(label, future)`` pairs are grouped per distance
    threshold ``d``; the first arrival for a ``d`` arms a
    ``call_later`` flush after the window, and a bucket that reaches
    ``coalesce_max_batch`` flushes immediately.  Flushing resolves the
    whole bucket with one
    :meth:`~repro.ads.index.AdsIndex.nodes_cardinality_at` call under
    one read-lock acquisition.  Everything runs on the event loop
    thread, so no extra synchronisation is needed.
    """

    def __init__(self, server: "AsyncAdsServer"):
        self._server = server
        self._pending: Dict[float, List[Tuple[Any, asyncio.Future]]] = {}
        self._timers: Dict[float, asyncio.TimerHandle] = {}

    def submit(self, label: Any, d: float) -> "asyncio.Future[float]":
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[float]" = loop.create_future()
        bucket = self._pending.setdefault(d, [])
        bucket.append((label, future))
        if len(bucket) >= self._server.coalesce_max_batch:
            self._flush(d)
        elif d not in self._timers:
            self._timers[d] = loop.call_later(
                self._server.coalesce_window, self._flush, d
            )
        return future

    def _flush(self, d: float) -> None:
        timer = self._timers.pop(d, None)
        if timer is not None:
            timer.cancel()
        entries = self._pending.pop(d, None)
        if not entries:
            return
        server = self._server
        labels = [label for label, _ in entries]
        try:
            with server._rw_lock.read_locked():
                values = server.index.nodes_cardinality_at(labels, d)
        except Exception as error:  # resolved per-request to a 500
            for _, future in entries:
                if not future.done():
                    future.set_exception(error)
            return
        server._coalesced_batches += 1
        server._coalesced_queries += len(entries)
        for (_, future), value in zip(entries, values):
            if not future.done():
                future.set_result(value)


class AsyncTransport(ServerBase):
    """The asyncio pipelined transport as a mixin over :class:`ServerBase`.

    Holds everything event-loop shaped -- the non-blocking listening
    socket, the drain-all-buffered-requests connection handler, the
    hand-rolled HTTP/1.1 parser, backpressure shedding, and the
    one-write-per-wave renderer -- with no opinion about what
    :meth:`~repro.serve.server.ServerBase.handle_request` actually
    serves.  :class:`AsyncAdsServer` mixes it over
    :class:`~repro.serve.server.AdsServer`, and
    :class:`repro.serve.cluster.AsyncRouterServer` mixes the same
    transport over the cluster fan-out router.  Subclasses call
    :meth:`_init_async_transport` *before* the chassis ``__init__``
    (which opens the transport), and may override
    :meth:`_make_coalescer` / :meth:`_try_coalesce` to micro-batch
    specific GET targets.
    """

    #: Idle keep-alive connections are dropped after this many seconds
    #: (doubles as the slow-request ceiling; mirrors the threaded
    #: handler's ``timeout``).
    idle_timeout = 30.0

    def _init_async_transport(
        self,
        max_in_flight: int,
        coalesce_window: float = 0.0,
        coalesce_max_batch: int = 512,
    ) -> None:
        require(
            max_in_flight >= 1,
            f"max_in_flight must be >= 1, got {max_in_flight}",
        )
        require(
            coalesce_window >= 0.0,
            f"coalesce_window must be >= 0, got {coalesce_window}",
        )
        require(
            coalesce_max_batch >= 1,
            f"coalesce_max_batch must be >= 1, got {coalesce_max_batch}",
        )
        self.max_in_flight = int(max_in_flight)
        self.coalesce_window = float(coalesce_window)
        self.coalesce_max_batch = int(coalesce_max_batch)
        self._in_flight = 0
        self._coalesced_batches = 0
        self._coalesced_queries = 0
        self._coalescer: Optional[_Coalescer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    def _make_coalescer(self) -> Optional[_Coalescer]:
        """Built when the loop starts; ``None`` disables coalescing."""
        return None

    def _try_coalesce(self, target: str):
        """Coalescable GET targets return an awaitable; default: none."""
        return None

    # ------------------------------------------------------------------
    # Transport lifecycle (overrides the _PooledHTTPServer plumbing)
    # ------------------------------------------------------------------
    def _open_transport(self, host: str, port: int) -> None:
        # Bound synchronously so `server.port` works before start(),
        # exactly like the threaded server's constructor.
        self._socket = socket.create_server((host, port), backlog=512)
        self._socket.setblocking(False)

    @property
    def host(self) -> str:
        return self._socket.getsockname()[0]

    @property
    def port(self) -> int:
        return self._socket.getsockname()[1]

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (or Ctrl-C)."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._coalescer = self._make_coalescer()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._socket
        )
        self._serving.set()
        try:
            await self._stop.wait()
        finally:
            self._serving.clear()
            self._loop = None
            server.close()
            await server.wait_closed()

    def shutdown(self) -> None:
        """Stop the loop, join the background thread, close the socket."""
        loop = self._loop
        if self._serving.is_set() and loop is not None:
            try:
                loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already torn down
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.close()

    def close(self) -> None:
        """Release the listening socket (idempotent)."""
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # Transport introspection
    # ------------------------------------------------------------------
    def _saturation(self) -> float:
        # The probing request is itself in flight; saturation reports
        # the pressure *beyond* it so an idle server answers 0.0 on
        # either transport.
        return min(
            1.0, max(0, self._in_flight - 1) / self.max_in_flight
        )

    def _transport_stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            sheds = self._sheds
        return {
            "mode": "async",
            "in_flight": self._in_flight,
            "max_in_flight": self.max_in_flight,
            "load_shed": sheds,
            "coalesce_window": self.coalesce_window,
            "coalesced_batches": self._coalesced_batches,
            "coalesced_queries": self._coalesced_queries,
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Same rationale as the threaded handler: responses go
                # out as one buffer here, but disable Nagle anyway so
                # pipelined trickles never stall behind delayed ACKs.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-specific
                pass
        buf = bytearray()
        out: List[bytes] = []
        try:
            while True:
                # Drain every complete request already buffered before
                # touching the socket again: this is what makes a
                # pipelined segment of N requests cost one read, one
                # write, and zero intermediate round trips.
                closing = False
                while True:
                    try:
                        parsed = self._parse_request(buf)
                    except _ProtocolError as error:
                        self._count_request()
                        out.append(self._render(
                            error.status, {"error": error.message},
                            None, close=True,
                        ))
                        closing = True
                        break
                    if parsed is None:
                        break  # incomplete request: need more bytes
                    method, target, headers, body, keep_alive = parsed
                    accept = headers.get("accept")
                    if self._in_flight >= self.max_in_flight:
                        self._count_shed()
                        out.append(self._render(
                            503,
                            {"error": "server overloaded; retry later"},
                            accept, close=True,
                        ))
                        closing = True
                        break
                    self._in_flight += 1
                    try:
                        if method not in ("GET", "POST"):
                            self._count_request()
                            status: int = 501
                            payload: Dict[str, Any] = {
                                "error": f"method {method} is not supported"
                            }
                        else:
                            coalesced = (
                                self._try_coalesce(target)
                                if self._coalescer is not None
                                and method == "GET" else None
                            )
                            if coalesced is not None:
                                status, payload = await coalesced
                            else:
                                status, payload = self.handle_request(
                                    method, target, body,
                                    content_type=headers.get("content-type"),
                                )
                    finally:
                        self._in_flight -= 1
                    out.append(self._render(
                        status, payload, accept, close=not keep_alive
                    ))
                    if not keep_alive:
                        closing = True
                        break
                if out:
                    writer.write(b"".join(out))
                    out.clear()
                    await writer.drain()
                if closing:
                    return
                chunk = await asyncio.wait_for(
                    reader.read(_READ_CHUNK), timeout=self.idle_timeout
                )
                if not chunk:
                    # EOF: clean between requests, or a truncated
                    # request mid-flight -- either way, drop quietly.
                    return
                buf += chunk
        except (asyncio.TimeoutError, TimeoutError):
            return  # idle connection: drop quietly
        except (ConnectionResetError, BrokenPipeError, OSError):
            return  # client went away; nothing to salvage
        except asyncio.CancelledError:
            # Loop shutdown cancels live connection handlers; finishing
            # normally (rather than ending cancelled) keeps the stream
            # protocol's done-callback from logging the cancellation.
            return
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - defensive
                pass

    @staticmethod
    def _parse_request(
        buf: bytearray,
    ) -> Optional[Tuple[str, str, Dict[str, str], Optional[bytes], bool]]:
        """Parse (and consume) one request from the front of ``buf``.

        Returns ``None`` when the buffer holds only a prefix of a
        request (the caller reads more bytes), raises
        :class:`_ProtocolError` for requests that must be refused, and
        otherwise deletes the parsed bytes from ``buf`` and returns
        ``(method, target, headers, body, keep_alive)``.
        """
        head_end = buf.find(b"\r\n\r\n")
        sep_len = 4
        if head_end == -1:
            # Tolerate bare-LF framing, as the readline-based threaded
            # parser does.
            head_end = buf.find(b"\n\n")
            sep_len = 2
        if head_end == -1:
            if buf and b"\n" not in buf and len(buf) > _MAX_HEAD_BYTES:
                raise _ProtocolError(400, "request line too long")
            if len(buf) > 2 * _MAX_HEAD_BYTES:
                raise _ProtocolError(400, "request head too large")
            return None
        lines = bytes(buf[:head_end]).split(b"\n")
        if len(lines[0]) > _MAX_HEAD_BYTES:
            raise _ProtocolError(400, "request line too long")
        line = lines[0].rstrip(b"\r").decode("latin-1")
        parts = line.split()
        if len(parts) != 3:
            raise _ProtocolError(400, "malformed request line")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(400, f"unsupported protocol {version}")
        if len(lines) - 1 > _MAX_HEADER_COUNT:
            raise _ProtocolError(400, "too many headers")
        headers: Dict[str, str] = {}
        for raw_header in lines[1:]:
            stripped = raw_header.rstrip(b"\r")
            name, sep, value = stripped.partition(b":")
            if not sep:
                raise _ProtocolError(400, "malformed header line")
            headers[name.strip().lower().decode("latin-1")] = (
                value.strip().decode("latin-1")
            )
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        body: Optional[bytes] = None
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _ProtocolError(400, "invalid Content-Length")
            if length < 0:
                raise _ProtocolError(400, "invalid Content-Length")
            if length > _MAX_BODY_BYTES:
                raise _ProtocolError(400, "request body too large")
            body_start = head_end + sep_len
            if len(buf) - body_start < length:
                return None  # body still in flight
            # Consumed for ANY method (a GET body left unread would be
            # parsed as the next pipelined request); only POST uses it.
            raw_body = bytes(buf[body_start:body_start + length])
            del buf[:body_start + length]
            if method == "POST":
                body = raw_body
        elif method == "POST":
            # No Content-Length: a chunked (or absent) body we will
            # not read, so the connection cannot be kept alive.
            raise _ProtocolError(400, "POST requires Content-Length")
        else:
            del buf[:head_end + sep_len]
        return method, target, headers, body, keep_alive

    def _render(
        self,
        status: int,
        payload: Dict[str, Any],
        accept: Optional[str],
        close: bool,
    ) -> bytes:
        data, content_type = wire.encode_response(
            payload, accept, self.wire_mode
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
        )
        if status == 503:
            head += "Retry-After: 1\r\n"
        if close:
            head += "Connection: close\r\n"
        head += "\r\n"
        return head.encode("latin-1") + data


class AsyncAdsServer(AsyncTransport, AdsServer):
    """The asyncio serving daemon: same API, pipelined transport.

    Args:
        index: The sketch index to serve.
        host / port: Bind address; ``port=0`` picks a free port, read
            it back from :attr:`port` (available immediately -- the
            listening socket binds at construction, like the threaded
            server).
        cache_size: LRU capacity for whole-graph results.
        max_in_flight: Bound on concurrently dispatching requests;
            beyond it new requests are shed with ``503`` +
            ``Retry-After``.
        coalesce_window: Seconds to hold a single-node cardinality
            query open for micro-batching (``0`` disables coalescing).
        coalesce_max_batch: Flush a coalescing bucket early once it
            holds this many queries.
        wire_mode: ``"auto"`` negotiates the binary codec per request,
            ``"json"`` pins responses to JSON.
        graph / index_path / graph_path / node_range / wal_dir: As on
            :class:`~repro.serve.server.AdsServer` (writes, the
            cluster shard-worker mode, and write-ahead logging with
            startup replay work identically on this transport).

    Example:
        >>> from repro.graph import path_graph
        >>> from repro.ads import AdsIndex
        >>> server = AsyncAdsServer(
        ...     AdsIndex.build(path_graph(4).to_csr(), k=4))
        >>> with server:  # event loop on a background thread
        ...     from repro.serve.client import QueryClient
        ...     QueryClient(server.url).cardinality(node=0, d=1.0)["value"]
        2.0
    """

    def __init__(
        self,
        index: AdsIndex,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        max_in_flight: int = 256,
        coalesce_window: float = 0.0,
        coalesce_max_batch: int = 512,
        wire_mode: str = "auto",
        graph=None,
        index_path=None,
        graph_path=None,
        node_range=None,
        wal_dir=None,
    ):
        self._init_async_transport(
            max_in_flight, coalesce_window, coalesce_max_batch
        )
        # threads=1: the event loop is the single request "worker", so
        # the kernel-oversubscription cap leaves the index its full
        # fan-out budget.
        super().__init__(
            index,
            host=host,
            port=port,
            cache_size=cache_size,
            threads=1,
            graph=graph,
            index_path=index_path,
            graph_path=graph_path,
            wire_mode=wire_mode,
            node_range=node_range,
            wal_dir=wal_dir,
        )

    def _make_coalescer(self) -> Optional[_Coalescer]:
        return _Coalescer(self) if self.coalesce_window > 0.0 else None

    def _try_coalesce(self, target: str):
        """The coalesced path for ``GET /cardinality?node=...``, or
        ``None`` when the request is not a single-node cardinality
        query (the shared ``handle_request`` serves it instead)."""
        try:
            split = urlsplit(target)
            if unquote(split.path) != "/cardinality":
                return None
            params = {
                name: values[-1]
                for name, values in parse_qs(
                    split.query, keep_blank_values=True
                ).items()
            }
        except ValueError:
            return None
        if "node" not in params:
            return None
        return self._coalesced_cardinality(params)

    async def _coalesced_cardinality(
        self, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        self._count_request()
        try:
            d = parse_float(params, "d", math.inf)
            label = resolve_node(self.index, params["node"])
        except WireError as error:
            return error.status, {"error": error.message}
        try:
            value = await self._coalescer.submit(label, d)
        except ReproError as error:
            self._count_internal_error()
            return 500, {"error": str(error)}
        except Exception:  # pragma: no cover - defensive
            self._count_internal_error()
            return 500, {"error": "internal server error"}
        # Key order matches AdsServer._cardinality exactly, so the
        # JSON bytes are identical with coalescing on or off.
        return 200, {
            "node": label,
            "d": json_safe_number(d),
            "value": value,
        }


__all__ = ["AsyncAdsServer", "AsyncTransport"]
