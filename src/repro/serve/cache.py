"""Thread-safe LRU result cache for the query server.

The hot serving queries are the whole-graph ones -- the ANF series,
top-central rankings, all-nodes cardinality sweeps -- which cost O(total
entries) to recompute but are identical for every caller.
:class:`LruCache` memoises them keyed on (endpoint, canonical params)
and exposes hit/miss/eviction counters that the server surfaces at
``/stats``.

Invalidation story: a served index is *mostly* static but no longer
immutable -- ``POST /update`` splices live edge batches into it (under
the exclusive side of the server's
:class:`~repro.serve.locks.ReadWriteLock`), after which every cached
whole-graph sweep is stale by definition.  The server therefore calls
:meth:`LruCache.clear` as part of each applied batch, *before* the
write lock is released, so no reader can observe a pre-update cached
result against a post-update index.  A read-only server (mmap-loaded,
or started without its graph) never updates, and its entries really
are valid for the process lifetime.  Refreshing an index on disk
(``write_shard``, a rebuild) still means starting a new server -- or
an embedding application swapping the index object and calling
:meth:`LruCache.clear` itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from repro._util import require

_MISS = object()


class LruCache:
    """A bounded least-recently-used map with hit/miss counters.

    Args:
        capacity: Maximum number of cached results; ``0`` disables
            caching entirely (every ``get`` misses, ``put`` is a no-op).

    Raises:
        ParameterError: if *capacity* is negative.

    Example:
        >>> cache = LruCache(2)
        >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
        >>> cache.get("a") is None  # evicted: capacity 2, LRU order
        True
        >>> cache.get("c")
        3
        >>> cache.stats()["evictions"]
        1
    """

    def __init__(self, capacity: int):
        require(capacity >= 0, f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key*, or *default*; counts hit/miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)``: the cached value, computing and storing
        it on a miss.

        The computation runs outside the lock -- queries are pure
        functions of the immutable index, so two threads racing the same
        miss at worst compute the identical result twice.
        """
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters for ``/stats``: hits, misses, evictions, size, capacity."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
