"""``QueryClient``: a thin stdlib client for the ``repro serve`` API.

Built straight on :mod:`http.client` so the connection is kept alive
across calls -- the difference between a few hundred and a few thousand
queries per second against a localhost daemon.  One client owns one
socket and is **not** thread-safe; give each thread its own client.

Example::

    client = QueryClient("http://127.0.0.1:8080")
    client.healthz()                      # {"status": "ok", ...}
    client.cardinality(node=5, d=2.0)     # one node
    client.cardinality_batch([1, 2, 3])   # many nodes, one round trip
    client.top_central(count=10, kind="harmonic")

The client speaks to either transport (the threaded ``AdsServer`` or
the asyncio ``AsyncAdsServer``) identically, and can opt into the
compact binary codec with ``wire_mode="binary"`` -- same payloads,
negotiated via ``Accept``/``Content-Type``, no API change.

Retries are idempotency-aware.  A kept-alive connection the server has
since closed fails on its next use, so reads (every ``GET``, plus the
read-only ``POST /cardinality`` / ``/closeness`` / ``/similarity`` /
``/distance`` batches) are replayed once on a fresh socket.  Writes (``/update``, ``/compact``)
are replayed **only** when the send itself failed -- a request whose
bytes were fully handed to the transport may already have been applied
before the connection died, and replaying it would double-apply the
edge batch.  That case surfaces as a transport-level
:class:`ServeClientError` instead; the caller decides whether to
re-issue after checking ``/stats``.

Server-side refusals (unknown node, malformed parameter) raise
:class:`ServeClientError` carrying the HTTP status and the server's
``error`` message; transport failures raise it with ``status=None``.
A ``503`` shed also carries the server's ``Retry-After`` hint as
``error.retry_after`` seconds.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import time
from typing import Any, Dict, Hashable, Optional, Sequence
from urllib.parse import quote, urlencode, urlsplit

from repro.errors import ReproError
from repro.serve import wire


class ServeClientError(ReproError):
    """An HTTP query failed; ``status`` is None for transport faults.

    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds when present (load-shedding 503s send it), else ``None``.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class QueryClient:
    """Keep-alive client for one ``AdsServer`` / ``AsyncAdsServer``.

    Args:
        base_url: Server root, e.g. ``"http://127.0.0.1:8080"``.
        timeout: Per-request socket timeout in seconds.
        wire_mode: ``"json"`` (default) speaks the JSON API unchanged;
            ``"binary"`` negotiates the compact wire codec
            (:mod:`repro.serve.wire`) for request and response bodies.
            Results are identical either way.
        retries_on_shed: Opt-in 503 handling.  ``0`` (default) raises
            the shed straight to the caller, as always.  ``N > 0``
            sleeps for the server's ``Retry-After`` hint (capped at
            ``max_retry_after``) and re-issues the request up to N
            times before raising.  Safe for every endpoint: a 503 is
            sent *instead of* dispatching, so nothing was applied.
        max_retry_after: Ceiling in seconds on any single shed sleep --
            a server advertising a pathological ``Retry-After`` must
            not wedge the client.
    """

    # POST endpoints that are pure reads: replaying one can never
    # change server state, so they retry like GETs do.
    _IDEMPOTENT_POST_PATHS = frozenset(
        {"/cardinality", "/closeness", "/similarity", "/distance"}
    )

    #: Shed responses without a (parseable) Retry-After back off this
    #: many seconds.
    DEFAULT_RETRY_AFTER = 0.05

    def __init__(
        self, base_url: str, timeout: float = 10.0,
        wire_mode: str = "json", retries_on_shed: int = 0,
        max_retry_after: float = 5.0,
    ):
        if "://" not in base_url:
            # "localhost:8080" would otherwise urlsplit as scheme
            # "localhost"; scheme-less inputs are always host[:port].
            base_url = f"http://{base_url}"
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.netloc:
            raise ServeClientError(f"unsupported server URL {base_url!r}")
        if wire_mode not in ("json", "binary"):
            raise ServeClientError(
                f"wire_mode must be 'json' or 'binary', got {wire_mode!r}"
            )
        host, _, port = split.netloc.partition(":")
        self.host = host
        self.port = int(port) if port else 80
        self.timeout = timeout
        self.wire_mode = wire_mode
        self.retries_on_shed = int(retries_on_shed)
        self.max_retry_after = float(max_retry_after)
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One logical request, with opt-in sleep-and-retry on 503.

        A shed (503) is answered *instead of* dispatching the request,
        so re-issuing after the server's ``Retry-After`` hint can
        never double-apply anything -- which is why the shed retry,
        unlike the mid-flight replay below, applies to writes too.
        """
        shed_attempts = 0
        while True:
            try:
                return self._request_once(method, path, params, payload)
            except ServeClientError as error:
                if (
                    error.status != 503
                    or shed_attempts >= self.retries_on_shed
                ):
                    raise
                shed_attempts += 1
                delay = (
                    error.retry_after
                    if error.retry_after is not None
                    else self.DEFAULT_RETRY_AFTER
                )
                time.sleep(min(max(delay, 0.0), self.max_retry_after))

    def _request_once(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        full_path = f"{path}?{urlencode(params)}" if params else path
        body = None
        headers = {}
        if self.wire_mode == "binary":
            headers["Accept"] = wire.WIRE_CONTENT_TYPE
        if payload is not None:
            if self.wire_mode == "binary":
                body = wire.encode(payload)
                headers["Content-Type"] = wire.WIRE_CONTENT_TYPE
            else:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
        idempotent = (
            method == "GET" or path in self._IDEMPOTENT_POST_PATHS
        )
        last_error: Optional[Exception] = None
        # One retry on a fresh socket: a kept-alive connection the
        # server has since closed fails only on its next use.  Writes
        # replay ONLY when the send itself failed -- a fully-sent
        # /update the connection died on may already be applied, and
        # replaying it would double-apply the edge batch.
        for attempt in range(2):
            conn = self._conn
            if conn is None:
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
                try:
                    conn.connect()
                    conn.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError as error:
                    conn.close()
                    raise ServeClientError(
                        f"cannot reach server ({error})"
                    )
            sent = False
            try:
                conn.request(
                    method, full_path, body=body, headers=headers
                )
                # request() returning means every byte was handed to
                # the transport; a send-phase exception means the body
                # never fully reached the server (its Content-Length
                # read comes up short), so the request cannot have
                # been applied and is safe to replay.
                sent = True
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError) as error:
                conn.close()
                self._conn = None
                last_error = error
                if attempt == 0 and (idempotent or not sent):
                    continue
                raise ServeClientError(
                    f"request failed mid-flight ({error}); not "
                    f"replayed -- {path} may already be applied"
                    if not idempotent else
                    f"cannot reach server ({error})"
                )
            self._conn = conn
            return self._parse_response(response, raw)
        raise ServeClientError(f"cannot reach server ({last_error})")

    def _parse_response(self, response, raw: bytes) -> Dict[str, Any]:
        """Decode a response body per its Content-Type; raise on >=400."""
        if wire.is_binary_content_type(
            response.getheader("Content-Type")
        ):
            try:
                data = wire.decode(raw)
            except wire.WireFormatError as error:
                raise ServeClientError(
                    f"malformed binary response ({error})",
                    status=response.status,
                )
        else:
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeClientError(
                    f"non-JSON response ({response.status})",
                    status=response.status,
                )
        if response.status >= 400:
            message = (
                data.get("error", "request failed")
                if isinstance(data, dict) else "request failed"
            )
            retry_after: Optional[float] = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass  # HTTP-date form; callers just back off
            raise ServeClientError(
                message, status=response.status, retry_after=retry_after
            )
        return data

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def cardinality(
        self, node: Optional[Hashable] = None, d: Optional[float] = None
    ) -> Dict[str, Any]:
        """n_d estimates: every node, or just *node* when given."""
        params: Dict[str, Any] = {}
        if d is not None and d != math.inf:
            # +inf is the server default; anything else (-inf included)
            # must travel, not silently widen to all-reachable.
            params["d"] = d
        if node is not None:
            params["node"] = node
        return self._request("GET", "/cardinality", params=params)

    def cardinality_batch(
        self, nodes: Sequence[Hashable], d: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round trip answering n_d for every node in *nodes*."""
        payload: Dict[str, Any] = {"nodes": list(nodes)}
        if d is not None and d != math.inf:
            payload["d"] = d
        return self._request("POST", "/cardinality", payload=payload)

    def closeness(
        self,
        node: Optional[Hashable] = None,
        kind: str = "classic",
        half_life: Optional[float] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"kind": kind}
        if half_life is not None:
            params["half_life"] = half_life
        if node is not None:
            params["node"] = node
        return self._request("GET", "/closeness", params=params)

    def closeness_batch(
        self,
        nodes: Sequence[Hashable],
        kind: str = "classic",
        half_life: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"nodes": list(nodes), "kind": kind}
        if half_life is not None:
            payload["half_life"] = half_life
        return self._request("POST", "/closeness", payload=payload)

    def neighborhood(
        self, node: Optional[Hashable] = None
    ) -> Dict[str, Any]:
        """The ANF series -- whole graph, or one node's distribution."""
        params = {"node": node} if node is not None else None
        return self._request("GET", "/neighborhood", params=params)

    def top_central(
        self,
        count: int = 10,
        kind: str = "classic",
        half_life: Optional[float] = None,
        largest: bool = True,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "count": count,
            "kind": kind,
            "largest": "true" if largest else "false",
        }
        if half_life is not None:
            params["half_life"] = half_life
        return self._request("GET", "/top-central", params=params)

    def node(self, label: Hashable) -> Dict[str, Any]:
        """One node's summary: sketch size, reachability, centrality."""
        return self._request(
            "GET", f"/node/{quote(str(label), safe='')}"
        )

    def similarity_batch(
        self,
        pairs: Sequence[Sequence[Hashable]],
        metric: str = "jaccard",
        d: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pairwise similarity in one round trip.

        *metric* is ``"jaccard"`` (d-neighborhood MinHash Jaccard;
        *d* defaults to the full reachability sets) or ``"closeness"``
        (distance-profile similarity; *d* does not apply).  Needs a
        bottom-k index; 409 otherwise.
        """
        payload: Dict[str, Any] = {
            "pairs": [list(pair) for pair in pairs],
            "metric": metric,
        }
        if d is not None and d != math.inf:
            payload["d"] = d
        return self._request("POST", "/similarity", payload=payload)

    def distance_batch(
        self, pairs: Sequence[Sequence[Hashable]]
    ) -> Dict[str, Any]:
        """Pairwise distance-oracle upper bounds in one round trip.

        Each value is the 2-hop-cover estimate through the pair's
        common sketch entries; ``None`` (JSON null) when the sketches
        share no entry.  Needs a bottom-k index; 409 otherwise.
        """
        payload = {"pairs": [list(pair) for pair in pairs]}
        return self._request("POST", "/distance", payload=payload)

    def similar(
        self,
        node: Hashable,
        count: int = 10,
        d: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The *count* nodes most similar to *node* (sketch-space
        nearest neighbors by d-neighborhood Jaccard)."""
        params: Dict[str, Any] = {"count": count}
        if d is not None and d != math.inf:
            params["d"] = d
        return self._request(
            "GET", f"/similar/{quote(str(node), safe='')}",
            params=params,
        )

    def nf_curve(self) -> Dict[str, Any]:
        """The cumulative distance distribution: ``[d, pairs_within_d,
        fraction]`` rows over the whole graph."""
        return self._request("GET", "/nf-curve")

    def update(self, edges: Sequence[Sequence[Any]]) -> Dict[str, Any]:
        """Apply an edge batch: ``[[u, v], [u, v, w], ...]``.

        Requires a server started with the index's graph (``repro serve
        --graph``) and an eagerly loaded index; 409 otherwise.
        """
        payload = {"edges": [list(edge) for edge in edges]}
        return self._request("POST", "/update", payload=payload)

    def compact(self) -> Dict[str, Any]:
        """Flush applied updates to the server's own index path.

        The destination is fixed server-side (a client-chosen path
        would be an arbitrary-file-write primitive); 409 when the
        server has no index path or is read-only.
        """
        return self._request("POST", "/compact", payload={})


__all__ = ["QueryClient", "ServeClientError"]
