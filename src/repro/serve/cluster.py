"""``RouterServer``: the sharded-cluster fan-out router.

The deployment shape the paper's scale story implies: the ADSSHD01
sharded layout is split by *global node-id range*, N ``repro serve``
workers each serve one range (``AdsServer(node_range=...)`` -- a
worker over a sharded mmap layout only ever maps its own shard
files), and this router answers the single-server API by fanning out
over the binary wire codec and merging exactly:

* **Single-node queries** (``?node=``, ``/node/<label>``) route to the
  owning shard group and pass the worker's payload through untouched.
* **Sweeps** (``/cardinality``, ``/closeness``) fan to every group in
  shard order and concatenate: each node lives on exactly one shard
  and workers emit rows in global id order, so concatenation *is* the
  single-index row order, value-for-value bit-identical.
* **``/top-central``** k-way merges the per-group top-``count`` rows
  by re-ranking the union with the same
  :func:`~repro.centrality.closeness.top_k_central_nodes` comparator
  (value, then node ``repr`` -- the documented tie-break).  The global
  top-count is always a subset of the union of per-group top-counts,
  so the merge is exact, not approximate (:func:`merge_top_central`).
* **``/neighborhood``** chains the seeded ``POST /nf-chain``
  accumulation through the groups in shard order, then prefix-sums --
  replaying the single-index float-op sequence exactly (see
  :meth:`~repro.ads.index.AdsIndex.accumulate_neighborhood_jumps`);
  ``/nf-curve`` shapes that same cached series through the shared
  :func:`~repro.serve.schemas.nf_curve_points` transform.
* **Pair batches** (``POST /similarity``, ``POST /distance``) scatter
  pairs by the group owning each pair's first node (any worker
  answers any pair identically -- every worker holds the full index)
  and reassemble values in request order, so the response rows are
  value-for-value the single server's.
* **``/similar/<label>``** fans the scan to every group (each worker
  scans only its own node range) and re-ranks the union of per-range
  top-``count`` rows with :func:`merge_top_central` -- exact for the
  same subset argument as ``/top-central``.
* **``POST /update``** is two-phase: validate at the router, refuse
  unless every non-stale replica of every group is up, apply the
  batch to *every* replica (full-index workers apply deterministically
  and stay converged; a replica that misses a committed batch is
  quarantined ``stale``), and only then grow the router's label
  directory and invalidate its cache.  The fan-out runs under the
  router's exclusive write lock, so no concurrent read ever observes
  a torn cross-shard view.

Failover: replicas are health-checked (periodic ``/healthz`` probes
plus per-RPC outcomes -- see :mod:`repro.serve.membership`).  A
transport fault, 5xx, or malformed wire frame marks the replica down
and the call retries the next candidate; a 4xx is a *worker answer*
and propagates to the client verbatim.  When a whole group is
unreachable the router sheds with a structured
``503 shard [start, stop) unavailable: ...`` -- never a hang, never a
partial merge.

Self-healing: a ``stale``-quarantined replica (one that missed a
committed write or answered divergently) is no longer terminal.  The
router's resync loop (:meth:`RouterServer.resync_stale`, run every
``resync_interval`` seconds) re-seeds it from a healthy donor via the
worker-scope ``/sync/snapshot`` -> ``/sync/install`` protocol and
re-admits it only after the installed content digest matches the
donor's -- all under the router's exclusive write lock, so no update
can slip between the snapshot and the verdict.  And misconfiguration
is refused up front: at construction the router probes every worker's
actual ``node_range`` and labels digest and raises
:class:`ClusterTopologyError` on any mismatch with the declared
``--cluster`` ranges, instead of silently answering sweeps with the
wrong rows.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote

from repro._util import require
from repro.ads.index import _labels_digest
from repro.centrality.closeness import top_k_central_nodes
from repro.errors import ReproError
from repro.serve.aio import AsyncTransport
from repro.serve.client import ServeClientError
from repro.serve.membership import (
    STATE_DOWN,
    STATE_UP,
    ClusterMembership,
    Replica,
    ShardGroup,
)
from repro.serve.schemas import (
    WireError,
    bad_request,
    centrality_kwargs,
    coerce_edge_labels,
    conflict,
    json_safe_number,
    nf_curve_points,
    parse_bool,
    parse_edges,
    parse_float,
    parse_int,
    parse_pairs,
    parse_similarity_metric,
    resolve_node,
    resolve_nodes,
)
from repro.serve.server import ServerBase, _batch_float

#: ``((start, stop_or_None), [replica_url, ...])`` -- one shard group.
GroupSpec = Tuple[Tuple[int, Optional[int]], Sequence[str]]


class ClusterTopologyError(ReproError):
    """Router construction refused: one or more workers' actual served
    ranges or label sets disagree with the declared ``--cluster``
    topology.  Routing over them would silently answer sweeps with the
    wrong rows, so the router fails fast instead."""


class LabelDirectory:
    """The router's label -> global-node-id map.

    Duck-types the slice of the index surface the schemas layer needs
    (``__contains__`` for :func:`~repro.serve.schemas.resolve_node`,
    :meth:`label_type` for edge coercion), so the router validates
    requests with *exactly* the worker's code paths -- refusals stay
    byte-identical to a single server's.  Grown in worker interning
    order when updates append nodes (first occurrence of each new
    endpoint label, u before v, edge by edge).
    """

    def __init__(self, labels: Sequence[Any]):
        self._labels: List[Any] = list(labels)
        self._ids: Dict[Any, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        require(
            len(self._ids) == len(self._labels),
            "node labels must be unique",
        )
        require(len(self._labels) >= 1, "a cluster needs >= 1 node")

    def __contains__(self, label: Any) -> bool:
        return label in self._ids

    def __len__(self) -> int:
        return len(self._labels)

    def id_of(self, label: Any) -> int:
        return self._ids[label]

    def label_type(self) -> Optional[type]:
        """Same uniformity rule as ``AdsIndex.label_type``: ``int`` if
        every label is a non-bool int, ``str`` if every label is a
        str, else ``None`` (mixed -- no coercion)."""
        if all(
            isinstance(label, int) and not isinstance(label, bool)
            for label in self._labels
        ):
            return int
        if all(isinstance(label, str) for label in self._labels):
            return str
        return None

    def append(self, label: Any) -> bool:
        """Intern *label* if unseen; True when it was new."""
        if label in self._ids:
            return False
        self._ids[label] = len(self._labels)
        self._labels.append(label)
        return True

    def labels_digest(self) -> str:
        """Same fingerprint as ``AdsIndex.labels_digest`` over the same
        label list -- the equality topology validation checks."""
        return _labels_digest(self._labels)


def merge_top_central(
    group_results: Sequence[Sequence[Sequence[Any]]],
    count: int,
    largest: bool = True,
) -> List[List[Any]]:
    """Exact k-way merge of per-shard ``/top-central`` rows.

    Each group submits its own top-``count`` ``[label, value]`` rows.
    Every node lives on exactly one shard, so any node in the global
    top-``count`` is necessarily in its own shard's top-``count`` --
    the union of the per-group rows always contains the global answer.
    Re-selecting from that union with
    :func:`~repro.centrality.closeness.top_k_central_nodes` applies
    the *same* comparator a single index uses (value first, node
    ``repr`` as the tie-break), so the merged ranking -- order
    included -- is bit-identical to the single-index result.

    Example:
        >>> merge_top_central(
        ...     [[["a", 0.5], ["b", 0.25]], [["c", 0.5], ["d", 0.75]]],
        ...     count=3,
        ... )
        [['d', 0.75], ['a', 0.5], ['c', 0.5]]
    """
    candidates: Dict[Any, float] = {}
    for rows in group_results:
        for label, value in rows:
            candidates[label] = value
    return [
        [label, value]
        for label, value in top_k_central_nodes(
            candidates, count, largest=largest
        )
    ]


class RouterServer(ServerBase):
    """Fan-out router over a sharded worker cluster.

    Serves the exact single-server API (same endpoints, same payload
    bytes, same refusal messages) by delegating to shard workers; see
    the module docstring for merge and failover semantics.

    Args:
        labels: Every node label in global id order (``index.nodes()``
            of the full index; ``repro route`` reads them from the
            index header without materialising sketches).
        groups: Shard groups as ``((start, stop), [url, ...])`` pairs.
            Ranges must tile ``[0, len(labels))`` contiguously in
            order; the last group's stop is treated as open-ended so
            it also owns nodes appended by updates.  Every URL in a
            group is a replica serving that same range.
        host / port / cache_size / threads / wire_mode: As on
            :class:`~repro.serve.server.AdsServer` (the router carries
            its own LRU for merged sweep results, keyed identically).
        rpc_timeout: Socket timeout per worker RPC -- the bound that
            turns a hung worker into a failover.
        rpc_wire: ``"binary"`` (default) or ``"json"`` worker RPCs;
            both round-trip floats exactly.
        probe_interval: Seconds between background ``/healthz`` probes
            of every non-stale replica (``0`` disables; per-RPC
            outcomes still mark replicas down/up).
        writable: Accept ``POST /update`` / ``/compact`` and fan them
            to every replica.  Requires workers started with their
            graphs (eager indexes); leave False for mmap deployments.
        fanout_workers: Thread-pool size for parallel group RPCs.
        validate_topology: Probe every worker's ``/stats`` at
            construction and refuse (:class:`ClusterTopologyError`)
            any whose actual ``node_range`` or labels digest disagrees
            with the declared group ranges.  Workers that are
            unreachable are marked down and skipped -- an outage is
            failover's job, not a misconfiguration.
        resync_interval: Seconds between automatic
            :meth:`resync_stale` sweeps re-seeding quarantined
            replicas from healthy donors (``0`` disables the loop;
            the method can still be called directly).

    Example:
        >>> from repro.graph import path_graph
        >>> from repro.ads import AdsIndex
        >>> from repro.serve import AdsServer, QueryClient
        >>> index = AdsIndex.build(path_graph(6).to_csr(), k=4)
        >>> w0 = AdsServer(index, node_range=(0, 3)).start()
        >>> w1 = AdsServer(index, node_range=(3, None)).start()
        >>> router = RouterServer(
        ...     index.nodes(),
        ...     [((0, 3), [w0.url]), ((3, None), [w1.url])],
        ... )
        >>> with router:
        ...     QueryClient(router.url).cardinality(node=0, d=1.0)["value"]
        2.0
        >>> w0.shutdown(); w1.shutdown()
    """

    def __init__(
        self,
        labels: Sequence[Any],
        groups: Sequence[GroupSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        threads: int = 8,
        wire_mode: str = "auto",
        rpc_timeout: float = 10.0,
        rpc_wire: str = "binary",
        probe_interval: float = 0.0,
        writable: bool = False,
        fanout_workers: Optional[int] = None,
        validate_topology: bool = True,
        resync_interval: float = 0.0,
    ):
        require(
            rpc_wire in ("binary", "json"),
            f"rpc_wire must be 'binary' or 'json', got {rpc_wire!r}",
        )
        require(
            rpc_timeout > 0, f"rpc_timeout must be > 0, got {rpc_timeout}"
        )
        require(
            resync_interval >= 0,
            f"resync_interval must be >= 0, got {resync_interval}",
        )
        self._directory = LabelDirectory(labels)
        self.rpc_timeout = float(rpc_timeout)
        self.rpc_wire = rpc_wire
        self.probe_interval = float(probe_interval)
        self.resync_interval = float(resync_interval)
        self.writable = bool(writable)
        built = []
        for position, ((start, stop), urls) in enumerate(groups):
            if position == len(groups) - 1:
                # Open-ended: the last group also owns appended nodes.
                require(
                    stop is None or stop == len(self._directory),
                    f"last shard range must end at {len(self._directory)}"
                    f" (or None), got {stop}",
                )
                stop = None
            built.append(ShardGroup(start, stop, [
                Replica(url, timeout=self.rpc_timeout, wire_mode=rpc_wire)
                for url in urls
            ]))
        self._membership = ClusterMembership(built)
        self._groups = self._membership.groups
        self._fan_outs = 0
        self._failovers = 0
        self._resyncs = 0
        self._resync_stop = threading.Event()
        self._resync_thread: Optional[threading.Thread] = None
        if validate_topology:
            try:
                self._validate_topology()
            except BaseException:
                self._membership.close()
                raise
        if fanout_workers is None:
            fanout_workers = max(4, min(32, int(threads) * len(built)))
        self._fanout_pool = ThreadPoolExecutor(
            max_workers=fanout_workers,
            thread_name_prefix="repro-route-fanout",
        )
        super().__init__(
            host=host, port=port, cache_size=cache_size,
            threads=threads, wire_mode=wire_mode,
        )
        self._membership.start_probes(self.probe_interval)
        self.start_resync(self.resync_interval)

    # The router serves the public API only: worker-scoped internals
    # (``/nf-chain``) stay off its route table, while every ``"all"``
    # endpoint in :mod:`repro.serve.registry` is required here -- the
    # chassis binds them at construction, so adding a public endpoint
    # to the registry without a router handler fails fast, not with a
    # cluster-only 404.
    _ROUTE_SCOPES = frozenset({"all"})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._resync_stop.set()
        if self._resync_thread is not None:
            self._resync_thread.join(timeout=5.0)
            self._resync_thread = None
        self._membership.close()
        self._fanout_pool.shutdown(wait=False)
        super().close()

    # Test/operator hook: pin every group's next candidate to replica 0.
    def reset_round_robin(self) -> None:
        self._membership.reset_round_robin()

    # ------------------------------------------------------------------
    # Startup topology validation
    # ------------------------------------------------------------------
    def _validate_topology(self) -> None:
        """Probe each worker's actual served range and label set.

        Every reachable worker must report the labels digest of the
        router's node set and exactly its group's declared node range
        (open-ended stops normalise to the total) -- otherwise sweeps
        through it would silently cover the wrong rows.  A full-index
        worker (no ``node_range`` in its ``/stats``) only passes when
        the cluster has a single group covering everything.
        Unreachable workers are marked down and skipped: an outage is
        failover's problem; this check is for *misconfiguration*.  The
        observed range/digest is stored on each replica and surfaced
        through ``/stats``.
        """
        expected_digest = self._directory.labels_digest()
        total = len(self._directory)
        problems: List[str] = []
        for group in self._groups:
            for replica in group.replicas:
                try:
                    stats = replica.call("GET", "/stats")
                except ServeClientError as error:
                    replica.mark_down(error)
                    continue
                except Exception as error:  # pragma: no cover
                    replica.mark_down(error)
                    continue
                index_stats = stats.get("index") or {}
                digest = index_stats.get("labels_digest")
                reported = index_stats.get("node_range")
                replica.labels_digest = digest
                replica.node_range = (
                    list(reported)
                    if isinstance(reported, (list, tuple)) else None
                )
                if digest != expected_digest:
                    problems.append(
                        f"{replica.url}: serves a different node set "
                        f"(labels digest {digest} != router's "
                        f"{expected_digest})"
                    )
                    continue
                if reported is None:
                    if len(self._groups) == 1 and group.start == 0:
                        continue  # full index == the only group's range
                    problems.append(
                        f"{replica.url}: not started as a shard worker "
                        "(no --cluster range); its sweeps would cover "
                        "every node, overlapping the other shards"
                    )
                    continue
                if (
                    not isinstance(reported, (list, tuple))
                    or len(reported) != 2
                ):
                    problems.append(
                        f"{replica.url}: unparseable node_range "
                        f"{reported!r}"
                    )
                    continue
                if not self._range_matches(
                    (group.start, group.stop), tuple(reported), total
                ):
                    declared = group.describe_range(total)
                    actual = self._format_range(tuple(reported), total)
                    problems.append(
                        f"{replica.url}: serves node range {actual} but "
                        f"is declared as shard {declared}"
                    )
        if problems:
            raise ClusterTopologyError(
                "cluster topology validation failed; refusing to route "
                "over mis-ranged workers:\n  - " + "\n  - ".join(problems)
            )

    @staticmethod
    def _range_matches(declared, reported, total: int) -> bool:
        """Range equality with open-ended stops normalised to *total*
        (a worker may say ``[45, None]`` where the group says
        ``[45, 90)``, and vice versa -- same rows either way)."""
        try:
            d_start, d_stop = declared
            r_start, r_stop = reported
            d_stop = total if d_stop is None else int(d_stop)
            r_stop = total if r_stop is None else int(r_stop)
            return int(d_start) == int(r_start) and d_stop == r_stop
        except (TypeError, ValueError):
            return False

    @staticmethod
    def _format_range(reported, total: int) -> str:
        start, stop = reported
        return f"[{start}, {total if stop is None else stop})"

    # ------------------------------------------------------------------
    # RPC core: failover + fan-out
    # ------------------------------------------------------------------
    def _call_group(
        self,
        group: ShardGroup,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One shard-group RPC with replica failover.

        * 4xx from a worker: the worker *answered* -- a refusal, not a
          fault.  Re-raised as the same status/message, so the client
          sees bytes identical to a single server's refusal.
        * Transport fault, 5xx, or a malformed wire frame (a 200 whose
          body does not decode -- e.g. truncated mid-frame): the
          replica is marked down and the next candidate is tried.
        * All candidates exhausted: a structured 503 naming the shard
          range, so callers know *which* rows are unavailable.
        """
        last_error: Any = "no replica configured"
        for replica in group.candidates():
            try:
                result = replica.call(
                    method, path, params=params, payload=payload
                )
            except ServeClientError as error:
                status = error.status
                if status is not None and 400 <= status < 500:
                    raise WireError(status, error.message)
                replica.mark_down(error)
                with self._counter_lock:
                    self._failovers += 1
                last_error = error
                continue
            if replica.state != STATE_UP:
                # A marked-down replica answered: passive recovery.
                replica.mark_up()
            return result
        raise WireError(
            503,
            f"shard {group.describe_range(len(self._directory))} "
            f"unavailable: no replica answered ({last_error})",
        )

    def _fan_out(
        self, requests: Sequence[Tuple]
    ) -> List[Dict[str, Any]]:
        """Run ``(group, method, path, params, payload)`` RPCs in
        parallel; raises (preferring a worker refusal over a shard
        outage) unless every group answered -- a partial merge is
        never returned."""
        with self._counter_lock:
            self._fan_outs += 1
        if len(requests) == 1:
            return [self._call_group(*requests[0])]
        futures = [
            self._fanout_pool.submit(self._call_group, *request)
            for request in requests
        ]
        results: List[Dict[str, Any]] = []
        errors: List[BaseException] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as error:
                errors.append(error)
        if errors:
            for error in errors:
                if (
                    isinstance(error, WireError)
                    and 400 <= error.status < 500
                ):
                    raise error
            raise errors[0]
        return results

    def _owner_group(self, label: Any) -> ShardGroup:
        return self._membership.group_for(
            self._directory.id_of(label), len(self._directory)
        )

    def _gather(
        self, path: str, params: Dict[str, str]
    ) -> List[List[Any]]:
        """Fan a sweep to every group in shard order and concatenate
        the row lists (global node-id order by construction)."""
        payloads = self._fan_out([
            (group, "GET", path, params, None) for group in self._groups
        ])
        merged: List[List[Any]] = []
        for payload in payloads:
            merged.extend(payload["results"])
        return merged

    def _scatter_batch(
        self,
        path: str,
        labels: Sequence[Any],
        make_payload,
    ) -> List[Any]:
        """Batch POST: split *labels* by owning group, query groups in
        parallel, reassemble values in request order."""
        per_group: Dict[int, Tuple[ShardGroup, List[int]]] = {}
        for position, label in enumerate(labels):
            group = self._owner_group(label)
            per_group.setdefault(id(group), (group, []))[1].append(
                position
            )
        requests, slots = [], []
        for group, positions in per_group.values():
            requests.append((
                group, "POST", path, None,
                make_payload([labels[p] for p in positions]),
            ))
            slots.append(positions)
        responses = self._fan_out(requests)
        values: List[Any] = [None] * len(labels)
        for positions, payload in zip(slots, responses):
            for position, row in zip(positions, payload["results"]):
                values[position] = row[1]
        return values

    def _scatter_pairs(
        self,
        path: str,
        pairs: Sequence[Tuple[Any, Any]],
        make_payload,
    ) -> List[Any]:
        """Pair-batch POST: split *pairs* by the group owning each
        pair's *first* node (every worker holds the full index, so any
        worker answers any pair value-for-value identically -- routing
        by first endpoint just spreads the work), query groups in
        parallel, reassemble values in request order from the workers'
        ``[u, v, value]`` rows."""
        per_group: Dict[int, Tuple[ShardGroup, List[int]]] = {}
        for position, pair in enumerate(pairs):
            group = self._owner_group(pair[0])
            per_group.setdefault(id(group), (group, []))[1].append(
                position
            )
        requests, slots = [], []
        for group, positions in per_group.values():
            requests.append((
                group, "POST", path, None,
                make_payload([pairs[p] for p in positions]),
            ))
            slots.append(positions)
        responses = self._fan_out(requests)
        values: List[Any] = [None] * len(pairs)
        for positions, payload in zip(slots, responses):
            for position, row in zip(positions, payload["results"]):
                values[position] = row[2]
        return values

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    def _healthz(self, params, body) -> Dict[str, Any]:
        return {
            "status": "ok",
            "nodes": len(self._directory),
            "saturation": round(self._saturation(), 6),
        }

    def _stats(self, params, body) -> Dict[str, Any]:
        with self._counter_lock:
            requests, internal = self._requests, self._internal_errors
            updates = self._updates_applied
            fan_outs, failovers = self._fan_outs, self._failovers
            resyncs = self._resyncs
        index_stats, pending = self._probe_index_stats()
        return {
            "requests": requests,
            "internal_errors": internal,
            "uptime_seconds": time.monotonic() - self.started_at,
            "threads": self.threads,
            "transport": self._transport_stats(),
            "cache": self.cache.stats(),
            "updates": {
                "writable": self.writable,
                "applied_batches": updates,
                "pending_batches": pending,
            },
            "index": index_stats,
            "cluster": {
                "groups": self._membership.snapshot(
                    len(self._directory)
                ),
                "rpc": {
                    "wire": self.rpc_wire,
                    "timeout_seconds": self.rpc_timeout,
                    "probe_interval": self.probe_interval,
                    "resync_interval": self.resync_interval,
                    "fan_outs": fan_outs,
                    "failovers": failovers,
                    "resyncs": resyncs,
                },
            },
        }

    def _probe_index_stats(self) -> Tuple[Dict[str, Any], int]:
        """Index metadata passthrough from group 0 (every worker holds
        the full index, so its totals are the cluster's); degraded
        shape rather than an error when no replica answers."""
        try:
            stats = self._call_group(self._groups[0], "GET", "/stats")
        except WireError as error:
            return (
                {"nodes": len(self._directory),
                 "unavailable": error.message},
                0,
            )
        index_stats = dict(stats.get("index") or {})
        # One worker's sweep range must not masquerade as the
        # cluster's; per-replica served ranges (and labels digests)
        # are surfaced under cluster.groups[*].replicas instead.
        index_stats.pop("node_range", None)
        pending = stats.get("updates", {}).get("pending_batches", 0)
        return index_stats, pending

    def _node_summary(self, raw: str) -> Dict[str, Any]:
        if not raw:
            raise bad_request("/node/<label> requires a label")
        label = resolve_node(self._directory, raw)
        return self._call_group(
            self._owner_group(label),
            "GET",
            f"/node/{quote(str(label), safe='')}",
        )

    def _cardinality(self, params, body) -> Dict[str, Any]:
        if body is not None:
            d = _batch_float(body, "d", math.inf)
            labels = resolve_nodes(self._directory, body.get("nodes"))
            values = self._scatter_batch(
                "/cardinality", labels,
                lambda group_labels: {"nodes": group_labels, "d": d},
            )
            return {
                "d": json_safe_number(d),
                "results": [
                    [label, value]
                    for label, value in zip(labels, values)
                ],
            }
        d = parse_float(params, "d", math.inf)
        if "node" in params:
            label = resolve_node(self._directory, params["node"])
            return self._call_group(
                self._owner_group(label),
                "GET", "/cardinality", params=params,
            )
        if d == math.inf:
            results, cached = self._cached(
                ("/cardinality", d),
                lambda: self._gather("/cardinality", params),
            )
        else:
            results = self._gather("/cardinality", params)
            cached = False
        return {"d": json_safe_number(d), "results": results,
                "cached": cached}

    def _closeness(self, params, body) -> Dict[str, Any]:
        if body is not None:
            string_params = {
                name: str(body[name])
                for name in ("kind", "half_life") if name in body
            }
            centrality_kwargs(string_params)  # refusal parity
            labels = resolve_nodes(self._directory, body.get("nodes"))

            def make_payload(group_labels):
                payload: Dict[str, Any] = {"nodes": group_labels}
                for name in ("kind", "half_life"):
                    if name in body:
                        payload[name] = body[name]
                return payload

            values = self._scatter_batch(
                "/closeness", labels, make_payload
            )
            return {
                "kind": string_params.get("kind", "classic"),
                "results": [
                    [label, value]
                    for label, value in zip(labels, values)
                ],
            }
        centrality_kwargs(params)  # refusal parity before any RPC
        if "node" in params:
            label = resolve_node(self._directory, params["node"])
            return self._call_group(
                self._owner_group(label),
                "GET", "/closeness", params=params,
            )
        results, cached = self._cached(
            ("/closeness",) + self._centrality_key(params),
            lambda: self._gather("/closeness", params),
        )
        return {"kind": params.get("kind", "classic"),
                "results": results, "cached": cached}

    def _neighborhood(self, params, body) -> Dict[str, Any]:
        if "node" in params:
            label = resolve_node(self._directory, params["node"])
            return self._call_group(
                self._owner_group(label),
                "GET", "/neighborhood", params=params,
            )
        series, cached = self._cached(
            ("/neighborhood",), self._chain_neighborhood
        )
        return {"series": series, "cached": cached}

    def _chain_neighborhood(self) -> List[List[float]]:
        """Sequential seeded accumulation through the groups in shard
        order, then one prefix sum -- the single-index ANF float-op
        sequence, replayed distributedly (see module docstring)."""
        jumps: List[List[float]] = []
        for group in self._groups:
            jumps = self._call_group(
                group, "POST", "/nf-chain", payload={"seed": jumps}
            )["jumps"]
        series: List[List[float]] = []
        running = 0.0
        for distance, weight in jumps:
            running += weight
            series.append([distance, running])
        return series

    def _top_central(self, params, body) -> Dict[str, Any]:
        count = parse_int(params, "count", 10, minimum=1)
        largest = parse_bool(params, "largest", True)
        centrality_kwargs(params)  # refusal parity before any RPC
        results, cached = self._cached(
            ("/top-central", count, largest)
            + self._centrality_key(params),
            lambda: merge_top_central(
                [
                    payload["results"]
                    for payload in self._fan_out([
                        (group, "GET", "/top-central", params, None)
                        for group in self._groups
                    ])
                ],
                count,
                largest=largest,
            ),
        )
        return {
            "kind": params.get("kind", "classic"),
            "count": count,
            "largest": largest,
            "results": results,
            "cached": cached,
        }

    # ------------------------------------------------------------------
    # Similarity / distance-oracle endpoints
    #
    # Validation order mirrors AdsServer exactly (metric -> pairs -> d
    # before any RPC), so malformed requests refuse with the same
    # status and bytes as a single server; the flavor gate (409 on a
    # non-bottom-k index) is the one check the router cannot run
    # itself, and _call_group re-raises the worker's 4xx verbatim.
    # ------------------------------------------------------------------
    def _similarity(self, params, body) -> Dict[str, Any]:
        metric = parse_similarity_metric(body)
        pairs = parse_pairs(self._directory, body)
        if metric == "jaccard":
            d = _batch_float(body, "d", math.inf)
            values = self._scatter_pairs(
                "/similarity", pairs,
                lambda group_pairs: {
                    "metric": metric,
                    "pairs": [list(pair) for pair in group_pairs],
                    "d": d,
                },
            )
            return {
                "metric": metric,
                "d": json_safe_number(d),
                "results": [
                    [u, v, value]
                    for (u, v), value in zip(pairs, values)
                ],
            }
        if "d" in body:
            raise bad_request("d only applies to the jaccard metric")
        values = self._scatter_pairs(
            "/similarity", pairs,
            lambda group_pairs: {
                "metric": metric,
                "pairs": [list(pair) for pair in group_pairs],
            },
        )
        return {
            "metric": metric,
            "results": [
                [u, v, value] for (u, v), value in zip(pairs, values)
            ],
        }

    def _distance(self, params, body) -> Dict[str, Any]:
        pairs = parse_pairs(self._directory, body)
        values = self._scatter_pairs(
            "/distance", pairs,
            lambda group_pairs: {
                "pairs": [list(pair) for pair in group_pairs],
            },
        )
        # Workers already emit JSON-safe values (None for unreachable),
        # so reassembled rows pass through untouched.
        return {
            "results": [
                [u, v, value] for (u, v), value in zip(pairs, values)
            ],
        }

    def _similar(self, raw: str, params) -> Dict[str, Any]:
        if not raw:
            raise bad_request("/similar/<label> requires a label")
        count = parse_int(params, "count", 10, minimum=1)
        d = parse_float(params, "d", math.inf)
        label = resolve_node(self._directory, raw)
        # Each worker scans only its own node range, so the global
        # top-count is a subset of the union of per-range top-counts
        # (every candidate lives in exactly one range) and the
        # merge_top_central re-rank -- same comparator as
        # AdsIndex.most_similar -- is exact.
        payloads = self._fan_out([
            (
                group, "GET",
                f"/similar/{quote(str(label), safe='')}",
                params, None,
            )
            for group in self._groups
        ])
        merged = merge_top_central(
            [payload["results"] for payload in payloads],
            count, largest=True,
        )
        return {
            "node": label,
            "count": count,
            "d": json_safe_number(d),
            "results": merged,
        }

    def _nf_curve(self, params, body) -> Dict[str, Any]:
        series, cached = self._cached(
            ("/neighborhood",), self._chain_neighborhood
        )
        points, total = nf_curve_points(series)
        return {"points": points, "total_pairs": total,
                "cached": cached}

    # ------------------------------------------------------------------
    # Write endpoints (two-phase, under the router's exclusive lock)
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if not self.writable:
            raise conflict(
                "cluster is read-only: start the router with --writable "
                "(and the workers with their graphs) to accept updates"
            )

    def _require_full_membership(self, action: str) -> None:
        """Writes need every non-stale replica reachable: a replica
        that misses a batch diverges permanently (it would be
        quarantined), so refusing up front is the cheaper failure."""
        for group in self._groups:
            # Down replicas block writes; stale ones are already
            # quarantined out of the cluster and don't count.
            absent = [
                r for r in group.replicas if r.state == STATE_DOWN
            ]
            if absent:
                raise WireError(
                    503,
                    f"cluster {action} requires full membership; shard "
                    f"{group.describe_range(len(self._directory))} has "
                    f"{len(absent)} unavailable replica(s)",
                )

    def _fan_write(
        self,
        path: str,
        payload: Dict[str, Any],
        action: str,
        compare_results: bool = True,
    ) -> Dict[str, Any]:
        """Apply a write to every replica of every group, in shard
        order (phase one of two -- the caller commits router state
        only after this returns).

        Failure rules:

        * The very first call fails: nothing has been applied
          anywhere, the cluster is unchanged -- propagate (worker
          refusals keep their status/message verbatim).
        * A later call fails: that replica missed a batch its peers
          committed -- quarantine it ``stale`` and continue.
        * A group ends with zero successful replicas: 500; that shard
          range lost every copy of this batch.
        """
        first_result: Optional[Dict[str, Any]] = None
        for group in self._groups:
            applied = 0
            for replica in group.replicas:
                if replica.state != STATE_UP:
                    continue
                try:
                    result = replica.call("POST", path, payload=payload)
                except ServeClientError as error:
                    if first_result is None:
                        # A refusal (>=400) propagates verbatim; a
                        # transport fault or torn 200 frame is an
                        # outage, not an answer.
                        if (
                            error.status is not None
                            and error.status >= 400
                        ):
                            raise WireError(error.status, error.message)
                        replica.mark_down(error)
                        raise WireError(
                            503,
                            f"cluster {action} failed before any apply "
                            f"({error}); cluster unchanged",
                        )
                    replica.mark_stale(f"missed {action} ({error})")
                    with self._counter_lock:
                        self._failovers += 1
                    continue
                if first_result is None:
                    first_result = result
                elif compare_results and result != first_result:
                    # Deterministic apply means identical payloads; a
                    # divergent answer is a divergent index.  (Compact
                    # replies legitimately differ -- each worker
                    # reports its own flush path -- so that fan sets
                    # compare_results=False.)
                    replica.mark_stale(
                        f"divergent {action} result"
                    )
                    continue
                applied += 1
            if applied == 0:
                raise WireError(
                    500,
                    "cluster degraded: shard "
                    f"{group.describe_range(len(self._directory))} "
                    f"lost every replica during {action}; restart its "
                    "workers from a compacted index",
                )
        assert first_result is not None
        return first_result

    def _update(self, params, body) -> Dict[str, Any]:
        self._require_writable()
        # Validate with the worker's own schema layer (byte-identical
        # refusals) before touching any replica.
        edges = coerce_edge_labels(
            self._directory, parse_edges(body),
            label_type=self._directory.label_type(),
        )
        self._require_full_membership("update")
        result = self._fan_write(
            "/update",
            {"edges": [list(edge) for edge in edges]},
            "update",
        )
        # Phase two: every replica holds the batch -- commit the
        # router's view.  New labels intern exactly as CSRGraph
        # interns them (first occurrence, u before v, edge order), so
        # directory ids keep matching worker node ids.
        for edge in edges:
            self._directory.append(edge[0])
            self._directory.append(edge[1])
        self.cache.clear()
        with self._counter_lock:
            self._updates_applied += 1
        return result

    def _compact(self, params, body) -> Dict[str, Any]:
        self._require_writable()
        if body and "path" in body:
            raise bad_request(
                "compact always flushes to the server's own index path; "
                "a client-writable destination is not accepted"
            )
        self._require_full_membership("compact")
        # Every worker flushes to its *own* index path; the first
        # group's first replica speaks for the cluster in the reply.
        return self._fan_write(
            "/compact", {}, "compact", compare_results=False
        )

    # ------------------------------------------------------------------
    # Stale-replica resync (self-healing)
    # ------------------------------------------------------------------
    def start_resync(self, interval: float) -> None:
        """Run :meth:`resync_stale` about every *interval* seconds on a
        daemon thread (``interval <= 0`` disables the loop)."""
        if interval <= 0 or self._resync_thread is not None:
            return

        def loop() -> None:
            while not self._resync_stop.wait(interval):
                try:
                    self.resync_stale()
                except Exception:  # pragma: no cover - defensive
                    pass

        self._resync_thread = threading.Thread(
            target=loop, name="repro-route-resync", daemon=True
        )
        self._resync_thread.start()

    def resync_stale(self) -> List[Dict[str, Any]]:
        """One self-healing sweep: re-seed every stale replica from a
        healthy donor and re-admit it only after a digest check.

        Each replica's resync runs under the router's exclusive write
        lock, so no update batch can land between the donor snapshot
        and the digest verdict -- the comparison is race-free by
        construction (the same lock ``POST /update`` holds).  A failed
        resync puts the replica back in ``stale`` for the next sweep.
        Returns one outcome dict per replica attempted.
        """
        outcomes: List[Dict[str, Any]] = []
        for group in self._groups:
            for replica in group.replicas:
                # Atomic stale -> syncing claim; concurrent sweeps
                # can never both work on the same replica.
                if not replica.begin_resync():
                    continue
                with self._rw_lock.write_locked():
                    outcomes.append(self._resync_replica(group, replica))
        return outcomes

    def _find_donor(
        self, group: ShardGroup, replica: Replica
    ) -> Optional[Replica]:
        """A healthy replica to snapshot from: same-group peers first,
        then any up replica -- every worker holds the full index, so
        any of them is a valid donor."""
        for peer in group.replicas:
            if peer is not replica and peer.state == STATE_UP:
                return peer
        for other in self._groups:
            for peer in other.replicas:
                if peer is not replica and peer.state == STATE_UP:
                    return peer
        return None

    def _resync_replica(
        self, group: ShardGroup, replica: Replica
    ) -> Dict[str, Any]:
        outcome: Dict[str, Any] = {"url": replica.url, "resynced": False}
        donor = self._find_donor(group, replica)
        if donor is None:
            replica.mark_stale("resync: no healthy donor replica")
            outcome["error"] = "no healthy donor replica"
            return outcome
        outcome["donor"] = donor.url
        try:
            snapshot = donor.call("GET", "/sync/snapshot")
            installed = replica.call(
                "POST", "/sync/install",
                payload={
                    "index_b64": snapshot["index_b64"],
                    "edges": snapshot["edges"],
                    "directed": snapshot["directed"],
                    "seq": snapshot.get("seq", 0),
                    "digest": snapshot.get("digest"),
                },
            )
        except (ServeClientError, KeyError, TypeError) as error:
            replica.mark_stale(f"resync failed ({error})")
            outcome["error"] = str(error)
            return outcome
        digest = snapshot.get("digest")
        if not digest or installed.get("digest") != digest:
            replica.mark_stale(
                f"resync digest mismatch (donor {digest!r}, installed "
                f"{installed.get('digest')!r})"
            )
            outcome["error"] = "digest mismatch"
            return outcome
        replica.mark_synced()
        self._refresh_replica_topology(replica)
        with self._counter_lock:
            self._resyncs += 1
        outcome.update({"resynced": True, "digest": digest})
        return outcome

    def _refresh_replica_topology(self, replica: Replica) -> None:
        """Best-effort refresh of the observed range/digest a resync
        (or recovery) may have changed -- keeps ``/stats`` honest."""
        try:
            stats = replica.call("GET", "/stats")
        except Exception:
            return
        index_stats = stats.get("index") or {}
        replica.labels_digest = index_stats.get("labels_digest")
        reported = index_stats.get("node_range")
        replica.node_range = (
            list(reported) if isinstance(reported, (list, tuple)) else None
        )


class AsyncRouterServer(AsyncTransport, RouterServer):
    """The fan-out router on the asyncio pipelined transport.

    Same routing/merge/failover layer as :class:`RouterServer`;
    worker RPCs dispatch synchronously from the event loop (the
    router's work per request is merging, not computing), so this
    flavor trades per-request transport overhead for head-of-line
    blocking under slow workers -- the threaded router is the default
    deployment and ``rpc_timeout`` bounds the stall either way.
    """

    def __init__(
        self,
        labels: Sequence[Any],
        groups: Sequence[GroupSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        max_in_flight: int = 256,
        wire_mode: str = "auto",
        **kwargs: Any,
    ):
        self._init_async_transport(max_in_flight)
        super().__init__(
            labels, groups, host=host, port=port,
            cache_size=cache_size, threads=1, wire_mode=wire_mode,
            **kwargs,
        )


__all__ = [
    "AsyncRouterServer",
    "ClusterTopologyError",
    "LabelDirectory",
    "RouterServer",
    "merge_top_central",
]
