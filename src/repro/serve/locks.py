"""A writer-preferring read/write lock for the serving daemon.

Queries over an :class:`~repro.ads.index.AdsIndex` are pure reads and
run concurrently; a ``POST /update`` rewrites the index columns in
place, which readers must never observe half-spliced.  The classic
answer is a read/write lock: any number of readers *or* one writer.
Writers are preferred -- new readers queue once a writer is waiting --
so a steady query stream cannot starve updates forever.

Kept deliberately tiny (one condition variable, two counters) and
dependency-free; stdlib ``threading`` has no RW lock of its own.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Many concurrent readers xor one writer; writers preferred.

    Example:
        >>> lock = ReadWriteLock()
        >>> with lock.read_locked():
        ...     pass  # any number of readers in here concurrently
        >>> with lock.write_locked():
        ...     pass  # exclusive
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


__all__ = ["ReadWriteLock"]
