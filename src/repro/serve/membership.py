"""Cluster membership: replicas, shard groups, and health probing.

The cluster router (:mod:`repro.serve.cluster`) answers every query by
calling workers over HTTP.  This module holds the *who-is-alive*
bookkeeping that makes those calls resilient:

* :class:`Replica` -- one worker endpoint with a pooled binary-wire
  client and a four-state health machine::

      up ---(probe/RPC failure)---> down ---(probe success)---> up
      up/down --(missed a committed update batch)--> stale
      stale --(router begins resync)--> syncing
      syncing --(digest-verified re-seed)--> up
      syncing --(resync failed)--> stale

  ``stale`` is a quarantine, not an outage: the replica answered (or
  may answer) but its index *content* diverged from the cluster --
  serving it would return confidently wrong floats.  Health probes
  never revive a stale replica; only the router's resync loop
  (:meth:`repro.serve.cluster.RouterServer.resync_stale`) moves it
  through ``syncing`` by re-seeding it from a healthy donor and
  re-admitting it after a content-digest check.  ``syncing`` replicas,
  like stale ones, never serve reads and are skipped by probes.

* :class:`ShardGroup` -- the replica set owning one contiguous global
  node-id range ``[start, stop)`` (``stop=None`` leaves the last group
  open-ended so it also owns nodes appended by updates).  Healthy
  replicas are tried round-robin; marked-down replicas are kept as a
  last resort, which doubles as a passive recovery probe.

* :class:`ClusterMembership` -- the ordered, contiguity-checked list
  of groups, owner lookup by global node id, and the periodic
  ``/healthz`` prober.

Example:
    >>> replica = Replica("http://127.0.0.1:1")
    >>> replica.state
    'up'
    >>> replica.mark_down("connect refused")
    >>> replica.mark_up()
    >>> replica.state
    'up'
    >>> replica.mark_stale("missed update batch")
    >>> replica.mark_up()  # probes never revive a stale replica
    >>> replica.state
    'stale'
    >>> replica.begin_resync()  # only the resync loop moves it on
    True
    >>> replica.state
    'syncing'
    >>> replica.mark_synced()
    >>> replica.state
    'up'
"""

from __future__ import annotations

import queue
import random
import threading
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence

from repro._util import require
from repro.serve.client import QueryClient, ServeClientError

STATE_UP = "up"
STATE_DOWN = "down"
STATE_STALE = "stale"
STATE_SYNCING = "syncing"


class Replica:
    """One worker endpoint: pooled wire client + health state machine.

    Args:
        url: The worker's base URL.
        timeout: Per-RPC socket timeout in seconds; this is what turns
            a hung worker into a failover instead of a stuck router.
        wire_mode: RPC encoding -- ``"binary"`` (default) round-trips
            floats exactly over :mod:`repro.serve.wire`; ``"json"``
            is exact too (repr round-trip) but slower.
        pool_size: Keep-alive clients retained between calls.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        wire_mode: str = "binary",
        pool_size: int = 16,
    ):
        self.url = url
        self.timeout = float(timeout)
        self.wire_mode = wire_mode
        self.state = STATE_UP
        self.failures = 0
        self.last_error: Optional[str] = None
        # Observed topology, filled by the router's startup validation
        # probe (and refreshed after a resync): what this worker
        # *actually* serves, surfaced through /stats.
        self.node_range: Optional[List[int]] = None
        self.labels_digest: Optional[str] = None
        self._lock = threading.Lock()
        self._pool: "queue.LifoQueue[QueryClient]" = queue.LifoQueue(
            maxsize=pool_size
        )

    # -- RPC -----------------------------------------------------------
    def call(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One RPC through a pooled keep-alive client.

        Raises :class:`~repro.serve.client.ServeClientError` exactly as
        :class:`~repro.serve.client.QueryClient` does; the caller (the
        router) decides which errors mean *failover* and which mean
        *propagate*.
        """
        client = self._acquire()
        try:
            result = client._request(method, path, params=params,
                                     payload=payload)
        except ServeClientError as error:
            if error.status is not None and error.status >= 400:
                # The worker answered an HTTP refusal; the connection
                # itself is fine, keep it pooled.
                self._release(client)
            else:
                # Transport fault or a malformed 200: the connection is
                # suspect, drop it.
                client.close()
            raise
        except BaseException:
            client.close()
            raise
        self._release(client)
        return result

    def _acquire(self) -> QueryClient:
        try:
            return self._pool.get_nowait()
        except queue.Empty:
            return QueryClient(
                self.url, timeout=self.timeout, wire_mode=self.wire_mode
            )

    def _release(self, client: QueryClient) -> None:
        try:
            self._pool.put_nowait(client)
        except queue.Full:
            client.close()

    # -- health state machine ------------------------------------------
    def mark_down(self, error: Any) -> None:
        with self._lock:
            if self.state == STATE_UP:
                self.state = STATE_DOWN
            self.failures += 1
            self.last_error = str(error)

    def mark_up(self) -> None:
        """Recover ``down -> up``; ``stale`` is terminal (see module
        docstring) and never revived here."""
        with self._lock:
            if self.state == STATE_DOWN:
                self.state = STATE_UP

    def mark_stale(self, reason: Any) -> None:
        with self._lock:
            self.state = STATE_STALE
            self.last_error = str(reason)

    def begin_resync(self) -> bool:
        """Claim a stale replica for re-seeding (``stale -> syncing``).

        Returns False unless the replica was stale -- the atomic
        check-and-set means two resync sweeps can never both work on
        the same replica.
        """
        with self._lock:
            if self.state != STATE_STALE:
                return False
            self.state = STATE_SYNCING
            return True

    def mark_synced(self) -> None:
        """Re-admit a re-seeded replica (``syncing -> up``); the caller
        has already digest-verified its content against the donor."""
        with self._lock:
            if self.state == STATE_SYNCING:
                self.state = STATE_UP
                self.last_error = None

    def probe(self) -> bool:
        """One ``/healthz`` round trip; updates the health state.

        Any HTTP answer -- even a refusal -- proves the worker is
        alive and routable; only transport faults and 5xx count as
        down.
        """
        try:
            self.call("GET", "/healthz")
        except ServeClientError as error:
            if error.status is not None and 400 <= error.status < 500:
                self.mark_up()
                return True
            self.mark_down(error)
            return False
        except Exception as error:  # pragma: no cover - defensive
            self.mark_down(error)
            return False
        self.mark_up()
        return True

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "url": self.url,
                "state": self.state,
                "failures": self.failures,
                "last_error": self.last_error,
                "node_range": list(self.node_range)
                if self.node_range is not None else None,
                "labels_digest": self.labels_digest,
            }

    def close(self) -> None:
        while True:
            try:
                self._pool.get_nowait().close()
            except queue.Empty:
                return


class ShardGroup:
    """The replica set owning global node-id range ``[start, stop)``."""

    def __init__(
        self,
        start: int,
        stop: Optional[int],
        replicas: Sequence[Replica],
    ):
        require(start >= 0, f"shard start must be >= 0, got {start}")
        if stop is not None:
            require(
                stop > start,
                f"shard stop must exceed start, got [{start}, {stop})",
            )
        require(len(replicas) >= 1, "a shard group needs >= 1 replica")
        self.start = int(start)
        self.stop = None if stop is None else int(stop)
        self.replicas: List[Replica] = list(replicas)
        self._rr = 0
        self._lock = threading.Lock()

    def describe_range(self, total: int) -> str:
        stop = total if self.stop is None else self.stop
        return f"[{self.start}, {stop})"

    def owns(self, node_id: int, total: int) -> bool:
        stop = total if self.stop is None else self.stop
        return self.start <= node_id < stop

    def candidates(self) -> List[Replica]:
        """Replicas in try order for one request.

        Healthy replicas first, rotated round-robin so read load
        spreads; marked-down replicas follow as a last resort (if one
        answers, the router marks it back up -- a passive recovery
        probe).  Stale and syncing replicas never appear: their
        content diverged (or is mid-replacement).
        """
        with self._lock:
            offset = self._rr
            self._rr += 1
        up = [r for r in self.replicas if r.state == STATE_UP]
        down = [r for r in self.replicas if r.state == STATE_DOWN]
        if up:
            pivot = offset % len(up)
            up = up[pivot:] + up[:pivot]
        return up + down

    def all_up(self) -> bool:
        return all(r.state == STATE_UP for r in self.replicas)

    def reset_round_robin(self) -> None:
        """Pin the next candidate order to replica 0 (test determinism)."""
        with self._lock:
            self._rr = 0

    def snapshot(self, total: int) -> Dict[str, Any]:
        return {
            "start": self.start,
            "stop": self.stop,
            "range": self.describe_range(total),
            "replicas": [r.snapshot() for r in self.replicas],
        }

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()


class ClusterMembership:
    """Ordered shard groups + owner lookup + the health prober."""

    def __init__(self, groups: Sequence[ShardGroup]):
        require(len(groups) >= 1, "a cluster needs >= 1 shard group")
        expected = 0
        for position, group in enumerate(groups):
            require(
                group.start == expected,
                "shard groups must tile the node-id space contiguously: "
                f"group {position} starts at {group.start}, "
                f"expected {expected}",
            )
            last = position == len(groups) - 1
            require(
                last or group.stop is not None,
                "only the last shard group may be open-ended",
            )
            if group.stop is not None:
                expected = group.stop
        self.groups: List[ShardGroup] = list(groups)
        self._starts = [group.start for group in self.groups]
        self._probe_stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None

    def group_for(self, node_id: int, total: int) -> ShardGroup:
        group = self.groups[bisect_right(self._starts, node_id) - 1]
        require(
            group.owns(node_id, total),
            f"node id {node_id} outside every shard range",
        )
        return group

    def all_up(self) -> bool:
        return all(group.all_up() for group in self.groups)

    def reset_round_robin(self) -> None:
        for group in self.groups:
            group.reset_round_robin()

    def probe_all(self) -> None:
        for group in self.groups:
            for replica in group.replicas:
                if replica.state not in (STATE_STALE, STATE_SYNCING):
                    replica.probe()

    def start_probes(
        self,
        interval: float,
        jitter: float = 0.2,
        backoff_cap: float = 8.0,
    ) -> None:
        """Probe every non-stale replica about each ``interval`` seconds
        on a daemon thread (``interval <= 0`` disables probing).

        Two storm-avoidance behaviours, both per-router-local:

        * every sleep is *interval* +- ``jitter`` (a fraction, default
          20%), so N routers started together against the same workers
          drift apart instead of probing in lockstep;
        * a replica that keeps failing its probe backs off
          exponentially -- its next probe is delayed by 2x, 4x, ... up
          to ``backoff_cap`` x *interval* per consecutive failure -- so
          a worker rebuilding its index after a restart is not hammered
          by every router's full-rate probes at once.  One successful
          probe resets the backoff.
        """
        if interval <= 0 or self._probe_thread is not None:
            return
        rng = random.Random()
        next_allowed: Dict[int, float] = {}
        backoff: Dict[int, float] = {}

        def jittered(base: float) -> float:
            if jitter <= 0:
                return base
            return base * (1.0 + jitter * (2.0 * rng.random() - 1.0))

        def loop() -> None:
            while not self._probe_stop.wait(jittered(interval)):
                now = time.monotonic()
                for group in self.groups:
                    for replica in group.replicas:
                        if replica.state in (STATE_STALE, STATE_SYNCING):
                            continue
                        key = id(replica)
                        if now < next_allowed.get(key, 0.0):
                            continue
                        if replica.probe():
                            backoff.pop(key, None)
                            next_allowed.pop(key, None)
                        else:
                            factor = min(
                                backoff_cap, backoff.get(key, 1.0) * 2.0
                            )
                            backoff[key] = factor
                            next_allowed[key] = (
                                time.monotonic()
                                + jittered(interval * factor)
                            )

        self._probe_thread = threading.Thread(
            target=loop, name="repro-route-probe", daemon=True
        )
        self._probe_thread.start()

    def stop_probes(self) -> None:
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
            self._probe_thread = None

    def snapshot(self, total: int) -> List[Dict[str, Any]]:
        return [group.snapshot(total) for group in self.groups]

    def close(self) -> None:
        self.stop_probes()
        for group in self.groups:
            group.close()


__all__ = [
    "STATE_DOWN",
    "STATE_STALE",
    "STATE_SYNCING",
    "STATE_UP",
    "ClusterMembership",
    "Replica",
    "ShardGroup",
]
