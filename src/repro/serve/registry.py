"""The declarative endpoint registry shared by every server flavor.

One table defines the serving API: each :class:`EndpointSpec` names a
path (or a ``/name/<label>`` prefix), its allowed methods, the handler
*attribute* servers bind it to, which server scopes carry it, and
whether it takes the exclusive side of the read/write lock.  The
chassis (:meth:`repro.serve.server.ServerBase._build_routes`) builds
its dispatch tables from this registry, so the threaded server, the
asyncio transport, and the cluster router all serve exactly the same
route table -- an endpoint registered here exists on all of them (or
404s identically on all of them), and the byte-identity the test suite
asserts across transports is structural rather than per-endpoint.

Scopes:

* ``"all"`` -- served by both a single/worker ``AdsServer`` and the
  cluster ``RouterServer``;
* ``"worker"`` -- internal endpoints only index-holding workers
  answer (the router calls them, it does not expose them): the
  cluster-sweep chain step plus the resync protocol (``/sync/digest``
  and ``/sync/snapshot`` read a healthy donor, ``/sync/install``
  replaces a quarantined replica's state under its write lock).

Example:
    >>> from repro.serve.registry import ENDPOINTS, WRITE_PATHS
    >>> sorted(WRITE_PATHS)
    ['/compact', '/sync/install', '/update']
    >>> [spec.path for spec in ENDPOINTS if spec.scope == "worker"]
    ['/nf-chain', '/sync/digest', '/sync/snapshot', '/sync/install']
    >>> [spec.path for spec in ENDPOINTS if spec.prefix]
    ['/similar/', '/node/']
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class EndpointSpec(NamedTuple):
    """One served endpoint, declaratively.

    ``handler`` is the name of the bound method looked up on the server
    instance at construction time -- every server flavor implements (or
    inherits) one method per spec in its scopes, and route tables stay
    plain ``{path: (bound handler, methods)}`` dicts at dispatch time.
    ``prefix`` routes match ``path`` as a leading segment and hand the
    remainder (the label) to the handler.
    """

    path: str
    methods: Tuple[str, ...]
    handler: str
    scope: str = "all"
    write: bool = False
    prefix: bool = False


ENDPOINTS: Tuple[EndpointSpec, ...] = (
    EndpointSpec("/healthz", ("GET",), "_healthz"),
    EndpointSpec("/stats", ("GET",), "_stats"),
    EndpointSpec("/cardinality", ("GET", "POST"), "_cardinality"),
    EndpointSpec("/closeness", ("GET", "POST"), "_closeness"),
    EndpointSpec("/neighborhood", ("GET",), "_neighborhood"),
    EndpointSpec("/nf-curve", ("GET",), "_nf_curve"),
    EndpointSpec("/top-central", ("GET",), "_top_central"),
    EndpointSpec("/similarity", ("POST",), "_similarity"),
    EndpointSpec("/distance", ("POST",), "_distance"),
    EndpointSpec("/similar/", ("GET",), "_similar", prefix=True),
    EndpointSpec("/node/", ("GET",), "_node", prefix=True),
    EndpointSpec("/nf-chain", ("POST",), "_nf_chain", scope="worker"),
    EndpointSpec("/sync/digest", ("GET",), "_sync_digest", scope="worker"),
    EndpointSpec("/sync/snapshot", ("GET",), "_sync_snapshot",
                 scope="worker"),
    EndpointSpec("/sync/install", ("POST",), "_sync_install",
                 scope="worker", write=True),
    EndpointSpec("/update", ("POST",), "_update", write=True),
    EndpointSpec("/compact", ("POST",), "_compact", write=True),
)

# Paths that take the exclusive side of the read/write lock, derived
# from the same table the dispatchers consume.
WRITE_PATHS = frozenset(spec.path for spec in ENDPOINTS if spec.write)

RouteEntry = Tuple[object, Tuple[str, ...]]


def route_tables(
    server, scopes
) -> Tuple[Dict[str, RouteEntry], Dict[str, RouteEntry]]:
    """Bind the registry against *server* for the given *scopes*.

    Returns ``(exact, prefix)`` dispatch tables mapping path (or path
    prefix) to ``(bound handler, allowed methods)``.  Raises
    ``AttributeError`` at construction -- not at request time -- if the
    server is missing a handler its scopes require.
    """
    exact: Dict[str, RouteEntry] = {}
    prefix: Dict[str, RouteEntry] = {}
    for spec in ENDPOINTS:
        if spec.scope not in scopes:
            continue
        entry = (getattr(server, spec.handler), spec.methods)
        if spec.prefix:
            prefix[spec.path] = entry
        else:
            exact[spec.path] = entry
    return exact, prefix
