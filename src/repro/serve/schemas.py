"""Wire schemas: request parsing and response shaping for the server.

Everything the HTTP layer needs to turn query strings and JSON bodies
into typed :class:`~repro.ads.index.AdsIndex` query arguments lives
here, so :mod:`repro.serve.server` stays a thin router and the
validation rules are unit-testable without sockets.

Conventions:

* malformed parameters raise :class:`WireError` with status 400,
  unknown nodes status 404; the server serialises them as
  ``{"error": message}`` with that HTTP status.
* node labels keep their index-side type (int or str) in JSON; batch
  results are ``[label, value]`` pairs rather than objects, because an
  int label is not a valid JSON object key.
* ``kind`` selects the centrality kernel exactly like the CLI:
  ``classic`` (Bavelas closeness), ``harmonic``, ``decay`` (with
  ``half_life``), or ``distsum`` (raw sum of distances).
"""

from __future__ import annotations

import base64
import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.estimators.statistics import (
    CENTRALITY_KINDS,
    centrality_kind_kwargs,
)


class WireError(ReproError):
    """A request the server must refuse, carrying its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def bad_request(message: str) -> WireError:
    return WireError(400, message)


def not_found(message: str) -> WireError:
    return WireError(404, message)


def conflict(message: str) -> WireError:
    """409: the request is well-formed but this server cannot serve it
    (read-only index, no graph attached)."""
    return WireError(409, message)


def parse_edges(body: Dict[str, Any]) -> List[Tuple]:
    """The ``edges`` field of a ``POST /update`` body, as edge tuples.

    Accepts ``[[u, v], [u, v, w], ...]``; labels must be ints or
    strings (the only types a saved index carries -- *new* labels are
    allowed, updates may grow the graph), weights positive numbers.
    Anything else is a 400.
    """
    raw_edges = body.get("edges")
    if not isinstance(raw_edges, list):
        raise bad_request("edges must be a JSON array of [u, v(, weight)]")
    if not raw_edges:
        raise bad_request("edges must not be empty")
    edges: List[Tuple] = []
    for row in raw_edges:
        if not isinstance(row, list) or len(row) not in (2, 3):
            raise bad_request(
                f"each edge must be [u, v] or [u, v, weight], got {row!r}"
            )
        for label in row[:2]:
            if isinstance(label, bool) or not isinstance(label, (int, str)):
                raise bad_request(f"invalid node {label!r}")
        if row[0] == row[1]:
            raise bad_request(f"self-loop on node {row[0]!r} is not allowed")
        if len(row) == 3:
            weight = row[2]
            if isinstance(weight, bool) or not isinstance(
                weight, (int, float)
            ):
                raise bad_request(f"edge weight must be a number, got "
                                  f"{weight!r}")
            if not weight > 0.0 or math.isnan(weight) or math.isinf(weight):
                raise bad_request(
                    f"edge weight must be positive and finite, got {weight}"
                )
            edges.append((row[0], row[1], float(weight)))
        else:
            edges.append((row[0], row[1]))
    return edges


def coerce_edge_labels(
    index, edges: List[Tuple], label_type: Optional[type] = None
) -> List[Tuple]:
    """Align batch edge labels with the index's label type.

    JSON carries ``[0, 2]`` as ints even when the index labels are the
    strings ``"0"``/``"2"`` (an edge list parsed without --int-nodes).
    Without coercion such a batch would intern *phantom* int nodes next
    to the real string ones and the intended edge would never touch the
    real sketches -- so labels are converted to the index's type
    (:meth:`AdsIndex.label_type`; pass *label_type* precomputed to
    skip the O(n) scan per request).  A label that cannot convert
    (``"alice"`` on an int-labeled index) is a 400: accepting it would
    poison the index with a mixed int/str label set that no edge-list
    file can ever represent, permanently locking out ``update-index``
    and ``serve --graph``.  Mirrors :func:`resolve_node` and the CLI's
    node-type inference.
    """
    if label_type is None:
        label_type = index.label_type()

    def coerce(label):
        if label_type is int and isinstance(label, str):
            try:
                return int(label)
            except ValueError:
                raise bad_request(
                    f"node {label!r} cannot join this index: its labels "
                    "are ints, and a mixed label set cannot be "
                    "represented in an edge-list file"
                )
        if label_type is str and isinstance(label, int):
            return str(label)
        return label

    coerced: List[Tuple] = []
    for edge in edges:
        u, v = coerce(edge[0]), coerce(edge[1])
        if u == v:
            raise bad_request(
                f"self-loop on node {u!r} is not allowed (labels "
                f"{edge[0]!r} and {edge[1]!r} name the same index node)"
            )
        coerced.append((u, v, *edge[2:]))
    return coerced


def parse_sync_install(
    body: Dict[str, Any]
) -> Tuple[bytes, List[Tuple], bool, int, Optional[str]]:
    """The ``POST /sync/install`` body: a donor snapshot to adopt.

    Returns ``(index_bytes, edges, directed, seq, digest)`` --
    the decoded single-file index payload, the donor graph's edge
    tuples, its directedness, the donor's WAL sequence floor, and the
    donor's content digest (``None`` when the donor did not send one).
    Malformed shapes are 400s; the *semantic* validation (do the bytes
    parse, do the labels match) happens index-side in the handler.
    """
    raw = body.get("index_b64")
    if not isinstance(raw, str) or not raw:
        raise bad_request(
            "install needs index_b64: the donor's base64 index snapshot"
        )
    try:
        blob = base64.b64decode(raw.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise bad_request(f"malformed index_b64 ({error})")
    raw_edges = body.get("edges")
    if not isinstance(raw_edges, list):
        raise bad_request(
            "install needs edges: the donor graph as [[u, v(, w)], ...]"
        )
    edges: List[Tuple] = []
    for row in raw_edges:
        if not isinstance(row, list) or len(row) not in (2, 3):
            raise bad_request(
                f"each edge must be [u, v] or [u, v, weight], got {row!r}"
            )
        edges.append(tuple(row))
    directed = body.get("directed")
    if not isinstance(directed, bool):
        raise bad_request("install needs the donor graph's directed flag")
    seq = body.get("seq", 0)
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        raise bad_request(f"seq must be a non-negative integer, got {seq!r}")
    digest = body.get("digest")
    if digest is not None and not isinstance(digest, str):
        raise bad_request(f"digest must be a string, got {digest!r}")
    return blob, edges, directed, seq, digest


def parse_float(
    params: Dict[str, str], name: str, default: float
) -> float:
    """A float query parameter; NaN and unparseable values are 400s."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise bad_request(f"{name} must be a number, got {raw!r}")
    if math.isnan(value):
        raise bad_request(f"{name} must not be NaN")
    return value


def parse_int(
    params: Dict[str, str], name: str, default: int, minimum: int
) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise bad_request(f"{name} must be an integer, got {raw!r}")
    if value < minimum:
        raise bad_request(f"{name} must be >= {minimum}, got {value}")
    return value


def parse_bool(params: Dict[str, str], name: str, default: bool) -> bool:
    raw = params.get(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    raise bad_request(f"{name} must be a boolean, got {raw!r}")


def centrality_kwargs(params: Dict[str, str]) -> Dict[str, Any]:
    """Map ``kind``/``half_life`` parameters to estimator kwargs.

    Delegates to the shared
    :func:`repro.estimators.statistics.centrality_kind_kwargs` mapping
    (the same one behind the CLI's ``--kind``) so HTTP and shell
    queries agree number-for-number; this wrapper only adds the wire
    validation (400s instead of library errors).
    """
    kind = params.get("kind", "classic")
    if kind not in CENTRALITY_KINDS:
        raise bad_request(
            f"kind must be one of {list(CENTRALITY_KINDS)}, got {kind!r}"
        )
    half_life = parse_float(params, "half_life", 1.0)
    if kind == "decay" and half_life <= 0.0:
        raise bad_request(f"half_life must be > 0, got {half_life}")
    return centrality_kind_kwargs(kind, half_life)


def resolve_node(index, raw: Hashable) -> Hashable:
    """Map a request-supplied node to an index label, or raise 404.

    HTTP query strings carry every label as text, so a string that
    misses is retried as an int (and vice versa for typed JSON bodies)
    -- the same coercion the CLI ``query`` command applies.
    """
    # Saved indexes only ever carry int/str labels; anything else in a
    # JSON body (lists, objects, bools, null) is a malformed request,
    # not a miss -- and must not reach the dict lookup (unhashable).
    if isinstance(raw, bool) or not isinstance(raw, (int, str)):
        raise bad_request(f"invalid node {raw!r}")
    if raw in index:
        return raw
    coerced: Optional[Hashable] = None
    if isinstance(raw, str):
        try:
            coerced = int(raw)
        except ValueError:
            coerced = None
    elif isinstance(raw, int):
        coerced = str(raw)
    if coerced is not None and coerced in index:
        return coerced
    raise not_found(f"node {raw!r} not in index")


def parse_labels(
    index, raw: Any, field: str = "nodes"
) -> List[Hashable]:
    """Resolve a JSON array of node labels; malformed shapes are 400s.

    The shared shape-then-resolve path behind every batch label field:
    the error wording is uniform (``<field> must be a JSON array of
    node labels`` / ``<field> must not be empty``) whichever endpoint
    the field belongs to, and each element goes through
    :func:`resolve_node` (same coercion, 404 on a miss).
    """
    if not isinstance(raw, list):
        raise bad_request(f"{field} must be a JSON array of node labels")
    if not raw:
        raise bad_request(f"{field} must not be empty")
    return [resolve_node(index, item) for item in raw]


def resolve_nodes(index, raw_nodes: Any) -> List[Hashable]:
    """Resolve a JSON batch ``nodes`` field; malformed shapes are 400s."""
    return parse_labels(index, raw_nodes, field="nodes")


def parse_pairs(
    index, body: Dict[str, Any], field: str = "pairs"
) -> List[Tuple[Hashable, Hashable]]:
    """The ``pairs`` field of a similarity/distance POST body.

    Accepts ``[[u, v], ...]``; every label resolves through
    :func:`resolve_node` (same int/str coercion and 404 behaviour as
    single-node lookups), so the returned tuples carry index-side
    label types.
    """
    raw = body.get(field)
    if not isinstance(raw, list):
        raise bad_request(
            f"{field} must be a JSON array of [u, v] node-label pairs"
        )
    if not raw:
        raise bad_request(f"{field} must not be empty")
    pairs: List[Tuple[Hashable, Hashable]] = []
    for row in raw:
        if not isinstance(row, list) or len(row) != 2:
            raise bad_request(f"each pair must be [u, v], got {row!r}")
        pairs.append(
            (resolve_node(index, row[0]), resolve_node(index, row[1]))
        )
    return pairs


SIMILARITY_METRICS = ("jaccard", "closeness")


def parse_similarity_metric(body: Dict[str, Any]) -> str:
    """The ``metric`` field of a ``POST /similarity`` body."""
    metric = body.get("metric", "jaccard")
    if metric not in SIMILARITY_METRICS:
        raise bad_request(
            f"metric must be one of {list(SIMILARITY_METRICS)}, "
            f"got {metric!r}"
        )
    return metric


def label_value_pairs(values: Dict[Hashable, float]) -> List[List[Any]]:
    """``{label: value}`` as JSON-safe ``[label, value]`` rows."""
    return [[label, value] for label, value in values.items()]


def series_pairs(series: Sequence[Tuple[float, float]]) -> List[List[float]]:
    """A ``(distance, estimate)`` series as JSON rows."""
    return [[distance, estimate] for distance, estimate in series]


def json_safe_number(value: float) -> Optional[float]:
    """Finite floats pass through; infinities become None (JSON null)."""
    return value if math.isfinite(value) else None


def nf_curve_points(
    series: Sequence[Sequence[float]],
) -> Tuple[List[List[float]], float]:
    """Shape an ANF series into ``GET /nf-curve`` rows.

    Returns ``([[d, pairs_within_d, fraction_of_total], ...], total)``.
    Both the single server (over its swept series) and the cluster
    router (over the chained series, which is bit-identical to it)
    apply this same transform, so the responses match byte for byte.
    """
    if not series:
        return [], 0.0
    total = series[-1][1]
    return (
        [[d, running, running / total] for d, running in series],
        total,
    )
