"""Wire schemas: request parsing and response shaping for the server.

Everything the HTTP layer needs to turn query strings and JSON bodies
into typed :class:`~repro.ads.index.AdsIndex` query arguments lives
here, so :mod:`repro.serve.server` stays a thin router and the
validation rules are unit-testable without sockets.

Conventions:

* malformed parameters raise :class:`WireError` with status 400,
  unknown nodes status 404; the server serialises them as
  ``{"error": message}`` with that HTTP status.
* node labels keep their index-side type (int or str) in JSON; batch
  results are ``[label, value]`` pairs rather than objects, because an
  int label is not a valid JSON object key.
* ``kind`` selects the centrality kernel exactly like the CLI:
  ``classic`` (Bavelas closeness), ``harmonic``, ``decay`` (with
  ``half_life``), or ``distsum`` (raw sum of distances).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.estimators.statistics import (
    CENTRALITY_KINDS,
    centrality_kind_kwargs,
)


class WireError(ReproError):
    """A request the server must refuse, carrying its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def bad_request(message: str) -> WireError:
    return WireError(400, message)


def not_found(message: str) -> WireError:
    return WireError(404, message)


def parse_float(
    params: Dict[str, str], name: str, default: float
) -> float:
    """A float query parameter; NaN and unparseable values are 400s."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise bad_request(f"{name} must be a number, got {raw!r}")
    if math.isnan(value):
        raise bad_request(f"{name} must not be NaN")
    return value


def parse_int(
    params: Dict[str, str], name: str, default: int, minimum: int
) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise bad_request(f"{name} must be an integer, got {raw!r}")
    if value < minimum:
        raise bad_request(f"{name} must be >= {minimum}, got {value}")
    return value


def parse_bool(params: Dict[str, str], name: str, default: bool) -> bool:
    raw = params.get(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    raise bad_request(f"{name} must be a boolean, got {raw!r}")


def centrality_kwargs(params: Dict[str, str]) -> Dict[str, Any]:
    """Map ``kind``/``half_life`` parameters to estimator kwargs.

    Delegates to the shared
    :func:`repro.estimators.statistics.centrality_kind_kwargs` mapping
    (the same one behind the CLI's ``--kind``) so HTTP and shell
    queries agree number-for-number; this wrapper only adds the wire
    validation (400s instead of library errors).
    """
    kind = params.get("kind", "classic")
    if kind not in CENTRALITY_KINDS:
        raise bad_request(
            f"kind must be one of {list(CENTRALITY_KINDS)}, got {kind!r}"
        )
    half_life = parse_float(params, "half_life", 1.0)
    if kind == "decay" and half_life <= 0.0:
        raise bad_request(f"half_life must be > 0, got {half_life}")
    return centrality_kind_kwargs(kind, half_life)


def resolve_node(index, raw: Hashable) -> Hashable:
    """Map a request-supplied node to an index label, or raise 404.

    HTTP query strings carry every label as text, so a string that
    misses is retried as an int (and vice versa for typed JSON bodies)
    -- the same coercion the CLI ``query`` command applies.
    """
    # Saved indexes only ever carry int/str labels; anything else in a
    # JSON body (lists, objects, bools, null) is a malformed request,
    # not a miss -- and must not reach the dict lookup (unhashable).
    if isinstance(raw, bool) or not isinstance(raw, (int, str)):
        raise bad_request(f"invalid node {raw!r}")
    if raw in index:
        return raw
    coerced: Optional[Hashable] = None
    if isinstance(raw, str):
        try:
            coerced = int(raw)
        except ValueError:
            coerced = None
    elif isinstance(raw, int):
        coerced = str(raw)
    if coerced is not None and coerced in index:
        return coerced
    raise not_found(f"node {raw!r} not in index")


def resolve_nodes(index, raw_nodes: Any) -> List[Hashable]:
    """Resolve a JSON batch ``nodes`` field; malformed shapes are 400s."""
    if not isinstance(raw_nodes, list):
        raise bad_request("nodes must be a JSON array of node labels")
    if not raw_nodes:
        raise bad_request("nodes must not be empty")
    return [resolve_node(index, raw) for raw in raw_nodes]


def label_value_pairs(values: Dict[Hashable, float]) -> List[List[Any]]:
    """``{label: value}`` as JSON-safe ``[label, value]`` rows."""
    return [[label, value] for label, value in values.items()]


def series_pairs(series: Sequence[Tuple[float, float]]) -> List[List[float]]:
    """A ``(distance, estimate)`` series as JSON rows."""
    return [[distance, estimate] for distance, estimate in series]


def json_safe_number(value: float) -> Optional[float]:
    """Finite floats pass through; infinities become None (JSON null)."""
    return value if math.isfinite(value) else None
