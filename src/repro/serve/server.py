"""``AdsServer``: a long-lived JSON query daemon over one ``AdsIndex``.

The paper's workflow is build-once / query-forever (Section 1); this is
the query-forever half as an actual network service.  A single immutable
:class:`~repro.ads.index.AdsIndex` -- ideally loaded with ``mmap=True``
so the process starts serving in milliseconds -- is shared by a bounded
pool of worker threads behind stdlib ``http.server`` plumbing.  Pure
Python threads suffice here because every query is read-only over flat
columns and the hot whole-graph results are LRU-cached.

Endpoints (all JSON; the authoritative table every server flavor
builds its routes from is :mod:`repro.serve.registry`):

==========================  ===============================================
``GET  /healthz``           liveness probe
``GET  /stats``             request/cache counters, index metadata, uptime
``GET  /cardinality``       all-nodes n_d sweep (``?d=``), or one ``?node=``
``POST /cardinality``       batch: ``{"nodes": [...], "d": 2.0}``
``GET  /closeness``         all-nodes C_{alpha,beta} (``?kind=``), or one
``POST /closeness``         batch: ``{"nodes": [...], "kind": "harmonic"}``
``GET  /neighborhood``      whole-graph ANF series, or one ``?node=``
``GET  /nf-curve``          ANF curve with per-point fractions of the total
``GET  /top-central``       ``?count=&kind=&largest=`` ranking
``POST /similarity``        batch pair similarity: ``{"pairs": [[u, v],
                            ...], "metric": "jaccard"|"closeness", "d": 2}``
``POST /distance``          batch sketch-space distance estimates:
                            ``{"pairs": [[u, v], ...]}``
``GET  /similar/<label>``   most similar nodes (``?count=&d=``)
``GET  /node/<label>``      one node's summary (sketch size, estimates)
``POST /update``            apply an edge batch: ``{"edges": [[u, v], ...]}``
``POST /compact``           flush applied updates to the on-disk layout
==========================  ===============================================

The similarity/distance endpoints need a bottom-k index (the flavor
whose extracted MinHash sketches are comparable across nodes); other
flavors answer 409.

Unknown nodes are 404s, malformed parameters 400s, unexpected faults
500s -- always with an ``{"error": ...}`` body.  Handlers speak
HTTP/1.1 with explicit ``Content-Length``, so clients can keep
connections alive and batch thousands of queries per second over one
socket (``benchmarks/bench_serve.py`` measures exactly that).

Routing, caching, locking, and the endpoint handlers are
transport-agnostic: :meth:`AdsServer.handle_request` maps ``(method,
target, raw body)`` to ``(status, payload)`` without touching a
socket, which is how the asyncio transport
(:class:`repro.serve.aio.AsyncAdsServer`) serves the byte-identical
API over a pipelined parser.  Responses are negotiated per request:
clients that send ``Accept: application/x-repro-wire`` get the compact
binary codec (:mod:`repro.serve.wire`), everyone else the unchanged
JSON.  When every worker is busy and the connection backlog is full,
new connections are shed with an explicit ``503`` + ``Retry-After``
(counted under ``transport.load_shed`` in ``/stats``) rather than a
bare reset -- a reset reads as a transport fault and sends
well-behaved clients straight back into the overload.

Writes are optional: ``/update`` needs the server started with the
index's *graph* (``repro serve --graph``) and an eagerly loaded
(non-mmap) index, and answers 409 otherwise.  A
:class:`~repro.serve.locks.ReadWriteLock` keeps queries fully
concurrent while an update holds the exclusive side, and every applied
batch invalidates the whole-graph result cache (sketches changed; the
cached sweeps are stale by definition).
"""

from __future__ import annotations

import base64
import json
import math
import os
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from pathlib import Path
from typing import Union

from repro._util import require
from repro.ads.index import MANIFEST_NAME, AdsIndex
from repro.ads.wal import WriteAheadLog
from repro.centrality.closeness import top_k_central_nodes
from repro.errors import ReproError
from repro.serve import registry, wire
from repro.serve.cache import LruCache
from repro.serve.locks import ReadWriteLock
from repro.serve.schemas import (
    WireError,
    bad_request,
    centrality_kwargs,
    coerce_edge_labels,
    conflict,
    json_safe_number,
    label_value_pairs,
    nf_curve_points,
    not_found,
    parse_bool,
    parse_edges,
    parse_float,
    parse_int,
    parse_pairs,
    parse_similarity_metric,
    parse_sync_install,
    resolve_node,
    resolve_nodes,
    series_pairs,
)

_MAX_BODY_BYTES = 8 << 20  # refuse absurd batch payloads outright

_SHED_BODY = b'{"error": "server overloaded; retry later"}'
# Pre-rendered: the shed path runs on the accept thread under overload,
# where formatting a response per connection is exactly the wrong idea.
_SHED_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_SHED_BODY)).encode("ascii") + b"\r\n"
    b"Retry-After: 1\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _SHED_BODY
)


class _PooledHTTPServer(HTTPServer):
    """An ``HTTPServer`` that handles connections on a bounded pool of
    daemon worker threads.

    ``ThreadingHTTPServer`` spawns an unbounded thread per connection; a
    serving daemon wants backpressure instead, so accepted connections
    queue once all ``threads`` workers are busy.  Workers are daemon
    threads -- a client holding a keep-alive connection open can never
    block process exit -- and each connection read carries the handler's
    idle timeout, after which the connection is dropped and the worker
    moves on.
    """

    allow_reuse_address = True

    def __init__(self, address, handler_class, app: "AdsServer",
                 threads: int):
        self.app = app
        # Bounded: once every worker is busy and the backlog is full,
        # new connections are shed immediately instead of accumulating
        # open file descriptors without limit.
        self._work: "queue.Queue" = queue.Queue(maxsize=threads * 8 + 16)
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(threads)
        ]
        super().__init__(address, handler_class)
        for worker in self._workers:
            worker.start()

    def process_request(self, request, client_address):
        try:
            self._work.put_nowait((request, client_address))
        except queue.Full:
            # Shed load with an explicit 503 + Retry-After instead of a
            # bare connection reset: a reset is indistinguishable from
            # a transport fault, so clients would retry straight back
            # into the overloaded server.
            self.app._count_shed()
            try:
                request.sendall(_SHED_RESPONSE)
            except OSError:
                pass  # client already gone; shedding anyway
            self.shutdown_request(request)

    def _worker(self):
        while True:
            item = self._work.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def handle_error(self, request, client_address):
        # Client disconnects mid-response are routine, not stack traces.
        pass

    def server_close(self):
        super().server_close()
        for _ in self._workers:
            self._work.put(None)


class _AdsRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive; Content-Length always sent
    server_version = "repro-serve/1.0"
    timeout = 30.0  # idle keep-alive connections release their worker
    # Responses go out as two small writes (headers, then body); with
    # Nagle on, the second write stalls ~40ms behind the client's
    # delayed ACK, capping a keep-alive connection at ~25 queries/sec.
    disable_nagle_algorithm = True

    def do_GET(self):  # noqa: N802 (http.server naming contract)
        self.server.app.dispatch(self, "GET")

    def do_POST(self):  # noqa: N802
        self.server.app.dispatch(self, "POST")

    def log_message(self, format, *args):
        """Silence per-request stderr chatter; /stats has the counters."""


class ServerBase:
    """Transport, dispatch, caching, and counter chassis for servers.

    Everything about *serving HTTP* -- the pooled threaded transport,
    the transport-agnostic :meth:`handle_request` funnel, the
    read/write lock discipline around ``/update`` and ``/compact``,
    the LRU result cache, and the request/error/shed counters -- lives
    here, independent of *what* is being served.  Two daemons build on
    it: :class:`AdsServer` answers queries from a local
    :class:`~repro.ads.index.AdsIndex`, and
    :class:`repro.serve.cluster.RouterServer` answers the same API by
    fanning out to a sharded cluster of workers.  The route table is
    *not* per subclass: it is built from the declarative endpoint
    registry (:mod:`repro.serve.registry`) filtered by the class's
    ``_ROUTE_SCOPES``, so every flavor serves (and 404s) the same API
    by construction; subclasses just implement the handler methods the
    registry names, plus :meth:`_node_summary`.
    """

    # Paths that take the exclusive side of the read/write lock --
    # derived from the same registry the dispatch tables come from.
    _WRITE_PATHS = registry.WRITE_PATHS

    # Which registry scopes this server carries.  Workers (and single
    # servers) also answer the internal worker-to-worker endpoints; the
    # cluster router narrows this to {"all"}.
    _ROUTE_SCOPES = frozenset({"all", "worker"})

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        threads: int = 8,
        wire_mode: str = "auto",
    ):
        require(threads >= 1, f"threads must be >= 1, got {threads}")
        require(
            wire_mode in ("auto", "json"),
            f"wire_mode must be 'auto' or 'json', got {wire_mode!r}",
        )
        self.cache = LruCache(cache_size)
        self.threads = int(threads)
        self.wire_mode = wire_mode
        # Monotonic, not wall-clock: /stats uptime must survive a
        # wall-clock step (NTP correction, DST) without going negative.
        self.started_at = time.monotonic()
        self._requests = 0
        self._internal_errors = 0
        self._updates_applied = 0
        self._sheds = 0
        self._counter_lock = threading.Lock()
        self._rw_lock = ReadWriteLock()
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()
        self._routes = self._build_routes()
        self._open_transport(host, port)

    def _build_routes(self):
        """Bind the endpoint registry for this class's scopes.

        Returns the exact-path dispatch table and stores the
        prefix-route table (``/node/<label>``-style endpoints) on the
        side; both map path -> ``(bound handler, allowed methods)``.
        """
        exact, prefix = registry.route_tables(self, self._ROUTE_SCOPES)
        self._prefix_routes = prefix
        return exact

    def _open_transport(self, host: str, port: int) -> None:
        """Bind the transport; the asyncio mixin overrides this."""
        self._httpd = _PooledHTTPServer(
            (host, port), _AdsRequestHandler, self, self.threads
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block and serve until :meth:`shutdown` (or KeyboardInterrupt)."""
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._serving.clear()

    def start(self) -> "ServerBase":
        """Serve on a daemon background thread (tests, examples, embeds)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve-acceptor",
                daemon=True,
            )
            self._thread.start()
            # Wait for the accept loop to go live so an immediate
            # shutdown() cannot race serve_forever's startup (it would
            # skip the shutdown handshake and strand the loop).
            self._serving.wait(timeout=5.0)
        return self

    def shutdown(self) -> None:
        """Stop accepting, join the acceptor thread, release the socket.

        Safe to call whether or not the server ever started: the
        ``serve_forever`` handshake only runs when an accept loop is
        actually live (``HTTPServer.shutdown`` would otherwise wait
        forever on an event that only ``serve_forever`` sets).
        """
        if self._serving.is_set():
            self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.close()

    def close(self) -> None:
        """Release the listening socket and the worker pool.

        The public teardown for a server that was never (or is no
        longer) serving; :meth:`shutdown` calls it automatically.
        """
        self._httpd.server_close()

    def __enter__(self) -> "ServerBase":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _count_request(self) -> None:
        with self._counter_lock:
            self._requests += 1

    def _count_internal_error(self) -> None:
        with self._counter_lock:
            self._internal_errors += 1

    def _count_shed(self) -> None:
        with self._counter_lock:
            self._sheds += 1

    def dispatch(self, handler: _AdsRequestHandler, method: str) -> None:
        """Route one threaded-transport request and write its response."""
        accept = handler.headers.get("Accept")
        try:
            raw = self._read_body(handler) if method == "POST" else None
        except WireError as error:
            self._count_request()
            self._write_response(
                handler, error.status, {"error": error.message}, accept
            )
            return
        status, payload = self.handle_request(
            method,
            handler.path,
            raw,
            content_type=handler.headers.get("Content-Type"),
        )
        self._write_response(handler, status, payload, accept)

    def handle_request(
        self,
        method: str,
        target: str,
        body: Optional[bytes],
        content_type: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Transport-agnostic request handling: ``(status, payload)``.

        *target* is the request target as it appeared on the request
        line (path plus optional query string); *body* is the raw POST
        body, decoded as JSON or as the binary wire codec depending on
        *content_type*.  Never raises -- refusals and faults come back
        as their HTTP status with an ``{"error": ...}`` payload, and
        every call counts toward ``/stats``.  Both the threaded and
        the asyncio transports funnel through here, which is what
        keeps their payloads byte-identical.
        """
        self._count_request()
        try:
            split = urlsplit(target)
            path = unquote(split.path)
            # keep_blank_values: "?node=" must reach resolve_node (404)
            # rather than silently becoming an all-nodes sweep.
            params = {
                name: values[-1]
                for name, values in parse_qs(
                    split.query, keep_blank_values=True
                ).items()
            }
        except ValueError:
            return 400, {"error": "malformed request target"}
        try:
            parsed = (
                self._parse_body(body, content_type)
                if method == "POST" else None
            )
            # Reads share the lock (queries stay fully concurrent);
            # the update/compact endpoints take the exclusive side so
            # no query ever observes a half-spliced index.
            if path in self._WRITE_PATHS:
                with self._rw_lock.write_locked():
                    return self._route(method, path, params, parsed)
            with self._rw_lock.read_locked():
                return self._route(method, path, params, parsed)
        except WireError as error:
            return error.status, {"error": error.message}
        except ReproError as error:
            # Request validation all happens in the schemas layer
            # (WireError above); a library error surfacing here means
            # the *served index* failed mid-query -- a vanished shard
            # file, a truncated layout -- which is a server fault, not
            # a malformed request.
            self._count_internal_error()
            return 500, {"error": str(error)}
        except Exception:  # pragma: no cover - defensive
            self._count_internal_error()
            return 500, {"error": "internal server error"}

    @staticmethod
    def _parse_body(
        raw: Optional[bytes], content_type: Optional[str]
    ) -> Dict[str, Any]:
        """Decode a POST body per its Content-Type (JSON or binary)."""
        if not raw:
            raise bad_request("POST requires a request body")
        if wire.is_binary_content_type(content_type):
            try:
                body = wire.decode(raw)
            except wire.WireFormatError as error:
                raise bad_request(f"malformed binary body ({error})")
        else:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise bad_request(f"malformed JSON body ({error})")
        if not isinstance(body, dict):
            raise bad_request("request body must be an object")
        return body

    @staticmethod
    def _read_body(handler: _AdsRequestHandler) -> bytes:
        # Refusals raised BEFORE the body is fully consumed must also
        # drop the connection: otherwise the unread body bytes would be
        # parsed as the next request on this keep-alive socket.
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError:
            handler.close_connection = True
            raise bad_request("invalid Content-Length")
        if length < 0:
            handler.close_connection = True
            raise bad_request("invalid Content-Length")
        if length > _MAX_BODY_BYTES:
            handler.close_connection = True
            raise bad_request("request body too large")
        raw = handler.rfile.read(length) if length else b""
        if not raw:
            # Covers chunked posts too (no Content-Length, body unread).
            handler.close_connection = True
            raise bad_request("POST requires a request body")
        return raw

    def _write_response(
        self,
        handler: _AdsRequestHandler,
        status: int,
        payload: Dict[str, Any],
        accept: Optional[str],
    ) -> None:
        data, content_type = wire.encode_response(
            payload, accept, self.wire_mode
        )
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(data)))
            if status == 503:
                handler.send_header("Retry-After", "1")
            if handler.close_connection:
                # Tell the client, don't just drop the socket (set when
                # a refused request left body bytes unread).
                handler.send_header("Connection", "close")
            handler.end_headers()
            handler.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> Tuple[int, Dict[str, Any]]:
        for route_prefix, (target, methods) in self._prefix_routes.items():
            if path.startswith(route_prefix):
                if method not in methods:
                    raise bad_request(
                        f"{path} only supports {'/'.join(methods)}"
                    )
                return 200, target(path[len(route_prefix):], params)
        entry = self._routes.get(path)
        if entry is None:
            raise not_found(f"no such endpoint: {path}")
        target, methods = entry
        if method not in methods:
            raise bad_request(f"{path} only supports {'/'.join(methods)}")
        if method == "POST":
            return 200, target(params, body)
        return 200, target(params, None)

    def _saturation(self) -> float:
        """Queued-work fill fraction (transport-specific)."""
        work = self._httpd._work
        if work.maxsize <= 0:
            return 0.0
        return min(1.0, work.qsize() / work.maxsize)

    def _transport_stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            sheds = self._sheds
        work = self._httpd._work
        return {
            "mode": "threaded",
            "threads": self.threads,
            "load_shed": sheds,
            "queue_depth": work.qsize(),
            "queue_capacity": work.maxsize,
        }

    def _cached(self, key: Tuple, compute) -> Tuple[Any, bool]:
        """Memoise a whole-graph result under a *parsed*-value key, so
        ``?d=2`` and ``?d=2.0`` (or spelled-out defaults) share one
        entry instead of fragmenting the LRU."""
        return self.cache.get_or_compute(key, compute)

    @staticmethod
    def _centrality_key(params: Dict[str, str]) -> Tuple[str, Any]:
        """Canonical (kind, half_life) pair: half_life only matters for
        the decay kernel, so other kinds collapse it to None."""
        kind = params.get("kind", "classic")
        half_life = (
            parse_float(params, "half_life", 1.0)
            if kind == "decay" else None
        )
        return kind, half_life

    def _node(self, raw: str, params: Dict[str, str]) -> Dict[str, Any]:
        """``GET /node/<label>`` prefix route -> per-flavor summary."""
        return self._node_summary(raw)

    def _node_summary(self, raw: str) -> Dict[str, Any]:
        raise NotImplementedError


class AdsServer(ServerBase):
    """The serving daemon: routing, caching, and counters over an index.

    Args:
        index: The sketch index to serve.
        host / port: Bind address; ``port=0`` picks a free port, read it
            back from :attr:`port`.
        cache_size: LRU capacity for whole-graph query results
            (``0`` disables caching).
        threads: Worker-thread pool size.  Each request thread may
            itself fan a batch query out across the index's kernel
            workers, so the server caps the product at
            ``KERNEL_BUDGET_FACTOR x cpu_count`` concurrent kernel
            tasks -- an index wired for more workers than
            ``(KERNEL_BUDGET_FACTOR * cpu_count) // threads`` is
            re-wired down at construction (results are bit-identical;
            only the fan-out changes).  The effective count is reported
            as ``index.kernel_workers`` in ``/stats``.
        graph: The index's :class:`~repro.graph.csr.CSRGraph` (same
            labels, same id order).  Enables ``POST /update``; without
            it the index is served read-only and updates answer 409.
        index_path: Where the served index lives on disk; the
            ``POST /compact`` destination.
        graph_path: Where the graph's edge list lives; ``POST
            /compact`` rewrites it alongside the index (node order
            pinned), so a restarted server loads a graph that matches
            -- a stale edge list would make post-restart updates
            silently diverge from a rebuild.
        wire_mode: ``"auto"`` (default) answers binary to clients that
            send ``Accept: application/x-repro-wire`` and JSON to
            everyone else; ``"json"`` pins every response to JSON
            regardless of the Accept header.
        node_range: ``(start, stop)`` global node-id range this worker
            *sweeps* -- the cluster shard-worker mode.  Single-node
            lookups still answer for any label (the router only sends
            a worker its own nodes, but a stray query is answered, not
            wrong), while the all-nodes endpoints (``/cardinality``,
            ``/closeness``, ``/top-central``, ``/neighborhood``,
            ``/nf-curve``, ``POST /nf-chain``) cover exactly rows
            ``[start, stop)`` -- and ``/similar/<label>`` restricts
            its *candidates* to them, so per-shard winners merge
            exactly at the router.
            ``stop=None`` leaves the range open-ended so the last shard
            group also owns nodes appended by later updates.  A worker
            over a sharded mmap layout only ever touches (and thus
            only ever maps) the shard files its range intersects.
        wal_dir: Directory for the write-ahead delta log
            (``--wal-dir``; requires ``graph``).  Every ``POST
            /update`` batch is checksummed, appended, and fsync'd
            *before* it is applied, and the log is truncated by ``POST
            /compact`` -- so a server killed at any point restarts by
            replaying the unflushed batches over its last compacted
            layout, bit-identical to a server that never crashed.
            Replay happens here, during construction.

    Example:
        >>> from repro.graph import path_graph
        >>> from repro.ads import AdsIndex
        >>> server = AdsServer(AdsIndex.build(path_graph(4).to_csr(), k=4))
        >>> with server:  # starts a background thread, shuts down on exit
        ...     from repro.serve.client import QueryClient
        ...     QueryClient(server.url).cardinality(node=0, d=1.0)["value"]
        2.0
    """

    # Oversubscription budget: at most this many concurrent kernel
    # tasks per CPU across all request threads (2 keeps cores busy
    # while one task waits on page faults without thrashing the
    # scheduler; see ARCHITECTURE.md "Parallel kernel execution").
    KERNEL_BUDGET_FACTOR = 2

    def __init__(
        self,
        index: AdsIndex,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        threads: int = 8,
        graph=None,
        index_path: Optional[Union[str, Path]] = None,
        graph_path: Optional[Union[str, Path]] = None,
        wire_mode: str = "auto",
        node_range: Optional[Tuple[int, Optional[int]]] = None,
        wal_dir: Optional[Union[str, Path]] = None,
    ):
        self.index = index
        self.graph = graph
        self.index_path = (
            Path(index_path) if index_path is not None else None
        )
        self.graph_path = (
            Path(graph_path) if graph_path is not None else None
        )
        self.wal: Optional[WriteAheadLog] = None
        self.wal_replayed = 0
        if wal_dir is not None:
            if index.mmap_backed:
                raise ReproError(
                    "--wal-dir needs an eagerly loaded index "
                    "(--no-mmap): a memory-mapped index is read-only "
                    "and never takes the updates a WAL would log"
                )
            if graph is None:
                raise ReproError(
                    "--wal-dir needs the index's graph (--graph): the "
                    "WAL logs live /update batches, which only a "
                    "writable server accepts"
                )
            self.wal = WriteAheadLog(wal_dir)
            # Replay BEFORE the graph/index label check below: a crash
            # between compact's index flush and its graph flush leaves
            # the pair misaligned on disk, and replay is what realigns
            # them (see _replay_wal).
            self.wal_replayed = self._replay_wal()
        if graph is not None and graph.nodes() != index.nodes():
            raise ReproError(
                "graph/index mismatch: the attached graph must carry "
                "exactly the index's node labels in id order"
            )
        # Computed once: coerce_edge_labels would otherwise scan every
        # label per update, under the exclusive lock.  Sound to cache
        # because coercion rejects any label that would break type
        # uniformity, so the type can never change over updates.
        self._label_type = index.label_type()
        self.node_range = self._validate_node_range(node_range)
        super().__init__(
            host=host, port=port, cache_size=cache_size,
            threads=threads, wire_mode=wire_mode,
        )
        # After super().__init__: the cap needs self.threads, and no
        # request can arrive before start()/serve_forever anyway.
        self.kernel_workers = self._cap_kernel_workers()

    def _replay_wal(self) -> int:
        """Re-apply WAL batches logged after the last compact.

        Normal crash recovery: the on-disk index and graph are the last
        compacted pair, and every pending record replays through
        :meth:`AdsIndex.apply_edges` -- which is deterministic and
        bit-identical to a rebuild, so the recovered server answers
        exactly like one that never crashed.

        One torn-compact window needs reconciling first.  Compact
        flushes the index, then the graph, then truncates the WAL; a
        crash between the first two steps leaves an index that already
        carries every logged batch next to a graph that is missing
        those batches' edges (detected here as a label mismatch).
        Replaying the *edges only* catches the graph up, and the label
        check afterwards proves the pair realigned.  A crash after both
        flushes but before the WAL truncate replays batches whose edges
        already exist -- ``add_edges`` reports no new arcs, so the
        replay is a no-op, as required.
        """
        records = self.wal.pending()
        if not records:
            return 0
        if self.graph.nodes() != self.index.nodes():
            for record in records:
                self.graph.add_edges(record.edges)
            if self.graph.nodes() != self.index.nodes():
                raise ReproError(
                    "WAL replay cannot reconcile this graph/index "
                    "pair: the logged batches do not bring the graph "
                    "to the index's node set (wrong --graph file or "
                    "--wal-dir?)"
                )
            return len(records)
        for record in records:
            self.index.apply_edges(self.graph, record.edges)
        return len(records)

    def _validate_node_range(
        self, value: Optional[Tuple[int, Optional[int]]]
    ) -> Optional[Tuple[int, Optional[int]]]:
        if value is None:
            return None
        start, stop = value
        start = int(start)
        n = self.index.num_nodes
        require(
            0 <= start < n,
            f"node_range start must be in [0, {n}), got {start}",
        )
        if stop is not None:
            stop = int(stop)
            require(
                start < stop <= n,
                f"node_range stop must be in ({start}, {n}], got {stop}",
            )
        return (start, stop)

    def _range_bounds(self) -> Tuple[int, int]:
        """The node-id rows this worker sweeps, as concrete bounds."""
        if self.node_range is None:
            return 0, self.index.num_nodes
        start, stop = self.node_range
        return start, (self.index.num_nodes if stop is None else stop)

    def _cap_kernel_workers(self) -> int:
        """Cap request-threads x kernel-workers oversubscription.

        The product of concurrently running request threads and each
        one's kernel fan-out must not exceed
        ``KERNEL_BUDGET_FACTOR * cpu_count``; an index wired hotter
        than the per-thread budget is re-wired down (same floats,
        smaller fan-out).  Returns the effective kernel worker count.
        """
        workers = getattr(self.index, "kernel_workers", 1)
        cap = max(
            1,
            (self.KERNEL_BUDGET_FACTOR * (os.cpu_count() or 1))
            // self.threads,
        )
        if workers > cap:
            self.index.set_kernel_workers(cap)
            workers = self.index.kernel_workers
        return workers

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _healthz(self, params, body) -> Dict[str, Any]:
        # saturation: 0.0 idle .. 1.0 fully backed up -- the signal a
        # load balancer reads to steer traffic before sheds start.
        return {
            "status": "ok",
            "nodes": self.index.num_nodes,
            "saturation": round(self._saturation(), 6),
        }

    def _stats(self, params, body) -> Dict[str, Any]:
        index = self.index
        with self._counter_lock:
            requests, internal = self._requests, self._internal_errors
            updates = self._updates_applied
        index_stats = {
            "flavor": index.flavor,
            "k": index.k,
            "nodes": index.num_nodes,
            "entries": index.num_entries,
            "mmap": index.mmap_backed,
            "mapped_shards": index.mapped_shards,
            "backend": index.backend,
            "kernel_workers": getattr(index, "kernel_workers", 1),
            # What this worker actually serves -- the router's startup
            # topology validation compares this against --cluster.
            "labels_digest": index.labels_digest(),
        }
        if self.node_range is not None:
            # Shard-worker mode: report the sweep range so a router (or
            # an operator) can see which rows this worker owns.
            index_stats["node_range"] = list(self.node_range)
        wal_stats: Dict[str, Any] = {"enabled": self.wal is not None}
        if self.wal is not None:
            wal_stats.update(self.wal.stats())
            wal_stats["replayed_on_start"] = self.wal_replayed
        return {
            "requests": requests,
            "internal_errors": internal,
            "uptime_seconds": time.monotonic() - self.started_at,
            "threads": self.threads,
            "transport": self._transport_stats(),
            "cache": self.cache.stats(),
            "updates": {
                "writable": self._writable(),
                "applied_batches": updates,
                "pending_batches": len(index.delta_log),
                "wal": wal_stats,
            },
            "index": index_stats,
        }

    # -- write endpoints -----------------------------------------------
    def _writable(self) -> bool:
        return self.graph is not None and not self.index.mmap_backed

    def _require_writable(self) -> None:
        if self.index.mmap_backed:
            raise conflict(
                "index is memory-mapped read-only; restart the server "
                "with --no-mmap to accept updates"
            )
        if self.graph is None:
            raise conflict(
                "server was started without the index's graph; restart "
                "with --graph to accept updates"
            )

    def _update(self, params, body) -> Dict[str, Any]:
        """Apply an edge batch to the live index (exclusive lock held)."""
        self._require_writable()
        edges = coerce_edge_labels(
            self.index, parse_edges(body), label_type=self._label_type
        )
        if self.wal is not None:
            # Logged and fsync'd *before* apply: once the client sees
            # 200, the batch survives any crash.  A batch apply_edges
            # refuses must not replay either -- withdraw it.
            self.wal.append(edges)
            try:
                result = self.index.apply_edges(self.graph, edges)
            except BaseException:
                self.wal.rollback_last()
                raise
        else:
            result = self.index.apply_edges(self.graph, edges)
        # Whole-graph sweeps cached before this batch are stale now.
        self.cache.clear()
        with self._counter_lock:
            self._updates_applied += 1
        return {
            **result.to_dict(),
            "nodes": self.index.num_nodes,
            "entries": self.index.num_entries,
        }

    def _compact(self, params, body) -> Dict[str, Any]:
        """Flush applied batches to the server's on-disk layout.

        The destination is pinned to the path the server was started
        with: accepting a client-supplied path would hand anyone who
        can reach the socket an arbitrary-file-write primitive (and a
        way to silently redirect flushes away from the real index).
        """
        if self.index.mmap_backed:
            raise conflict(
                "index is memory-mapped read-only; restart the server "
                "with --no-mmap to accept updates"
            )
        if body and "path" in body:
            raise bad_request(
                "compact always flushes to the server's own index path; "
                "a client-writable destination is not accepted"
            )
        if self.index_path is None:
            raise conflict(
                "server does not know its index path; restart via "
                "`repro serve --index ...` (or pass index_path= when "
                "embedding AdsServer)"
            )
        info = self.index.compact(self.index_path)
        info["path"] = str(self.index_path)
        if self.graph is not None and self.graph_path is not None:
            # The edge list must follow the index (node order pinned):
            # restarting against a stale graph file would pass the
            # label check but propagate the *next* update over a graph
            # missing these batches' edges -- silent divergence.
            from repro.graph.io import write_edge_list

            write_edge_list(self.graph, self.graph_path, all_nodes=True)
            info["graph_path"] = str(self.graph_path)
        if self.wal is not None:
            # Truncate last: every crash point inside compact leaves a
            # log that still covers whatever the flushed files miss
            # (_replay_wal reconciles the torn-compact orderings).
            self.wal.reset(self.wal.last_seq)
            info["wal"] = self.wal.stats()
        return info

    # -- resync protocol (worker scope) --------------------------------
    #
    # A router re-seeds a stale-quarantined replica by reading a
    # /sync/snapshot off a healthy donor and POSTing it to the stale
    # worker's /sync/install, then compares digests before re-admitting
    # it.  The snapshot is the donor's *live* state -- by construction
    # equal to its compacted bytes with the WAL tail applied, without
    # forcing a disk flush on the donor.  All three endpoints need a
    # writable worker: read-only (mmap) workers never take the writes
    # that could make a replica diverge in the first place.
    def _sync_digest(self, params, body) -> Dict[str, Any]:
        """``GET /sync/digest``: content fingerprint for divergence
        checks (two workers agree here iff every query answers
        identically)."""
        self._require_writable()
        return {
            "digest": self.index.content_digest(),
            "nodes": self.index.num_nodes,
            "entries": self.index.num_entries,
            "pending_batches": len(self.index.delta_log),
        }

    def _sync_snapshot(self, params, body) -> Dict[str, Any]:
        """``GET /sync/snapshot``: the full re-seed payload a healthy
        donor serves (index bytes + graph edges, read lock held)."""
        self._require_writable()
        return {
            "digest": self.index.content_digest(),
            "index_b64": base64.b64encode(
                self.index.to_bytes()
            ).decode("ascii"),
            "edges": [list(edge) for edge in self.graph.edges()],
            "directed": bool(self.graph.directed),
            "seq": self.wal.last_seq if self.wal is not None else 0,
            "nodes": self.index.num_nodes,
            "entries": self.index.num_entries,
        }

    def _sync_install(self, params, body) -> Dict[str, Any]:
        """``POST /sync/install``: replace this worker's state with a
        donor snapshot (exclusive lock held -- no query can observe the
        half-swapped state).

        The installed index is digest-verified against the donor's
        claim, flushed to this worker's own index/graph paths (so a
        crash right after resync restarts from the donor's content, not
        the diverged state), and the WAL is reset at the donor's
        sequence floor.
        """
        self._require_writable()
        from repro.graph.csr import CSRGraph

        blob, raw_edges, directed, seq, expected = parse_sync_install(body)
        try:
            index = AdsIndex.from_bytes(
                blob, backend=self.index.backend,
            )
            graph = CSRGraph.from_edges(
                raw_edges, directed=directed, nodes=index.nodes()
            )
        except ReproError as error:
            raise bad_request(f"unusable donor snapshot ({error})")
        digest = index.content_digest()
        if expected is not None and digest != expected:
            raise conflict(
                f"installed snapshot digest {digest} does not match "
                f"the donor's claimed {expected}"
            )
        self.index = index
        self.graph = graph
        self._label_type = index.label_type()
        self.kernel_workers = self._cap_kernel_workers()
        self.cache.clear()
        flushed = self._flush_installed_state()
        if self.wal is not None:
            self.wal.reset(seq)
        return {
            "installed": True,
            "digest": digest,
            "nodes": index.num_nodes,
            "entries": index.num_entries,
            "flushed": flushed,
        }

    def _flush_installed_state(self) -> bool:
        """Persist a freshly installed snapshot to this worker's own
        paths, preserving an existing sharded layout's shard count."""
        if self.index_path is None:
            return False
        path = self.index_path
        if path.is_dir() or path.name == MANIFEST_NAME:
            directory = path if path.is_dir() else path.parent
            try:
                manifest = json.loads(
                    (directory / MANIFEST_NAME).read_text(encoding="utf-8")
                )
                shards = max(1, len(manifest.get("shards") or ()))
            except (OSError, json.JSONDecodeError, AttributeError):
                shards = 1
            self.index.save(directory, shards=shards)
        else:
            self.index.save(path)
        if self.graph_path is not None:
            from repro.graph.io import write_edge_list

            write_edge_list(self.graph, self.graph_path, all_nodes=True)
        return True

    # -- sweep helpers (node_range-aware) ------------------------------
    #
    # A full-index worker uses the batch kernel paths; a shard worker
    # sweeps its rows through the per-node query methods, which the
    # index documents as bit-identical to the batch kernels.  Both
    # produce rows in global node-id order, so a router concatenating
    # contiguous ranges reproduces the single-index ordering exactly.
    def _sweep_cardinality(self, d: float):
        if self.node_range is None:
            return label_value_pairs(self.index.cardinality_at(d))
        start, stop = self._range_bounds()
        labels = self.index.nodes()[start:stop]
        values = self.index.nodes_cardinality_at(labels, d)
        return [[label, value] for label, value in zip(labels, values)]

    def _sweep_closeness(self, kwargs):
        if self.node_range is None:
            return label_value_pairs(
                self.index.closeness_centrality(**kwargs)
            )
        start, stop = self._range_bounds()
        return [
            [label, self.index.node_closeness_centrality(label, **kwargs)]
            for label in self.index.nodes()[start:stop]
        ]

    def _sweep_top_central(self, count: int, largest: bool, kwargs):
        if self.node_range is None:
            return [
                [label, value]
                for label, value in self.index.top_central(
                    count, largest=largest, **kwargs
                )
            ]
        start, stop = self._range_bounds()
        values = {
            label: self.index.node_closeness_centrality(label, **kwargs)
            for label in self.index.nodes()[start:stop]
        }
        return [
            [label, value]
            for label, value in top_k_central_nodes(
                values, count, largest=largest
            )
        ]

    def _sweep_neighborhood(self):
        if self.node_range is None:
            return series_pairs(self.index.neighborhood_function())
        start, stop = self._range_bounds()
        jumps = self.index.accumulate_neighborhood_jumps({}, start, stop)
        series, running = [], 0.0
        for d in sorted(jumps):
            running += jumps[d]
            series.append([d, running])
        return series

    def _nf_chain(self, params, body) -> Dict[str, Any]:
        """Seeded ANF accumulation (``POST /nf-chain``) for routers.

        Body: ``{"seed": [[distance, weight_sum], ...]}`` -- the
        running per-distance sums from the preceding shard ranges
        (empty or omitted for the first).  The worker folds its own
        rows on top (see
        :meth:`~repro.ads.index.AdsIndex.accumulate_neighborhood_jumps`)
        and returns the updated sums sorted by distance.  Chaining the
        groups in shard order and prefix-summing the final jumps
        replays the single-index ANF float-op sequence exactly.
        """
        seed = body.get("seed", [])
        if not isinstance(seed, list):
            raise bad_request(
                "seed must be an array of [distance, weight] pairs"
            )
        jumps: Dict[float, float] = {}
        for pair in seed:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or any(
                    isinstance(x, bool) or not isinstance(x, (int, float))
                    for x in pair
                )
            ):
                raise bad_request(
                    "seed must be an array of [distance, weight] pairs"
                )
            jumps[float(pair[0])] = float(pair[1])
        start, stop = self._range_bounds()
        self.index.accumulate_neighborhood_jumps(jumps, start, stop)
        return {"jumps": [[d, jumps[d]] for d in sorted(jumps)]}

    def _cardinality(self, params, body) -> Dict[str, Any]:
        if body is not None:
            d = _batch_float(body, "d", math.inf)
            labels = resolve_nodes(self.index, body.get("nodes"))
            values = self.index.nodes_cardinality_at(labels, d)
            return {
                "d": json_safe_number(d),
                "results": [
                    [label, value]
                    for label, value in zip(labels, values)
                ],
            }
        d = parse_float(params, "d", math.inf)
        if "node" in params:
            label = resolve_node(self.index, params["node"])
            return {
                "node": label,
                "d": json_safe_number(d),
                "value": self.index.node_cardinality_at(label, d),
            }
        if d == math.inf:
            # Only the default all-reachable sweep is cached: d is a
            # continuous parameter, so caching every distinct threshold
            # would let a d-sweeping client pin cache-size O(n) result
            # lists in RAM.  Arbitrary-d sweeps stay O(n log k) per
            # request off the (once-materialised) prefix sums.
            results, cached = self._cached(
                ("/cardinality", d),
                lambda: self._sweep_cardinality(d),
            )
        else:
            results = self._sweep_cardinality(d)
            cached = False
        return {"d": json_safe_number(d), "results": results,
                "cached": cached}

    def _closeness(self, params, body) -> Dict[str, Any]:
        if body is not None:
            string_params = {
                name: str(body[name])
                for name in ("kind", "half_life") if name in body
            }
            kwargs = centrality_kwargs(string_params)
            labels = resolve_nodes(self.index, body.get("nodes"))
            return {
                "kind": string_params.get("kind", "classic"),
                "results": [
                    [label,
                     self.index.node_closeness_centrality(label, **kwargs)]
                    for label in labels
                ],
            }
        kwargs = centrality_kwargs(params)
        if "node" in params:
            label = resolve_node(self.index, params["node"])
            return {
                "node": label,
                "kind": params.get("kind", "classic"),
                "value": self.index.node_closeness_centrality(
                    label, **kwargs
                ),
            }
        results, cached = self._cached(
            ("/closeness",) + self._centrality_key(params),
            lambda: self._sweep_closeness(kwargs),
        )
        return {"kind": params.get("kind", "classic"), "results": results,
                "cached": cached}

    def _neighborhood(self, params, body) -> Dict[str, Any]:
        if "node" in params:
            label = resolve_node(self.index, params["node"])
            return {
                "node": label,
                "series": series_pairs(
                    self.index.node_neighborhood_function(label)
                ),
            }
        series, cached = self._cached(
            ("/neighborhood",),
            self._sweep_neighborhood,
        )
        return {"series": series, "cached": cached}

    def _top_central(self, params, body) -> Dict[str, Any]:
        count = parse_int(params, "count", 10, minimum=1)
        largest = parse_bool(params, "largest", True)
        kwargs = centrality_kwargs(params)
        results, cached = self._cached(
            ("/top-central", count, largest) + self._centrality_key(params),
            lambda: self._sweep_top_central(count, largest, kwargs),
        )
        return {
            "kind": params.get("kind", "classic"),
            "count": count,
            "largest": largest,
            "results": results,
            "cached": cached,
        }

    # -- similarity / distance-oracle endpoints ------------------------
    #
    # Validation order is pinned for cluster parity: everything a
    # router can check without an index (metric, pair shapes, d) is
    # checked first, in the same order the router checks it; the
    # flavor refusal comes last because only index-holding servers can
    # raise it (the router surfaces a worker's 409 verbatim).
    def _require_bottomk_index(self) -> None:
        if self.index.flavor != "bottomk":
            raise conflict(
                "similarity queries need a bottom-k index; this "
                f"server's index flavor is {self.index.flavor!r}"
            )

    def _similarity(self, params, body) -> Dict[str, Any]:
        metric = parse_similarity_metric(body)
        pairs = parse_pairs(self.index, body)
        if metric == "jaccard":
            d = _batch_float(body, "d", math.inf)
            self._require_bottomk_index()
            values = self.index.pairs_neighborhood_jaccard(pairs, d)
            return {
                "metric": metric,
                "d": json_safe_number(d),
                "results": [
                    [u, v, value]
                    for (u, v), value in zip(pairs, values)
                ],
            }
        if "d" in body:
            raise bad_request("d only applies to the jaccard metric")
        self._require_bottomk_index()
        values = self.index.pairs_closeness_similarity(pairs)
        return {
            "metric": metric,
            "results": [
                [u, v, value] for (u, v), value in zip(pairs, values)
            ],
        }

    def _distance(self, params, body) -> Dict[str, Any]:
        pairs = parse_pairs(self.index, body)
        self._require_bottomk_index()
        values = self.index.pairs_distance_estimate(pairs)
        # Unreachable pairs estimate to inf, which JSON cannot carry:
        # they come back as null.
        return {
            "results": [
                [u, v, json_safe_number(value)]
                for (u, v), value in zip(pairs, values)
            ],
        }

    def _similar(self, raw: str, params) -> Dict[str, Any]:
        if not raw:
            raise bad_request("/similar/<label> requires a label")
        count = parse_int(params, "count", 10, minimum=1)
        d = parse_float(params, "d", math.inf)
        label = resolve_node(self.index, raw)
        self._require_bottomk_index()
        start, stop = self._range_bounds()
        results = self.index.most_similar(
            label, count=count, d=d, start=start, stop=stop
        )
        return {
            "node": label,
            "count": count,
            "d": json_safe_number(d),
            "results": [[node, value] for node, value in results],
        }

    def _nf_curve(self, params, body) -> Dict[str, Any]:
        # Shares the /neighborhood cache entry: the curve is a pure
        # transform of the same swept series.
        series, cached = self._cached(
            ("/neighborhood",),
            self._sweep_neighborhood,
        )
        points, total = nf_curve_points(series)
        return {"points": points, "total_pairs": total, "cached": cached}

    def _node_summary(self, raw: str) -> Dict[str, Any]:
        if not raw:
            raise bad_request("/node/<label> requires a label")
        label = resolve_node(self.index, raw)
        lo, hi = self.index._slice(label)
        return {
            "node": label,
            "sketch_size": hi - lo,
            "reachable": self.index.node_cardinality_at(label),
            "closeness_classic": self.index.node_closeness_centrality(
                label, classic=True
            ),
            "neighborhood": series_pairs(
                self.index.node_neighborhood_function(label)
            ),
        }


def _batch_float(body: Dict[str, Any], name: str, default: float) -> float:
    """A float field of a JSON batch body (ints allowed, bools are not)."""
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise bad_request(f"{name} must be a number, got {value!r}")
    value = float(value)
    if math.isnan(value):
        raise bad_request(f"{name} must not be NaN")
    return value
