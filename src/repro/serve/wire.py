"""Compact binary wire codec for the serving layer.

JSON dominates the per-request cost of small queries: encoding a
``{"node": 5, "d": 2.0, "value": 17.0}`` response spends more cycles
in string formatting than the query spent in the index.  This module
is the negotiated alternative: a tiny tagged binary format built
entirely on :mod:`struct` (no third-party dependency, matching the
repository's stdlib-first rule) that round-trips exactly the value
space the JSON API uses -- ``None``, bools, ints, IEEE-754 doubles
(bit-identical: encoded as raw ``>d``), strings, lists, and string- or
scalar-keyed maps.  Anything JSON can say, the wire codec says in
fewer bytes and decodes without a parser in the hot path.

Negotiation is plain HTTP content negotiation, handled by
:func:`encode_response` / the servers' body parsing:

* a client that sends ``Accept: application/x-repro-wire`` gets binary
  response bodies (``Content-Type: application/x-repro-wire``);
* a ``POST`` body with ``Content-Type: application/x-repro-wire`` is
  decoded as binary; anything else is parsed as JSON exactly as
  before;
* clients that never mention the wire type see byte-for-byte the JSON
  API of previous releases.

Format (version tag implied by the content type): every value is one
tag byte followed by a fixed- or length-prefixed body.  Multi-byte
integers are big-endian.

======  =======================  =================================
tag     value                    body
======  =======================  =================================
0x00    ``None``                 --
0x01    ``False``                --
0x02    ``True``                 --
0x03    int (64-bit range)       ``>q``
0x04    int (arbitrary)          ``>I`` byte count + signed bytes
0x05    float                    ``>d`` (exact IEEE-754 double)
0x06    str                      ``>I`` byte count + UTF-8
0x07    list                     ``>I`` item count + items
0x08    dict                     ``>I`` pair count + key/value items
======  =======================  =================================

Example:
    >>> payload = {"node": 5, "d": 2.0, "value": None, "ok": True}
    >>> decode(encode(payload)) == payload
    True
    >>> decode(encode([1, -2.5, "three"]))
    [1, -2.5, 'three']
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError

#: Content type that selects the binary codec in either direction.
WIRE_CONTENT_TYPE = "application/x-repro-wire"
JSON_CONTENT_TYPE = "application/json"

_NONE = 0x00
_FALSE = 0x01
_TRUE = 0x02
_INT64 = 0x03
_BIGINT = 0x04
_FLOAT = 0x05
_STR = 0x06
_LIST = 0x07
_DICT = 0x08

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_MAX_DEPTH = 64

_PACK_INT64 = struct.Struct(">q")
_PACK_FLOAT = struct.Struct(">d")
_PACK_LEN = struct.Struct(">I")


class WireFormatError(ReproError):
    """A buffer that is not a well-formed wire-codec message."""


def encode(value: Any) -> bytes:
    """Serialise *value* to wire-codec bytes.

    Raises:
        WireFormatError: for value types the JSON API never produces
            (and the codec therefore refuses), or nesting deeper than
            the decoder would accept.

    Example:
        >>> encode(None)
        b'\\x00'
        >>> len(encode(2.0))  # tag + 8-byte double
        9
    """
    out = bytearray()
    _encode_into(out, value, _MAX_DEPTH)
    return bytes(out)


def _encode_into(out: bytearray, value: Any, depth: int) -> None:
    if depth <= 0:
        raise WireFormatError("value nests too deeply for the wire codec")
    if value is None:
        out.append(_NONE)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif isinstance(value, int):  # bools are handled above
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_INT64)
            out += _PACK_INT64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(_BIGINT)
            out += _PACK_LEN.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out.append(_FLOAT)
        out += _PACK_FLOAT.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_STR)
        out += _PACK_LEN.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_LIST)
        out += _PACK_LEN.pack(len(value))
        for item in value:
            _encode_into(out, item, depth - 1)
    elif isinstance(value, dict):
        out.append(_DICT)
        out += _PACK_LEN.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key, depth - 1)
            _encode_into(out, item, depth - 1)
    else:
        raise WireFormatError(
            f"type {type(value).__name__} is not wire-encodable"
        )


def decode(data: bytes) -> Any:
    """Parse one wire-codec value out of *data* (whole buffer).

    Raises:
        WireFormatError: on truncated buffers, unknown tags, invalid
            UTF-8, or trailing bytes after the value.

    Example:
        >>> decode(encode({"a": [1, 2.5]}))
        {'a': [1, 2.5]}
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise WireFormatError("wire payload must be bytes")
    value, offset = _decode_from(bytes(data), 0, _MAX_DEPTH)
    if offset != len(data):
        raise WireFormatError(
            f"{len(data) - offset} trailing bytes after the value"
        )
    return value


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise WireFormatError("truncated wire payload")


def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
    _need(data, offset, 4)
    return _PACK_LEN.unpack_from(data, offset)[0], offset + 4


def _decode_from(data: bytes, offset: int, depth: int) -> Tuple[Any, int]:
    if depth <= 0:
        raise WireFormatError("wire payload nests too deeply")
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _INT64:
        _need(data, offset, 8)
        return _PACK_INT64.unpack_from(data, offset)[0], offset + 8
    if tag == _BIGINT:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        value = int.from_bytes(
            data[offset:offset + length], "big", signed=True
        )
        return value, offset + length
    if tag == _FLOAT:
        _need(data, offset, 8)
        return _PACK_FLOAT.unpack_from(data, offset)[0], offset + 8
    if tag == _STR:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        try:
            text = data[offset:offset + length].decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(f"invalid UTF-8 in wire string ({error})")
        return text, offset + length
    if tag == _LIST:
        count, offset = _read_length(data, offset)
        # Each item costs at least one tag byte: a count larger than
        # the remaining buffer is a lie, refused before allocating.
        _need(data, offset, count)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth - 1)
            items.append(item)
        return items, offset
    if tag == _DICT:
        count, offset = _read_length(data, offset)
        _need(data, offset, 2 * count)
        pairs: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset, depth - 1)
            if isinstance(key, (list, dict)):
                raise WireFormatError("wire map keys must be scalars")
            value, offset = _decode_from(data, offset, depth - 1)
            pairs[key] = value
        return pairs, offset
    raise WireFormatError(f"unknown wire tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# HTTP content negotiation
# ----------------------------------------------------------------------
def accepts_binary(accept: Optional[str]) -> bool:
    """Whether an ``Accept`` header opts into binary responses.

    Deliberately a substring test, not a full ``Accept`` q-value
    parser: the only client that ever names the wire type is one that
    understands it.

    Example:
        >>> accepts_binary("application/x-repro-wire")
        True
        >>> accepts_binary("application/json"), accepts_binary(None)
        (False, False)
    """
    return bool(accept) and WIRE_CONTENT_TYPE in accept.lower()


def is_binary_content_type(content_type: Optional[str]) -> bool:
    """Whether a request body's ``Content-Type`` selects the codec."""
    if not content_type:
        return False
    return content_type.split(";", 1)[0].strip().lower() == WIRE_CONTENT_TYPE


def encode_response(
    payload: Any, accept: Optional[str], wire_mode: str = "auto"
) -> Tuple[bytes, str]:
    """Serialise a response body per the request's ``Accept`` header.

    Returns ``(body_bytes, content_type)``: binary when the client
    asked for it and the server's *wire_mode* permits (``"auto"``),
    the unchanged JSON bytes otherwise -- so clients that never send
    the wire type observe a byte-identical JSON API.
    """
    if wire_mode != "json" and accepts_binary(accept):
        return encode(payload), WIRE_CONTENT_TYPE
    return (
        json.dumps(payload).encode("utf-8"),
        JSON_CONTENT_TYPE,
    )


__all__ = [
    "JSON_CONTENT_TYPE",
    "WIRE_CONTENT_TYPE",
    "WireFormatError",
    "accepts_binary",
    "decode",
    "encode",
    "encode_response",
    "is_binary_content_type",
]
