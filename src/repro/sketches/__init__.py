"""MinHash sketches in the paper's three flavors, plus HyperLogLog.

Section 2: a MinHash sketch summarises a subset N of a domain using random
ranks.  The three flavors trade off information and update cost:

* :class:`~repro.sketches.kmins.KMinsSketch` -- k independent permutations,
  keep the minimum of each (sampling *with* replacement).
* :class:`~repro.sketches.bottomk.BottomKSketch` -- one permutation, keep
  the k smallest (sampling *without* replacement; most informative).
* :class:`~repro.sketches.kpartition.KPartitionSketch` -- hash items into k
  buckets, keep each bucket's minimum (HyperLogLog's layout).

All sketches built from the same :class:`~repro.rand.hashing.HashFamily`
are *coordinated*: overlapping sets produce overlapping samples, enabling
merging (union sketches) and Jaccard similarity estimation.

:class:`~repro.sketches.hll.HyperLogLog` is the k-partition sketch with
base-2 rounded ranks and the Flajolet et al. 2007 estimator -- the baseline
the paper's HIP distinct counter beats in Section 6.
"""

from repro.sketches.base import MinHashSketch
from repro.sketches.bottomk import BottomKSketch
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmins import KMinsSketch
from repro.sketches.kpartition import KPartitionSketch
from repro.sketches.similarity import jaccard_estimate, union_size_estimate

__all__ = [
    "MinHashSketch",
    "KMinsSketch",
    "BottomKSketch",
    "KPartitionSketch",
    "HyperLogLog",
    "jaccard_estimate",
    "union_size_estimate",
]
