"""The common MinHash sketch interface.

Beyond the obvious ``add``/``merge``, every flavor exposes
:meth:`MinHashSketch.update_probability` -- the probability that the *next
previously-unseen* element would modify the sketch, conditioned on the
current sketch content.  This is exactly the HIP probability of Section 5
specialised to streams ordered by first occurrence (Section 6), and it is
what powers the streaming HIP distinct counter: the counter adds
``1 / update_probability()`` whenever an insertion actually happens.
"""

from __future__ import annotations

from typing import Hashable

from repro._util import require
from repro.errors import EstimatorError
from repro.rand.hashing import HashFamily


class MinHashSketch:
    """Abstract MinHash sketch over one hash family.

    Subclasses must implement :meth:`add`, :meth:`merge`,
    :meth:`update_probability`, :meth:`copy`, and :meth:`cardinality`.
    """

    def __init__(self, k: int, family: HashFamily):
        require(k >= 1, f"sketch size k must be >= 1, got {k}")
        self.k = int(k)
        self.family = family

    # -- mutation -------------------------------------------------------
    def add(self, item: Hashable) -> bool:
        """Insert *item*; return True when the sketch content changed.

        Re-adding an element already reflected in the sketch is always a
        no-op (repeats in a stream cannot bias distinct-counting).
        """
        raise NotImplementedError

    def update(self, items) -> int:
        """Add every element of *items*; return the number of changes."""
        return sum(1 for item in items if self.add(item))

    def merge(self, other: "MinHashSketch") -> None:
        """In-place union: afterwards this sketch equals the sketch of the
        union of both underlying sets (requires same family/flavor/k)."""
        raise NotImplementedError

    # -- estimation hooks ----------------------------------------------
    def update_probability(self) -> float:
        """P[next unseen element modifies the sketch | current content]."""
        raise NotImplementedError

    def cardinality(self) -> float:
        """The flavor's *basic* cardinality estimate (Section 4)."""
        raise NotImplementedError

    # -- misc -----------------------------------------------------------
    def copy(self) -> "MinHashSketch":
        raise NotImplementedError

    def _check_mergeable(self, other: "MinHashSketch") -> None:
        if type(self) is not type(other):
            raise EstimatorError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.k != other.k:
            raise EstimatorError(
                f"cannot merge sketches with k={self.k} and k={other.k}"
            )
        if self.family != other.family:
            raise EstimatorError(
                "cannot merge sketches built from different hash families; "
                "coordination requires identical seeds"
            )
