"""Bottom-k MinHash sketch: the k smallest ranks in one permutation.

Also known as KMV, coordinated order samples, or CRC (Section 2).  This is
the most informative flavor for a given k (Section 4.2) and the flavor on
which the paper develops HIP in full detail.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.rand.hashing import HashFamily
from repro.rand.ranks import RankAssignment, UniformRanks
from repro.sketches.base import MinHashSketch


class BottomKSketch(MinHashSketch):
    """Keep the k items of smallest rank (sampling without replacement).

    Parameters
    ----------
    k:
        Sketch size.
    family:
        Shared hash family (coordination).
    ranks:
        Optional rank assignment; defaults to full-precision uniform ranks.
        Pass :class:`~repro.rand.ranks.BaseBRanks` for rounded ranks or
        :class:`~repro.rand.ranks.ExponentialRanks` for weighted items
        (Section 9).  Ties under rounded ranks never update the sketch
        (strict comparison), matching Section 4.4.

    Examples
    --------
    >>> from repro.rand.hashing import HashFamily
    >>> sketch = BottomKSketch(3, HashFamily(7))
    >>> sketch.update(range(100))
    ... # doctest: +SKIP
    >>> len(sketch.entries()) <= 3
    True
    """

    def __init__(
        self,
        k: int,
        family: HashFamily,
        ranks: Optional[RankAssignment] = None,
    ):
        super().__init__(k, family)
        self.ranks = ranks if ranks is not None else UniformRanks(family)
        # Max-heap of (-rank, item) so the largest retained rank is on top.
        self._heap: List[Tuple[float, Hashable]] = []
        self._members: Dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    def add(self, item: Hashable) -> bool:
        if item in self._members:
            return False
        r = self.ranks.rank(item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-r, item))
            self._members[item] = r
            return True
        largest = -self._heap[0][0]
        if r >= largest:
            return False
        _, evicted = heapq.heapreplace(self._heap, (-r, item))
        del self._members[evicted]
        self._members[item] = r
        return True

    def merge(self, other: "MinHashSketch") -> None:
        self._check_mergeable(other)
        for rank, item in other.entries():
            if item in self._members:
                continue
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, (-rank, item))
                self._members[item] = rank
            elif rank < -self._heap[0][0]:
                _, evicted = heapq.heapreplace(self._heap, (-rank, item))
                del self._members[evicted]
                self._members[item] = rank

    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[float, Hashable]]:
        """Sorted ``(rank, item)`` pairs, smallest rank first."""
        return sorted((r, item) for item, r in self._members.items())

    def items(self) -> List[Hashable]:
        """The sampled items, in increasing rank order."""
        return [item for _, item in self.entries()]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def kth_rank(self) -> float:
        """tau_k = kth smallest rank seen, or the rank supremum if fewer
        than k elements have been seen (the paper's kth_r operator)."""
        if len(self._heap) < self.k:
            return self.ranks.sup
        return -self._heap[0][0]

    # ------------------------------------------------------------------
    def update_probability(self) -> float:
        """P[a new element's rank < tau_k].

        For uniform (and rounded base-b) ranks this is tau_k itself; for
        other assignments subclasses of RankAssignment would need a CDF,
        so we restrict to rank ranges with sup == 1 here.
        """
        tau = self.kth_rank
        if self.ranks.sup == 1.0:
            return min(tau, 1.0)
        raise NotImplementedError(
            "update_probability requires ranks with range (0,1); "
            "got a rank assignment with sup=%r" % self.ranks.sup
        )

    def cardinality(self) -> float:
        """Basic bottom-k estimate (Section 4.2), exact below k."""
        from repro.estimators.basic import bottom_k_cardinality

        return bottom_k_cardinality(
            len(self._members), self.kth_rank, self.k, sup=self.ranks.sup
        )

    def copy(self) -> "BottomKSketch":
        clone = BottomKSketch(self.k, self.family, self.ranks)
        clone._heap = list(self._heap)
        clone._members = dict(self._members)
        return clone

    def __repr__(self) -> str:
        return f"BottomKSketch(k={self.k}, size={len(self._members)})"
