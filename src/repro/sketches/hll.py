"""HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007).

The state-of-the-art practical distinct counter the paper compares
against (Section 6).  Structurally it is a k-partition MinHash sketch with
base-2 rounded ranks in saturating registers; this class adds the HLL
estimators on top of that shared layout:

* :meth:`raw_estimate` -- the harmonic-mean "raw" estimator
  ``alpha_k * k^2 / sum_i 2^{-M[i]}`` (the ``HLLraw`` series of Figure 3);
* :meth:`estimate` -- with the 2007 paper's small-range linear-counting
  correction (the ``HLL`` series of Figure 3), and optionally the 32-bit
  large-range correction (off by default: our ranks are full-precision
  hashes, so there is no 2^32 ceiling to correct for).

The HIP alternative runs on the *same sketch*: wrap an instance in
:class:`repro.counters.hip_distinct.HipDistinctCounter` or simply call
:meth:`update_probability` (inherited) yourself.
"""

from __future__ import annotations

import math
from repro._util import require
from repro.rand.hashing import HashFamily
from repro.sketches.kpartition import KPartitionSketch


def hll_alpha(k: int) -> float:
    """The bias-correction constant alpha_k of Flajolet et al. 2007."""
    require(k >= 1, f"k must be >= 1, got {k}")
    if k <= 16:
        return 0.673
    if k <= 32:
        return 0.697
    if k <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / k)


class HyperLogLog(KPartitionSketch):
    """HLL counter with ``k`` registers of ``register_bits`` bits each.

    ``register_bits=5`` (saturation at 31) is the configuration of both
    the original paper and Figure 3 of Cohen's paper.
    """

    def __init__(self, k: int, family: HashFamily, register_bits: int = 5):
        require(register_bits >= 1, "register_bits must be >= 1")
        self.register_bits = int(register_bits)
        super().__init__(
            k,
            family,
            base=2.0,
            max_register=(1 << self.register_bits) - 1,
        )

    # ------------------------------------------------------------------
    def raw_estimate(self) -> float:
        """alpha_k * k^2 / sum_i 2^{-M[i]} with empty registers counting
        2^0 = 1 (exactly the 2007 definition)."""
        return hll_alpha(self.k) * self.k * self.k / sum(self.minima)

    def estimate(self, large_range_bits: int = 0) -> float:
        """Bias-corrected HLL estimate.

        Small range: when ``E <= 2.5k`` and some registers are still zero,
        fall back to linear counting ``k * ln(k / V)``.  Large range: only
        applied when *large_range_bits* > 0 (e.g. 32 to emulate a 32-bit
        hash pipeline); with full-precision ranks it is unnecessary.
        """
        raw = self.raw_estimate()
        if raw <= 2.5 * self.k:
            zeros = self.k - self.nonempty_buckets()
            if zeros > 0:
                return self.k * math.log(self.k / zeros)
        if large_range_bits > 0:
            domain = float(1 << large_range_bits)
            if raw > domain / 30.0:
                return -domain * math.log(1.0 - raw / domain)
        return raw

    def cardinality(self) -> float:
        """Alias: the bias-corrected estimate (parity with other sketches)."""
        return self.estimate()

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.k, self.family, self.register_bits)
        clone.minima = list(self.minima)
        clone.argmin = list(self.argmin)
        clone.registers = list(self.registers)
        return clone

    def __repr__(self) -> str:
        return (
            f"HyperLogLog(k={self.k}, bits={self.register_bits}, "
            f"nonempty={self.nonempty_buckets()})"
        )
