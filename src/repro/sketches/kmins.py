"""k-mins MinHash sketch: the minimum rank under k independent permutations.

The oldest flavor ([29], [11]); corresponds to sampling k times *with*
replacement.  Cheap to update (k comparisons) but less informative than
bottom-k for small sets (Section 4.1).
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.rand.hashing import HashFamily
from repro.sketches.base import MinHashSketch


class KMinsSketch(MinHashSketch):
    """Keep ``min rank`` under each of k independent permutations.

    Permutation h uses the family's rank index h, so two KMinsSketch
    instances over the same family are coordinated permutation-by-
    permutation.
    """

    def __init__(self, k: int, family: HashFamily):
        super().__init__(k, family)
        self.minima: List[float] = [1.0] * self.k
        self.argmin: List[Optional[Hashable]] = [None] * self.k

    def add(self, item: Hashable) -> bool:
        changed = False
        for h in range(self.k):
            r = self.family.rank(item, h)
            if r < self.minima[h]:
                self.minima[h] = r
                self.argmin[h] = item
                changed = True
        return changed

    def merge(self, other: "MinHashSketch") -> None:
        self._check_mergeable(other)
        for h in range(self.k):
            if other.minima[h] < self.minima[h]:
                self.minima[h] = other.minima[h]
                self.argmin[h] = other.argmin[h]

    def update_probability(self) -> float:
        """P[new element beats at least one minimum] = 1 - prod(1 - x_h)
        (Equation 7 specialised to the stream setting)."""
        p_none = 1.0
        for x in self.minima:
            p_none *= 1.0 - x
        return 1.0 - p_none

    def cardinality(self) -> float:
        """Basic k-mins estimate (k-1) / sum(-ln(1-x))  (Section 4.1)."""
        from repro.estimators.basic import k_mins_cardinality

        return k_mins_cardinality(self.minima)

    def copy(self) -> "KMinsSketch":
        clone = KMinsSketch(self.k, self.family)
        clone.minima = list(self.minima)
        clone.argmin = list(self.argmin)
        return clone

    def __repr__(self) -> str:
        return f"KMinsSketch(k={self.k})"
