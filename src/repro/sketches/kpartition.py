"""k-partition MinHash sketch: one minimum per random bucket.

Items are hashed uniformly into k buckets and the sketch keeps each
bucket's minimum rank (Section 2).  With base-2 rounded ranks and
saturating registers this *is* the HyperLogLog sketch layout; the flavor's
HIP probability (Equation 8) is the average of per-bucket thresholds.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro._util import require
from repro.rand.hashing import HashFamily
from repro.rand.ranks import BaseBRanks
from repro.sketches.base import MinHashSketch


class KPartitionSketch(MinHashSketch):
    """Bucketed minima, optionally with base-b rounded saturating registers.

    Parameters
    ----------
    k:
        Number of buckets.
    family:
        Shared hash family (bucket hash and rank hash are independent).
    base:
        When given (b > 1), ranks are rounded to ``b**-h`` and the integer
        registers ``h`` are exposed via :attr:`registers` -- with
        ``base=2`` and ``max_register=31`` this is exactly the
        HyperLogLog/Algorithm-3 sketch.
    max_register:
        Saturation bound for rounded registers (None = unbounded).
    """

    def __init__(
        self,
        k: int,
        family: HashFamily,
        base: Optional[float] = None,
        max_register: Optional[int] = None,
    ):
        super().__init__(k, family)
        if base is not None:
            require(base > 1.0, f"base must be > 1, got {base}")
        if max_register is not None:
            require(base is not None, "max_register requires a base")
        self.base = base
        self.max_register = max_register
        self._rounder = (
            BaseBRanks(family, base, max_register=max_register)
            if base is not None
            else None
        )
        self.minima: List[float] = [1.0] * self.k
        self.argmin: List[Optional[Hashable]] = [None] * self.k
        # Integer registers are maintained only in rounded mode.
        self.registers: Optional[List[int]] = (
            [0] * self.k if base is not None else None
        )

    # ------------------------------------------------------------------
    def _rank_of(self, item: Hashable) -> float:
        if self._rounder is not None:
            return self._rounder.rank(item)
        return self.family.rank(item)

    def bucket(self, item: Hashable) -> int:
        return self.family.bucket(item, self.k)

    def add(self, item: Hashable) -> bool:
        h = self.bucket(item)
        if self.registers is not None:
            reg = self._rounder.register(item)
            if reg <= self.registers[h]:
                return False
            self.registers[h] = reg
            self.minima[h] = self.base ** (-reg)
            self.argmin[h] = item
            return True
        r = self.family.rank(item)
        if r >= self.minima[h]:
            return False
        self.minima[h] = r
        self.argmin[h] = item
        return True

    def merge(self, other: "MinHashSketch") -> None:
        self._check_mergeable(other)
        if (self.base, self.max_register) != (other.base, other.max_register):
            from repro.errors import EstimatorError

            raise EstimatorError("cannot merge k-partition sketches with "
                                 "different base/max_register settings")
        for h in range(self.k):
            if other.minima[h] < self.minima[h]:
                self.minima[h] = other.minima[h]
                self.argmin[h] = other.argmin[h]
                if self.registers is not None:
                    self.registers[h] = other.registers[h]

    # ------------------------------------------------------------------
    def nonempty_buckets(self) -> int:
        """k' of Section 4.3: buckets whose minimum has been set."""
        return sum(1 for item in self.argmin if item is not None)

    def saturated_buckets(self) -> int:
        """Buckets whose register hit max_register (can never update)."""
        if self.registers is None or self.max_register is None:
            return 0
        return sum(1 for reg in self.registers if reg >= self.max_register)

    def update_probability(self) -> float:
        """(1/k) * sum over buckets of the update threshold (Equation 8).

        An untouched bucket contributes 1 (any rank updates it); a
        saturated register contributes 0 (it can never grow) -- this is
        how the HIP estimate "gracefully degrades" under saturation
        (Section 6).
        """
        total = 0.0
        for h in range(self.k):
            if self.argmin[h] is None:
                total += 1.0
            elif (
                self.max_register is not None
                and self.registers[h] >= self.max_register
            ):
                total += 0.0
            else:
                total += self.minima[h]
        return total / self.k

    def cardinality(self) -> float:
        """Basic k-partition estimate (Section 4.3)."""
        from repro.estimators.basic import k_partition_cardinality

        return k_partition_cardinality(self.minima, self.argmin)

    def copy(self) -> "KPartitionSketch":
        clone = KPartitionSketch(
            self.k, self.family, base=self.base, max_register=self.max_register
        )
        clone.minima = list(self.minima)
        clone.argmin = list(self.argmin)
        if self.registers is not None:
            clone.registers = list(self.registers)
        return clone

    def __repr__(self) -> str:
        return (
            f"KPartitionSketch(k={self.k}, base={self.base}, "
            f"nonempty={self.nonempty_buckets()})"
        )
