"""Similarity and union estimation from coordinated bottom-k sketches.

Coordination (Section 2) means sketches of different sets are samples from
the *same* permutation, so the k smallest ranks of a union are computable
from the two sketches alone.  This enables the classic MinHash Jaccard
estimator [11], [10] and union-cardinality estimation -- applications the
paper lists as motivations for keeping coordination.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import EstimatorError
from repro.sketches.bottomk import BottomKSketch


def _union_bottom_k(
    a: BottomKSketch, b: BottomKSketch
) -> Tuple[list, float]:
    """The k smallest (rank, item) pairs of the union, plus tau_k."""
    if a.k != b.k:
        raise EstimatorError(f"sketches must share k; got {a.k} and {b.k}")
    if a.family != b.family:
        raise EstimatorError("similarity requires coordinated sketches "
                             "(same hash family)")
    merged: dict = {}
    for rank, item in a.entries():
        merged[item] = rank
    for rank, item in b.entries():
        merged[item] = rank
    union = sorted((rank, item) for item, rank in merged.items())[: a.k]
    tau = union[-1][0] if len(union) == a.k else a.ranks.sup
    return union, tau


def jaccard_estimate(a: BottomKSketch, b: BottomKSketch) -> float:
    """Estimate |A intersect B| / |A union B|.

    Counts how many of the k smallest union ranks belong to both sketches;
    this is an unbiased estimator of the Jaccard coefficient because the
    bottom-k of the union is a uniform without-replacement sample of it.
    """
    union, _ = _union_bottom_k(a, b)
    if not union:
        return 0.0
    in_both = sum(1 for _, item in union if item in a and item in b)
    return in_both / len(union)


def union_size_estimate(a: BottomKSketch, b: BottomKSketch) -> float:
    """Basic bottom-k cardinality estimate of |A union B|."""
    from repro.estimators.basic import bottom_k_cardinality

    union, tau = _union_bottom_k(a, b)
    return bottom_k_cardinality(len(union), tau, a.k, sup=a.ranks.sup)
