"""Data-stream substrate (Sections 3.1 and 6 of the paper).

Streams are sequences of ``(element, time)`` entries.  This subpackage
generates the workloads used by the streaming-ADS algorithms and the
distinct-counting evaluation: pure distinct streams, streams with repeats
(uniform or Zipf-distributed re-occurrence), and timestamped entry streams.
"""

from repro.streams.generators import (
    distinct_stream,
    shuffled_distinct_stream,
    timestamped,
    zipf_stream,
)

__all__ = [
    "distinct_stream",
    "shuffled_distinct_stream",
    "timestamped",
    "zipf_stream",
]
