"""Stream workload generators.

Distinct counting (Section 6) is insensitive to repeats -- a repeated
element never updates a MinHash sketch -- so the paper simulates on pure
distinct streams (Section 5.5).  The generators here provide both the pure
case and repeat-heavy cases used in tests to verify that repeats are
handled correctly (no estimate drift, no double counting).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Tuple


def distinct_stream(n: int, start: int = 0) -> Iterator[int]:
    """n distinct integer elements ``start .. start+n-1`` in order."""
    return iter(range(start, start + n))


def shuffled_distinct_stream(n: int, seed: int = 0) -> List[int]:
    """n distinct integers in a seeded random order."""
    elements = list(range(n))
    random.Random(seed).shuffle(elements)
    return elements


def zipf_stream(
    n_distinct: int, length: int, exponent: float = 1.1, seed: int = 0
) -> List[int]:
    """A stream of *length* entries over ``n_distinct`` elements with
    Zipf(exponent) popularity -- heavy repeats, the adversarial case for
    distinct counters.

    Every element is guaranteed to appear at least once when
    ``length >= n_distinct`` (the first ``n_distinct`` entries are a
    permutation), matching how distinct-count ground truth is asserted.
    """
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** exponent for i in range(n_distinct)]
    first = list(range(n_distinct))
    rng.shuffle(first)
    if length <= n_distinct:
        return first[:length]
    tail = rng.choices(range(n_distinct), weights=weights, k=length - n_distinct)
    return first + tail


def timestamped(
    elements: Iterable[int], start: float = 0.0, step: float = 1.0
) -> Iterator[Tuple[int, float]]:
    """Attach arrival times ``start, start+step, ...`` to *elements* --
    the ``(u, t)`` entry format of Section 3.1."""
    t = start
    for u in elements:
        yield (u, t)
        t += step
