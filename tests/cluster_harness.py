"""In-process cluster fixture + deterministic fault injection.

The cluster tests need a real multi-worker deployment -- actual
sockets, the real binary RPC path, real failover -- but spawning
subprocesses per test would be slow and non-deterministic to fault.
This harness builds the whole topology in one process:

* :func:`start_cluster` spins N shard workers (optionally R replicas
  each) on ephemeral loopback ports plus a
  :class:`~repro.serve.cluster.RouterServer` in front, and returns a
  :class:`Cluster` handle that quacks enough like a server for the
  parametrized ``test_serve*`` fixtures (``url``/``host``/``port``/
  ``started_at``/``shutdown``...) while exposing the workers for
  surgery.

* :class:`FaultProxy` sits between the router and one worker as an
  HTTP-aware relay, so tests inject *precise* failures on demand --
  not "the worker is slow today" but "the next response is truncated
  mid-frame".  Modes:

  - ``pass``       relay verbatim (the default);
  - ``refuse``     close every connection immediately (worker
    process gone: connect succeeds to a dead port's TIME_WAIT or is
    refused -- either way, a transport error);
  - ``kill_next``  close the connection mid-request *once* (worker
    killed while handling the call), then behave like ``refuse``;
  - ``blackhole``  accept and read the request, never answer (hung
    worker -- only the router's ``rpc_timeout`` gets you out);
  - ``truncate:N`` relay the response status/headers but cut the body
    to its first N bytes with a matching Content-Length, producing a
    *well-formed HTTP response carrying a torn wire frame* -- the
    nastiest failure, because only payload-level validation catches
    it.

  Every mode switch is a plain attribute write read per-request, so a
  test can flip a replica's behavior between two calls and know
  exactly which RPC hits the fault.
"""

import socket
import threading

from repro.ads import AdsIndex
from repro.ads.index import shard_ranges
from repro.graph.csr import CSRGraph
from repro.serve import (
    AdsServer,
    AsyncRouterServer,
    QueryClient,
    RouterServer,
)


def _read_http_message(sock):
    """Read one full HTTP message (request or response) off *sock*.

    Returns ``(head_bytes, body_bytes)`` where *head* is everything up
    to the blank line, or ``None`` if the peer closed before a full
    message arrived.  Relies on Content-Length framing -- both the
    serve clients and servers always set it.
    """
    data = b""
    while b"\r\n\r\n" not in data:
        try:
            chunk = sock.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        try:
            chunk = sock.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        body += chunk
    return head, body


def _set_content_length(head, length):
    lines = head.split(b"\r\n")
    for position, line in enumerate(lines):
        if line.split(b":")[0].strip().lower() == b"content-length":
            lines[position] = b"Content-Length: %d" % length
    return b"\r\n".join(lines)


class FaultProxy:
    """HTTP-aware fault-injecting relay in front of one worker."""

    def __init__(self, upstream_host, upstream_port):
        self.upstream = (upstream_host, upstream_port)
        self.mode = "pass"
        self._dead = threading.Event()
        self._conns = []
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy", daemon=True
        )
        self._thread.start()

    @property
    def port(self):
        return self._listener.getsockname()[1]

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def kill(self):
        """Drop the listener and every live connection *now* -- the
        worker process is gone as far as the router can tell."""
        self._dead.set()
        self.mode = "refuse"
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _accept_loop(self):
        while not self._dead.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            if self.mode == "refuse" or self._dead.is_set():
                conn.close()
                continue
            with self._lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            while not self._dead.is_set():
                message = _read_http_message(conn)
                if message is None:
                    return
                mode = self.mode
                if mode == "refuse":
                    return  # close without answering
                if mode == "kill_next":
                    # One mid-request connection drop, then dead.
                    self.mode = "refuse"
                    return
                if mode == "blackhole":
                    # Hold the socket open, never answer: the router's
                    # rpc_timeout is the only way out.
                    self._dead.wait()
                    return
                head, body = message
                upstream = socket.create_connection(
                    self.upstream, timeout=30
                )
                try:
                    upstream.sendall(head + b"\r\n\r\n" + body)
                    reply = _read_http_message(upstream)
                finally:
                    upstream.close()
                if reply is None:
                    return
                reply_head, reply_body = reply
                if mode.startswith("truncate:"):
                    keep = int(mode.split(":", 1)[1])
                    reply_body = reply_body[:keep]
                    reply_head = _set_content_length(reply_head, keep)
                    # A torn frame poisons the keep-alive stream; close
                    # after sending so framing stays deterministic.
                    conn.sendall(
                        reply_head + b"\r\n\r\n" + reply_body
                    )
                    return
                conn.sendall(reply_head + b"\r\n\r\n" + reply_body)
        except OSError:
            return
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)


def clone_graph(graph):
    """An independent CSRGraph with identical node ids and edges."""
    return CSRGraph.from_edges(
        list(graph.edges()),
        directed=graph.directed,
        nodes=graph.nodes(),
    )


class Cluster:
    """Handle over a running router + workers (+ optional proxies).

    Quacks like a server for fixtures (`url`, `host`, `port`,
    `started_at`, `cache`, `shutdown`, context manager) by delegating
    to the router, and like a writable deployment (`index`, `graph`,
    `index_path`) by delegating to worker 0 -- every worker holds the
    full index and applies every batch, so worker 0's state is the
    cluster's.
    """

    def __init__(self, router, workers, proxies):
        self.router = router
        self.workers = workers  # flat list, group-major
        self.proxies = proxies  # parallel to workers, or all None

    # -- server-fixture surface (delegates to the router) --------------
    @property
    def url(self):
        return self.router.url

    @property
    def host(self):
        return self.router.host

    @property
    def port(self):
        return self.router.port

    @property
    def started_at(self):
        return self.router.started_at

    @property
    def cache(self):
        return self.router.cache

    # -- writable-fixture surface (delegates to worker 0) --------------
    @property
    def index(self):
        return self.workers[0].index

    @property
    def graph(self):
        return self.workers[0].graph

    @property
    def index_path(self):
        return self.workers[0].index_path

    def client(self, **kwargs):
        return QueryClient(self.router.url, **kwargs)

    def shutdown(self):
        self.router.shutdown()
        for proxy in self.proxies:
            if proxy is not None:
                proxy.kill()
        for worker in self.workers:
            worker.shutdown()

    close = shutdown

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()


def start_cluster(
    index,
    workers=2,
    replicas=1,
    graph=None,
    tmp_path=None,
    proxy=False,
    router_flavor="threaded",
    rpc_timeout=10.0,
    probe_interval=0.0,
    cache_size=256,
    worker_threads=4,
    wal=False,
    **router_kwargs,
):
    """Spin up a full in-process cluster; returns a :class:`Cluster`.

    Read-only mode (``graph=None``) shares *index* across all workers
    -- concurrent reads of one index are safe and cheap.  Writable
    mode (``graph=`` + ``tmp_path=``) gives every worker its own
    index/graph copy (via save/load round-trip and an edge-identical
    graph clone) so ``POST /update`` batches apply independently and
    deterministically converge.

    ``proxy=True`` interposes a :class:`FaultProxy` in front of every
    worker; the router only ever sees the proxy URLs.

    ``wal=True`` (writable mode only) gives each worker its own
    write-ahead-log directory under *tmp_path*, so update batches are
    durable and a restarted worker replays them.
    """
    writable = graph is not None
    if writable and tmp_path is None:
        raise ValueError("writable clusters need tmp_path for copies")
    ranges = [
        (start, None if position == workers - 1 else stop)
        for position, (start, stop) in enumerate(
            shard_ranges(index.num_nodes, workers)
        )
    ]
    seed_path = None
    if writable:
        seed_path = tmp_path / "cluster-seed.adsidx"
        index.save(seed_path)
    flat_workers, flat_proxies, groups = [], [], []
    for position, node_range in enumerate(ranges):
        urls = []
        for replica in range(replicas):
            if writable:
                wpath = tmp_path / f"ix-g{position}r{replica}.adsidx"
                windex = AdsIndex.load(seed_path)
                wgraph = clone_graph(graph)
                wal_dir = (
                    tmp_path / f"wal-g{position}r{replica}"
                    if wal else None
                )
                server = AdsServer(
                    windex, graph=wgraph, index_path=wpath,
                    node_range=node_range, threads=worker_threads,
                    wal_dir=wal_dir,
                )
            else:
                server = AdsServer(
                    index, node_range=node_range, threads=worker_threads
                )
            server.start()
            flat_workers.append(server)
            if proxy:
                relay = FaultProxy(server.host, server.port)
                flat_proxies.append(relay)
                urls.append(relay.url)
            else:
                flat_proxies.append(None)
                urls.append(server.url)
        groups.append((node_range, urls))
    router_cls = (
        AsyncRouterServer if router_flavor == "async" else RouterServer
    )
    router = router_cls(
        index.nodes(),
        groups,
        cache_size=cache_size,
        rpc_timeout=rpc_timeout,
        probe_interval=probe_interval,
        writable=writable,
        **router_kwargs,
    )
    router.start()
    return Cluster(router, flat_workers, flat_proxies)
