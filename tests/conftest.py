"""Shared fixtures: small graphs, hash families, and a fixed-rank family
that lets the paper's worked example drive the public builder API."""

from __future__ import annotations

import pytest

from repro.graph import (
    barabasi_albert_graph,
    figure1_graph,
    figure1_ranks,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
)
from repro.rand.hashing import HashFamily


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "statistical: seeded multi-trial tests asserting the paper's "
        "unbiasedness and CV bounds empirically (select with "
        "-m statistical, skip with -m 'not statistical')",
    )


class FixedRankFamily(HashFamily):
    """A hash family whose index-0 ranks are prescribed per node.

    Tiebreaks and buckets fall back to the hash; used to reproduce
    Example 2.1 exactly through ``build_ads_set``.
    """

    def __init__(self, rank_map, seed: int = 0):
        super().__init__(seed)
        self.rank_map = dict(rank_map)

    def rank(self, item, index: int = 0) -> float:
        if index == 0 and item in self.rank_map:
            return self.rank_map[item]
        return super().rank(item, index)


@pytest.fixture
def family():
    return HashFamily(20_240_614)


@pytest.fixture
def figure1():
    return figure1_graph()


@pytest.fixture
def figure1_family():
    return FixedRankFamily(figure1_ranks(), seed=3)


@pytest.fixture
def small_digraph():
    """120-node sparse random digraph (unweighted)."""
    return gnp_random_graph(120, 0.04, seed=2, directed=True)


@pytest.fixture
def small_weighted():
    """80-node weighted geometric graph (undirected)."""
    return random_geometric_graph(80, 0.25, seed=3)


@pytest.fixture
def ba_graph():
    """300-node preferential-attachment graph."""
    return barabasi_albert_graph(300, 3, seed=5)


@pytest.fixture
def line():
    return path_graph(30)


@pytest.fixture
def grid():
    return grid_graph(6, 6)
