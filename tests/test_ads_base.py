"""Tests for the ADS container classes and their estimator surface."""

import math

import pytest

from repro.ads import build_ads_set
from repro.errors import EstimatorError
from repro.graph import barabasi_albert_graph, gnp_random_graph, path_graph
from repro.graph.properties import (
    closeness_centrality_exact,
    neighborhood_cardinality,
    reachable_set,
)
from repro.rand.hashing import HashFamily
from repro.sketches import BottomKSketch


class TestBottomKADS:
    def test_hip_exact_below_k(self, ba_graph, family):
        ads_set = build_ads_set(ba_graph, 16, family=family)
        for v in list(ba_graph.nodes())[:25]:
            true = neighborhood_cardinality(ba_graph, v, 1.0)
            if true <= 16:
                assert ads_set[v].cardinality_at(1.0) == pytest.approx(true)

    def test_minhash_extraction_matches_direct_sketch(self, family):
        """The MinHash sketch extracted from the ADS at distance d must
        equal the sketch built directly from N_d(v) (Section 2)."""
        graph = gnp_random_graph(100, 0.05, seed=8)
        k = 5
        ads_set = build_ads_set(graph, k, family=family)
        from repro.graph.traversal import bfs_distances

        for v in list(graph.nodes())[:10]:
            dist = bfs_distances(graph, v)
            for d in (1.0, 2.0, 3.0):
                direct = BottomKSketch(k, family)
                direct.update([u for u, du in dist.items() if du <= d])
                assert ads_set[v].minhash_at(d) == direct.entries()

    def test_reachable_count(self, family):
        graph = gnp_random_graph(200, 0.03, seed=3)
        ads_set = build_ads_set(graph, 24, family=family)
        v = list(graph.nodes())[0]
        true = len(reachable_set(graph, v))
        assert ads_set[v].reachable_count() == pytest.approx(true, rel=0.35)

    def test_neighborhood_function_monotone(self, ba_graph, family):
        ads_set = build_ads_set(ba_graph, 8, family=family)
        nf = ads_set[0].neighborhood_function()
        values = [value for _, value in nf]
        assert values == sorted(values)
        distances = [d for d, _ in nf]
        assert distances == sorted(set(distances))

    def test_size_at_counts_entries(self, line, family):
        ads_set = build_ads_set(line, 2, family=family)
        ads = ads_set[0]
        assert ads.size_at(0.0) == 1
        assert ads.size_at(math.inf) == len(ads)

    def test_basic_vs_hip_consistency(self, ba_graph, family):
        ads_set = build_ads_set(ba_graph, 16, family=family)
        v = list(ba_graph.nodes())[3]
        true = neighborhood_cardinality(ba_graph, v, 2.0)
        hip = ads_set[v].cardinality_at(2.0)
        basic = ads_set[v].basic_cardinality_at(2.0)
        assert hip == pytest.approx(true, rel=0.6)
        assert basic == pytest.approx(true, rel=0.6)

    def test_size_cardinality_estimator(self, family):
        graph = path_graph(300, directed=True)
        ads_set = build_ads_set(graph, 4, family=family)
        estimate = ads_set[0].size_cardinality_at(math.inf)
        assert estimate > 10  # wildly noisy, but positive and finite
        assert math.isfinite(estimate)

    def test_q_statistic_and_centrality(self, ba_graph, family):
        ads_set = build_ads_set(ba_graph, 16, family=family)
        v = list(ba_graph.nodes())[0]
        exact = closeness_centrality_exact(ba_graph, v)
        estimate = ads_set[v].centrality()
        assert estimate == pytest.approx(exact, rel=0.5)

    def test_contains_and_nodes(self, line, family):
        ads_set = build_ads_set(line, 2, family=family)
        ads = ads_set[5]
        assert 5 in ads
        assert ads.nodes()[0] == 5

    def test_requires_source_entry(self, family):
        from repro.ads.base import BottomKADS

        with pytest.raises(EstimatorError):
            BottomKADS("s", 2, [], family)


class TestKMinsADS:
    def test_merged_entries_deduplicate(self, small_digraph, family):
        ads_set = build_ads_set(
            small_digraph, 4, family=family, flavor="kmins"
        )
        for v in list(small_digraph.nodes())[:10]:
            merged = ads_set[v].merged_entries()
            nodes = [e.node for e in merged]
            assert len(nodes) == len(set(nodes))
            # raw entries may repeat nodes across permutations
            assert len(ads_set[v].entries) >= len(merged)

    def test_minhash_extraction(self, family):
        graph = gnp_random_graph(80, 0.06, seed=4)
        k = 4
        ads_set = build_ads_set(graph, k, family=family, flavor="kmins")
        from repro.graph.traversal import bfs_distances

        v = list(graph.nodes())[0]
        dist = bfs_distances(graph, v)
        for d in (1.0, 2.0):
            expected = [
                min(
                    (family.rank(u, h) for u, du in dist.items() if du <= d),
                    default=1.0,
                )
                for h in range(k)
            ]
            assert ads_set[v].minhash_at(d) == pytest.approx(expected)

    def test_hip_cardinality_reasonable(self, ba_graph, family):
        ads_set = build_ads_set(ba_graph, 16, family=family, flavor="kmins")
        v = list(ba_graph.nodes())[1]
        true = neighborhood_cardinality(ba_graph, v, 2.0)
        assert ads_set[v].cardinality_at(2.0) == pytest.approx(true, rel=0.6)


class TestKPartitionADS:
    def test_entries_have_buckets(self, small_digraph, family):
        ads_set = build_ads_set(
            small_digraph, 4, family=family, flavor="kpartition"
        )
        for ads in list(ads_set.values())[:10]:
            for e in ads.entries:
                assert e.bucket == family.bucket(e.node, 4)

    def test_minhash_extraction(self, family):
        graph = gnp_random_graph(80, 0.06, seed=4)
        k = 4
        ads_set = build_ads_set(graph, k, family=family, flavor="kpartition")
        from repro.graph.traversal import bfs_distances

        v = list(graph.nodes())[0]
        dist = bfs_distances(graph, v)
        minima, argmin = ads_set[v].minhash_at(2.0)
        for h in range(k):
            members = [
                u
                for u, du in dist.items()
                if du <= 2.0 and family.bucket(u, k) == h
            ]
            if members:
                best = min(members, key=lambda u: family.rank(u, 0))
                assert argmin[h] == best
                assert minima[h] == family.rank(best, 0)
            else:
                assert argmin[h] is None

    def test_hip_cardinality_reasonable(self, ba_graph, family):
        ads_set = build_ads_set(
            ba_graph, 16, family=family, flavor="kpartition"
        )
        v = list(ba_graph.nodes())[2]
        true = neighborhood_cardinality(ba_graph, v, 2.0)
        assert ads_set[v].cardinality_at(2.0) == pytest.approx(true, rel=0.6)


class TestUnbiasednessAcrossSeeds:
    @pytest.mark.parametrize("flavor", ["bottomk", "kmins", "kpartition"])
    def test_hip_mean_tracks_truth(self, flavor):
        graph = barabasi_albert_graph(150, 3, seed=9)
        v = 17
        true = neighborhood_cardinality(graph, v, 2.0)
        estimates = []
        for seed in range(40):
            ads_set = build_ads_set(
                graph, 8, family=HashFamily(seed), flavor=flavor
            )
            estimates.append(ads_set[v].cardinality_at(2.0))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(true, rel=0.12)
