"""Cross-validation of the three ADS builders (Section 3).

The strongest correctness statement in the library: PRUNEDDIJKSTRA, DP and
LOCALUPDATES implement the same mathematical object, so their outputs must
be bit-identical -- on directed and undirected, weighted and unweighted
graphs, for all three flavors.  We also check the defining membership
condition (Equation 4) against a brute-force oracle.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import BuildStats, build_ads_set
from repro.errors import GraphError, ParameterError
from repro.graph import (
    Graph,
    gnp_random_graph,
    path_graph,
)
from repro.graph.traversal import dijkstra_order
from repro.rand.hashing import HashFamily


def canon(ads):
    return [
        (e.node, round(e.distance, 9), round(e.rank, 12)) for e in ads.entries
    ]


@pytest.mark.parametrize("flavor", ["bottomk", "kmins", "kpartition"])
class TestBuilderEquivalence:
    def test_unweighted_digraph(self, small_digraph, family, flavor):
        results = {
            method: build_ads_set(
                small_digraph, 4, family=family, flavor=flavor, method=method
            )
            for method in ("pruned_dijkstra", "dp", "local_updates")
        }
        for v in small_digraph.nodes():
            reference = canon(results["pruned_dijkstra"][v])
            assert canon(results["dp"][v]) == reference
            assert canon(results["local_updates"][v]) == reference

    def test_weighted_graph(self, small_weighted, family, flavor):
        a = build_ads_set(
            small_weighted, 3, family=family, flavor=flavor,
            method="pruned_dijkstra",
        )
        b = build_ads_set(
            small_weighted, 3, family=family, flavor=flavor,
            method="local_updates",
        )
        for v in small_weighted.nodes():
            assert canon(a[v]) == canon(b[v])


class TestDefinition:
    def test_membership_condition_bruteforce(self, family):
        """Equation 4: j in ADS(i) iff r(j) < kth rank among strictly
        closer nodes (closer in the tie-broken total order)."""
        graph = gnp_random_graph(60, 0.08, seed=21, directed=True)
        k = 3
        ads_set = build_ads_set(graph, k, family=family)
        for i in list(graph.nodes())[:15]:
            scan = list(
                dijkstra_order(graph, i, tiebreak=family.tiebreak)
            )
            members = {e.node for e in ads_set[i].entries}
            closer_ranks = []
            for node, _ in scan:
                r = family.rank(node, 0)
                threshold = (
                    sorted(closer_ranks)[k - 1]
                    if len(closer_ranks) >= k
                    else 1.0
                )
                assert (node in members) == (r < threshold), node
                closer_ranks.append(r)

    def test_every_ads_starts_with_source(self, small_digraph, family):
        ads_set = build_ads_set(small_digraph, 4, family=family)
        for v, ads in ads_set.items():
            assert ads.entries[0].node == v
            assert ads.entries[0].distance == 0.0

    def test_entry_count_near_lemma22(self, family):
        """Lemma 2.2: E|ADS| = k + k(H_n - H_k) on a graph with unique
        distances (a path gives every node a distinct distance)."""
        from repro.estimators.bounds import expected_ads_size_bottomk

        n, k = 400, 4
        graph = path_graph(n, directed=True)
        sizes = []
        for seed in range(30):
            ads_set = build_ads_set(graph, k, family=HashFamily(seed))
            sizes.append(len(ads_set[0]))
        mean = sum(sizes) / len(sizes)
        assert mean == pytest.approx(expected_ads_size_bottomk(n, k), rel=0.15)

    def test_directions(self, family):
        graph = Graph(directed=True)
        graph.add_edge("a", "b")
        forward = build_ads_set(graph, 2, family=family, direction="forward")
        backward = build_ads_set(graph, 2, family=family, direction="backward")
        assert "b" in [e.node for e in forward["a"].entries]
        assert "a" not in [e.node for e in forward["b"].entries]
        assert "a" in [e.node for e in backward["b"].entries]


class TestStatsAndValidation:
    def test_stats_populated(self, small_digraph, family):
        stats = BuildStats()
        build_ads_set(small_digraph, 4, family=family, stats=stats)
        assert stats.insertions > small_digraph.num_nodes
        assert stats.relaxations > 0

    def test_relaxation_bound(self, family):
        """Section 3: expected total relaxations O(k m log n)."""
        graph = gnp_random_graph(150, 0.05, seed=2)
        k = 4
        stats = BuildStats()
        build_ads_set(
            graph, k, family=family, method="pruned_dijkstra", stats=stats
        )
        bound = 8 * k * graph.num_edges * 2 * math.log(graph.num_nodes)
        assert stats.relaxations < bound

    def test_dp_rejects_weighted(self, small_weighted, family):
        with pytest.raises(GraphError):
            build_ads_set(small_weighted, 2, family=family, method="dp")

    def test_invalid_arguments(self, small_digraph, family):
        with pytest.raises(ParameterError):
            build_ads_set(small_digraph, 2, family=family, flavor="nope")
        with pytest.raises(ParameterError):
            build_ads_set(small_digraph, 2, family=family, method="nope")
        with pytest.raises(ParameterError):
            build_ads_set(small_digraph, 2, family=family, direction="up")
        with pytest.raises(ParameterError):
            build_ads_set(
                small_digraph, 2, family=family, epsilon=0.1, method="dp"
            )

    def test_auto_method_selection(self, small_digraph, small_weighted, family):
        # auto must produce the same sketches as an explicit method
        auto = build_ads_set(small_digraph, 3, family=family, method="auto")
        explicit = build_ads_set(small_digraph, 3, family=family, method="dp")
        for v in small_digraph.nodes():
            assert canon(auto[v]) == canon(explicit[v])
        auto_w = build_ads_set(small_weighted, 3, family=family, method="auto")
        explicit_w = build_ads_set(
            small_weighted, 3, family=family, method="pruned_dijkstra"
        )
        for v in small_weighted.nodes():
            assert canon(auto_w[v]) == canon(explicit_w[v])


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=6),
    directed=st.booleans(),
)
def test_builder_equivalence_property(seed, k, directed):
    """Random graphs, random k: the three builders always agree."""
    graph = gnp_random_graph(35, 0.12, seed=seed, directed=directed)
    family = HashFamily(seed + 1)
    reference = build_ads_set(
        graph, k, family=family, method="pruned_dijkstra"
    )
    for method in ("dp", "local_updates"):
        other = build_ads_set(graph, k, family=family, method=method)
        for v in graph.nodes():
            assert canon(other[v]) == canon(reference[v])
