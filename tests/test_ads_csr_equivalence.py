"""CSR-vs-legacy backend equivalence: the load-bearing refactor contract.

The CSR builder cores must produce sketches *identical* to the legacy
adjacency-dict cores -- same entries (node, distance, rank, tiebreak,
bucket/permutation), hence the same HIP weights and the same estimates --
for every graph kind, flavor, and exact method.  Property tests sweep
random directed/undirected, weighted/unweighted graphs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import BuildStats, build_ads_set
from repro.errors import ParameterError
from repro.graph import (
    barabasi_albert_graph,
    gnp_random_graph,
    random_geometric_graph,
)
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")


def _directed_weighted_graph(seed, n=35, p=0.1):
    """A directed graph with deterministic pseudo-random edge weights."""
    import random

    rng = random.Random(seed)
    base = gnp_random_graph(n, p, seed=seed, directed=True)
    from repro.graph import Graph

    graph = Graph(directed=True)
    for u in base.nodes():
        graph.add_node(u)
    for u, v, _ in base.edges():
        graph.add_edge(u, v, rng.uniform(0.1, 5.0))
    return graph


def entry_tuples(ads):
    return [
        (e.node, e.distance, e.rank, e.tiebreak, e.bucket, e.permutation)
        for e in ads.entries
    ]


def assert_identical_sets(legacy_set, csr_set):
    assert set(legacy_set) == set(csr_set)
    for node in legacy_set:
        legacy, csr = legacy_set[node], csr_set[node]
        assert type(legacy) is type(csr)
        assert entry_tuples(legacy) == entry_tuples(csr)
        assert legacy.hip_weights() == csr.hip_weights()


class TestBackendEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
        flavor=st.sampled_from(FLAVORS),
        directed=st.booleans(),
    )
    def test_unweighted_random_graphs(self, seed, k, flavor, directed):
        graph = gnp_random_graph(45, 0.08, seed=seed, directed=directed)
        family = HashFamily(seed + 1)
        for method in ("pruned_dijkstra", "dp"):
            legacy = build_ads_set(
                graph, k, family=family, flavor=flavor, method=method,
                backend="legacy",
            )
            csr = build_ads_set(
                graph, k, family=family, flavor=flavor, method=method,
                backend="csr",
            )
            assert_identical_sets(legacy, csr)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
        flavor=st.sampled_from(FLAVORS),
    )
    def test_weighted_random_graphs(self, seed, k, flavor):
        graph = random_geometric_graph(40, 0.25, seed=seed)
        family = HashFamily(seed + 1)
        legacy = build_ads_set(
            graph, k, family=family, flavor=flavor,
            method="pruned_dijkstra", backend="legacy",
        )
        csr = build_ads_set(
            graph, k, family=family, flavor=flavor,
            method="pruned_dijkstra", backend="csr",
        )
        assert_identical_sets(legacy, csr)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
        flavor=st.sampled_from(FLAVORS),
    )
    def test_directed_weighted_random_graphs(self, seed, k, flavor):
        """Exercises the counting-sort transpose weight column, which
        only runs for directed weighted graphs."""
        graph = _directed_weighted_graph(seed)
        family = HashFamily(seed + 1)
        legacy = build_ads_set(
            graph, k, family=family, flavor=flavor,
            method="pruned_dijkstra", backend="legacy",
        )
        csr = build_ads_set(
            graph, k, family=family, flavor=flavor,
            method="pruned_dijkstra", backend="csr",
        )
        assert_identical_sets(legacy, csr)

    def test_backward_direction(self, family):
        graph = gnp_random_graph(40, 0.08, seed=9, directed=True)
        legacy = build_ads_set(
            graph, 4, family=family, direction="backward", backend="legacy"
        )
        csr = build_ads_set(
            graph, 4, family=family, direction="backward", backend="csr"
        )
        assert_identical_sets(legacy, csr)

    def test_estimates_agree_end_to_end(self, family):
        graph = barabasi_albert_graph(60, 2, seed=3)
        legacy = build_ads_set(graph, 5, family=family, backend="legacy")
        csr = build_ads_set(graph, 5, family=family, backend="csr")
        for node in graph.nodes()[:15]:
            assert legacy[node].cardinality_at(2.0) == csr[node].cardinality_at(2.0)
            assert legacy[node].centrality() == csr[node].centrality()
            assert (
                legacy[node].neighborhood_function()
                == csr[node].neighborhood_function()
            )


class TestDispatch:
    def test_csr_input_selects_csr_automatically(self, family):
        graph = barabasi_albert_graph(40, 2, seed=4)
        via_csr_input = build_ads_set(graph.to_csr(), 4, family=family)
        via_legacy = build_ads_set(graph, 4, family=family, backend="legacy")
        assert_identical_sets(via_legacy, via_csr_input)

    def test_csr_input_falls_back_for_local_updates(self, family):
        graph = barabasi_albert_graph(30, 2, seed=5)
        fallback = build_ads_set(
            graph.to_csr(), 4, family=family, method="local_updates"
        )
        reference = build_ads_set(
            graph, 4, family=family, method="local_updates", backend="legacy"
        )
        assert_identical_sets(reference, fallback)

    def test_csr_input_falls_back_for_epsilon(self, family):
        graph = random_geometric_graph(25, 0.3, seed=6)
        stats = BuildStats()
        approx = build_ads_set(
            graph.to_csr(), 4, family=family, epsilon=0.5, stats=stats
        )
        assert len(approx) == graph.num_nodes
        assert stats.insertions > 0

    def test_explicit_csr_backend_rejects_local_updates(self, family):
        graph = barabasi_albert_graph(20, 2, seed=7)
        with pytest.raises(ParameterError):
            build_ads_set(
                graph, 4, family=family, method="local_updates", backend="csr"
            )

    def test_explicit_csr_backend_rejects_node_weights(self, family):
        graph = barabasi_albert_graph(20, 2, seed=8)
        with pytest.raises(ParameterError):
            build_ads_set(
                graph, 4, family=family, node_weights=lambda _v: 1.0,
                backend="csr",
            )

    def test_unknown_backend_rejected(self, family):
        graph = barabasi_albert_graph(20, 2, seed=9)
        with pytest.raises(ParameterError):
            build_ads_set(graph, 4, family=family, backend="numpy")

    def test_stats_populated_on_csr_path(self, family):
        graph = barabasi_albert_graph(40, 2, seed=10)
        stats = BuildStats()
        build_ads_set(graph, 4, family=family, backend="csr", stats=stats)
        assert stats.insertions > graph.num_nodes
        assert stats.relaxations > 0
