"""Incremental ADS maintenance (repro.ads.dynamic + AdsIndex.apply_edges).

The acceptance bar is *bit-exactness*: for random graphs and random
insertion streams, applying edges incrementally and then querying must
equal rebuilding the index from the updated graph -- columns included,
for both single-file and sharded persisted layouts.  Alongside the
property tests live the CSRGraph edge-buffer semantics and the dynamic
bookkeeping (delta log, compaction, read-only rejection).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import AdsIndex
from repro.errors import EstimatorError, GraphError, ParameterError
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

FLAVORS = ["bottomk", "kmins", "kpartition"]


def _random_case(seed, weighted=None, directed=None):
    """A random base graph plus a random insertion stream."""
    rng = random.Random(seed)
    n = rng.randint(2, 14)
    if directed is None:
        directed = rng.random() < 0.5
    if weighted is None:
        weighted = rng.random() < 0.5

    def weight():
        return round(rng.uniform(0.5, 3.0), 2) if weighted else 1.0

    base = []
    for _ in range(rng.randint(0, 2 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            base.append((u, v, weight()))
    hi = n + (2 if rng.random() < 0.4 else 0)  # sometimes new nodes
    batches = []
    for _ in range(rng.randint(1, 3)):
        batch = []
        for _ in range(rng.randint(1, 5)):
            u, v = rng.randrange(hi), rng.randrange(hi)
            if u != v:
                batch.append((u, v, weight()))
        batches.append(batch)
    return n, directed, base, batches


def _columns(index):
    return (
        list(index._offsets), list(index._node), list(index._dist),
        list(index._rank), list(index._tiebreak), list(index._aux),
        list(index._hip), index.nodes(),
    )


def _rebuilt(graph, k, family, flavor):
    """From-scratch index on the updated graph, id order pinned."""
    fresh = CSRGraph.from_edges(
        list(graph.edges()), directed=graph.directed, nodes=graph.nodes()
    )
    return AdsIndex.build(fresh, k, family=family, flavor=flavor)


class TestBitExactness:
    """apply_edges == rebuild, column for column."""

    @pytest.mark.parametrize("flavor", FLAVORS)
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_apply_matches_rebuild(self, flavor, seed, k):
        n, directed, base, batches = _random_case(seed)
        graph = CSRGraph.from_edges(base, directed=directed, nodes=range(n))
        family = HashFamily(seed)
        index = AdsIndex.build(graph, k, family=family, flavor=flavor)
        for batch in batches:
            index.apply_edges(graph, batch)
        rebuilt = _rebuilt(graph, k, family, flavor)
        assert _columns(index) == _columns(rebuilt)

    @pytest.mark.parametrize("flavor", FLAVORS)
    def test_queries_match_rebuild(self, flavor):
        n, directed, base, batches = _random_case(7, weighted=False)
        graph = CSRGraph.from_edges(base, directed=directed, nodes=range(n))
        family = HashFamily(99)
        index = AdsIndex.build(graph, 3, family=family, flavor=flavor)
        for batch in batches:
            index.apply_edges(graph, batch)
        rebuilt = _rebuilt(graph, 3, family, flavor)
        assert index.cardinality_at(2.0) == rebuilt.cardinality_at(2.0)
        assert index.neighborhood_function() == \
            rebuilt.neighborhood_function()
        assert index.closeness_centrality(classic=True) == \
            rebuilt.closeness_centrality(classic=True)

    def test_new_nodes_are_queryable(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 4)
        result = index.apply_edges(graph, [(2, "new-a"), ("new-a", "new-b")])
        assert result.new_nodes == 2
        assert "new-a" in index and "new-b" in index
        assert index.node_cardinality_at("new-b", 1.0) == 2.0
        assert index["new-a"].cardinality_at(1.0) == 3.0

    def test_weight_decrease_repropagates(self):
        graph = CSRGraph.from_edges(
            [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)], directed=True,
            nodes=range(3),
        )
        family = HashFamily(3)
        index = AdsIndex.build(graph, 4, family=family)
        index.apply_edges(graph, [(0, 2, 1.0)])
        rebuilt = _rebuilt(graph, 4, family, "bottomk")
        assert _columns(index) == _columns(rebuilt)
        assert index.node_cardinality_at(0, 1.0) == 2.0


class TestPersistedLayouts:
    """Incremental apply + compact == rebuild, on disk, both layouts."""

    @pytest.mark.parametrize("shards", [None, 1, 3])
    def test_compact_roundtrip(self, tmp_path, shards):
        n, directed, base, batches = _random_case(11)
        graph = CSRGraph.from_edges(base, directed=directed, nodes=range(n))
        family = HashFamily(4)
        index = AdsIndex.build(graph, 3, family=family)
        destination = tmp_path / ("layout" if shards else "single.adsidx")
        index.save(destination, shards=shards)
        for batch in batches:
            index.apply_edges(graph, batch)
        info = index.compact(destination)
        assert info["flushed_batches"] == len(batches)
        assert index.delta_log == [] and index._dirty_ids == set()
        reloaded = AdsIndex.load(destination)
        assert _columns(reloaded) == _columns(
            _rebuilt(graph, 3, family, "bottomk")
        )

    def test_compact_rewrites_only_dirty_shards(self, tmp_path):
        graph = CSRGraph.from_edges(
            [(i, i + 1) for i in range(39)], nodes=range(40)
        )
        index = AdsIndex.build(graph, 2)
        layout = tmp_path / "layout"
        index.save(layout, shards=8)
        stamps = {
            p.name: p.stat().st_mtime_ns for p in layout.glob("*.adsshd")
        }
        # An edge between two far-apart leaves only touches sketches in
        # their neighbourhood, not all 8 shards.
        index.apply_edges(graph, [(0, 2)])
        info = index.compact(layout)
        assert not info["full_rewrite"]
        assert 0 < len(info["rewritten_shards"]) < 8
        rewritten = {
            f"shard-{i:05d}.adsshd" for i in info["rewritten_shards"]
        }
        for name, stamp in stamps.items():
            changed = (layout / name).stat().st_mtime_ns != stamp
            assert changed == (name in rewritten)
        assert _columns(AdsIndex.load(layout)) == _columns(index)

    def test_compact_with_new_nodes_falls_back_to_full_rewrite(
        self, tmp_path
    ):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 2)
        layout = tmp_path / "layout"
        index.save(layout, shards=2)
        index.apply_edges(graph, [(2, 3)])
        info = index.compact(layout)
        assert info["full_rewrite"] and info["total_shards"] == 2
        assert AdsIndex.load(layout).nodes() == index.nodes()

    def test_compact_fresh_paths(self, tmp_path):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 2)
        index.apply_edges(graph, [(0, 2)])
        single = tmp_path / "fresh.adsidx"
        assert index.compact(single)["layout"] == "single"
        sharded = tmp_path / "fresh-layout"
        assert index.compact(sharded, shards=2)["layout"] == "sharded"
        assert _columns(AdsIndex.load(single)) == _columns(
            AdsIndex.load(sharded)
        )


class TestGuards:
    def test_mmap_backed_index_rejects_updates(self, tmp_path):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 2)
        path = tmp_path / "ix.adsidx"
        index.save(path)
        mapped = AdsIndex.load(path, mmap=True)
        with pytest.raises(EstimatorError, match="read-only"):
            mapped.apply_edges(graph, [(0, 2)])
        with pytest.raises(EstimatorError, match="read-only"):
            mapped.compact(tmp_path / "other.adsidx")

    def test_graph_label_mismatch_is_rejected(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 2)
        other = CSRGraph.from_edges([(5, 6)])
        with pytest.raises(EstimatorError, match="mismatch"):
            index.apply_edges(other, [(5, 7)])

    def test_legacy_graph_is_rejected(self):
        graph = CSRGraph.from_edges([(0, 1)])
        index = AdsIndex.build(graph, 2)
        with pytest.raises(ParameterError, match="CSRGraph"):
            index.apply_edges(graph.to_graph(), [(0, 2)])

    def test_noop_batch(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        index = AdsIndex.build(graph, 2)
        before = _columns(index)
        result = index.apply_edges(graph, [(0, 1), (1, 2, 7.0)])
        assert result.applied_arcs == 0 and result.dirty_nodes == 0
        assert _columns(index) == before
        assert len(index.delta_log) == 1  # no-ops are still logged

    def test_delta_log_accumulates(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)], nodes=range(4))
        index = AdsIndex.build(graph, 2)
        index.apply_edges(graph, [(0, 2)])
        index.apply_edges(graph, [(0, 3)])
        assert [entry["batch"] for entry in index.delta_log] == [1, 2]
        assert all(entry["applied_arcs"] == 2 for entry in index.delta_log)


class TestCSREdgeBuffer:
    def test_overlay_queries_match_consolidated(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3))
        arcs = graph.add_edges(
            [(2, 3), (0, 2, 0.5)], auto_consolidate=False
        )
        assert graph.pending_edges == 2
        assert {(u, v) for u, v, _ in arcs} == {
            (2, 3), (3, 2), (0, 2), (2, 0)
        }
        overlay = {
            "out0": graph.out_neighbors(0),
            "in2": graph.in_neighbors(2),
            "edges": sorted(graph.edges()),
            "m": graph.num_edges,
            "w": graph.is_weighted(),
            "deg": graph.out_degree(2),
            "has": graph.has_edge(3, 2),
            "weight": graph.edge_weight(0, 2),
        }
        graph.consolidate()
        assert graph.pending_edges == 0
        consolidated = {
            "out0": graph.out_neighbors(0),
            "in2": graph.in_neighbors(2),
            "edges": sorted(graph.edges()),
            "m": graph.num_edges,
            "w": graph.is_weighted(),
            "deg": graph.out_degree(2),
            "has": graph.has_edge(3, 2),
            "weight": graph.edge_weight(0, 2),
        }
        assert overlay == consolidated

    def test_array_accessors_consolidate(self):
        graph = CSRGraph.from_edges([(0, 1)], nodes=range(2))
        graph.add_edges([(1, 2)], auto_consolidate=False)
        indptr, indices, _ = graph.forward_arrays()
        assert graph.pending_edges == 0
        assert len(indptr) == 4 and len(indices) == 4

    def test_transpose_view_sees_buffered_arcs(self):
        graph = CSRGraph.from_edges([(0, 1)], directed=True, nodes=range(2))
        view = graph.transpose()
        graph.add_edges([(1, 2)], auto_consolidate=False)
        assert view.num_edges == 2
        assert view.out_neighbors(2) == [(1, 1.0)]  # reversed orientation
        graph.consolidate()
        assert view.out_neighbors(2) == [(1, 1.0)]
        assert view.pending_edges == 0

    def test_auto_consolidation_threshold(self):
        graph = CSRGraph.from_edges([(0, 1)], nodes=range(2))
        batch = [(i, i + 1) for i in range(1, 70)]
        graph.add_edges(batch)  # > max(64, m // 8) pending: re-CSRs
        assert graph.pending_edges == 0
        assert graph.num_edges == 70

    def test_add_edges_validation(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError, match="self-loop"):
            graph.add_edges([(2, 2)])
        with pytest.raises(GraphError, match="positive"):
            graph.add_edges([(0, 3, -1.0)])
        with pytest.raises(GraphError, match="2 or 3 fields"):
            graph.add_edges([(0,)])

    def test_duplicate_and_heavier_arrivals_are_noops(self):
        graph = CSRGraph.from_edges([(0, 1, 2.0)], directed=True)
        assert graph.add_edges([(0, 1, 2.0), (0, 1, 9.0)]) == []
        assert graph.num_edges == 1
        arcs = graph.add_edges([(0, 1, 0.5)], auto_consolidate=False)
        assert arcs == [(0, 1, 0.5)]
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 0.5
