"""Small-surface tests: entry ordering, build stats, weighted-graph
builder equivalence, and exponential-rank estimation plumbing."""


import pytest

from repro.ads import BuildStats, build_ads_set
from repro.ads.entry import AdsEntry
from repro.graph import random_geometric_graph
from repro.rand.hashing import HashFamily
from repro.rand.ranks import ExponentialRanks
from repro.sketches import BottomKSketch


class TestAdsEntry:
    def test_ordering_by_distance_then_tiebreak(self):
        a = AdsEntry(node="a", distance=1.0, rank=0.9, tiebreak=5)
        b = AdsEntry(node="b", distance=1.0, rank=0.1, tiebreak=9)
        c = AdsEntry(node="c", distance=0.5, rank=0.5, tiebreak=99)
        assert sorted([b, a, c]) == [c, a, b]

    def test_key_property(self):
        e = AdsEntry(node="x", distance=2.0, rank=0.3, tiebreak=7)
        assert e.key == (2.0, 7)

    def test_frozen(self):
        e = AdsEntry(node="x", distance=2.0, rank=0.3)
        with pytest.raises(Exception):
            e.distance = 3.0

    def test_optional_fields_default_none(self):
        e = AdsEntry(node="x", distance=0.0, rank=0.1)
        assert e.bucket is None
        assert e.permutation is None


class TestBuildStats:
    def test_repr_contains_counters(self):
        stats = BuildStats()
        stats.relaxations = 7
        text = repr(stats)
        assert "relaxations=7" in text
        assert "evictions=0" in text

    def test_local_updates_reports_evictions_on_weighted(self):
        graph = random_geometric_graph(50, 0.35, seed=4)
        stats = BuildStats()
        build_ads_set(
            graph, 4, family=HashFamily(1), method="local_updates",
            stats=stats,
        )
        # weighted graphs revise distances, so some churn must occur
        assert stats.evictions > 0
        assert stats.insertions > stats.evictions


class TestWeightedBuilderEquivalence:
    def test_weighted_node_weights_pd_equals_lu(self):
        """Section 9 ranks flow through both builders identically."""
        graph = random_geometric_graph(40, 0.35, seed=6)
        beta = lambda v: 1.0 + (v % 4)
        family = HashFamily(8)
        a = build_ads_set(
            graph, 3, family=family, node_weights=beta,
            method="pruned_dijkstra",
        )
        b = build_ads_set(
            graph, 3, family=family, node_weights=beta,
            method="local_updates",
        )
        for v in graph.nodes():
            assert [(e.node, e.distance) for e in a[v].entries] == [
                (e.node, e.distance) for e in b[v].entries
            ]
            assert a[v].weighted_cardinality_at(0.5) == pytest.approx(
                b[v].weighted_cardinality_at(0.5)
            )


class TestExponentialRankSketch:
    def test_bottomk_with_exponential_ranks_estimates(self):
        """The basic estimator handles sup=inf rank ranges (Section 9):
        cardinality from a sketch built on Exp(1) ranks."""
        import statistics

        n = 2000
        values = []
        for seed in range(60):
            family = HashFamily(seed)
            sketch = BottomKSketch(
                16, family, ranks=ExponentialRanks(family)
            )
            sketch.update(range(n))
            values.append(sketch.cardinality())
        assert statistics.mean(values) == pytest.approx(n, rel=0.1)

    def test_update_probability_unsupported_for_exponential(self):
        family = HashFamily(0)
        sketch = BottomKSketch(4, family, ranks=ExponentialRanks(family))
        sketch.update(range(10))
        with pytest.raises(NotImplementedError):
            sketch.update_probability()
