"""AdsIndex: flat-array storage, batch queries, persistence.

Every batch estimate must agree with the per-node ``BaseADS`` value (the
index holds the same entries and the same HIP weights, so the floats are
bit-identical), and a save/load roundtrip must preserve every query.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import AdsIndex, BuildStats, build_ads_set
from repro.centrality import all_closeness_centralities, top_k_central_nodes
from repro.centrality.neighborhood import graph_neighborhood_function
from repro.errors import EstimatorError, ParameterError
from repro.estimators.statistics import harmonic_kernel
from repro.graph import (
    barabasi_albert_graph,
    gnp_random_graph,
    random_geometric_graph,
)
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")


@pytest.fixture(params=FLAVORS)
def flavor(request):
    return request.param


@pytest.fixture
def graph():
    return barabasi_albert_graph(70, 2, seed=11)


@pytest.fixture
def index(graph, family, flavor):
    return AdsIndex.build(graph, 4, family=family, flavor=flavor)


@pytest.fixture
def ads_set(graph, family, flavor):
    return build_ads_set(graph, 4, family=family, flavor=flavor, backend="legacy")


class TestBatchQueries:
    def test_cardinality_matches_per_node(self, index, ads_set):
        for d in (1.0, 3.0, math.inf):
            batch = index.cardinality_at(d)
            for node, ads in ads_set.items():
                assert batch[node] == ads.cardinality_at(d)

    def test_single_node_cardinality(self, index, ads_set):
        for node in list(ads_set)[:10]:
            assert index.node_cardinality_at(node, 2.0) == ads_set[
                node
            ].cardinality_at(2.0)

    def test_reachable_counts(self, index, ads_set):
        counts = index.reachable_counts()
        for node, ads in ads_set.items():
            assert counts[node] == ads.reachable_count()

    def test_neighborhood_function_matches_graph_level(self, index, ads_set):
        assert index.neighborhood_function() == graph_neighborhood_function(
            ads_set
        )

    def test_node_neighborhood_function(self, index, ads_set):
        for node in list(ads_set)[:10]:
            assert (
                index.node_neighborhood_function(node)
                == ads_set[node].neighborhood_function()
            )

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"classic": True}, {"alpha": harmonic_kernel()}],
        ids=["distsum", "classic", "harmonic"],
    )
    def test_closeness_matches_per_node(self, index, ads_set, kwargs):
        assert index.closeness_centrality(**kwargs) == all_closeness_centralities(
            ads_set, **kwargs
        )

    def test_node_closeness_matches_batch(self, index, ads_set):
        batch = index.closeness_centrality(classic=True)
        for node in list(ads_set)[:10]:
            assert index.node_closeness_centrality(node, classic=True) == batch[node]
        harmonic = index.closeness_centrality(alpha=harmonic_kernel())
        node = list(ads_set)[0]
        assert (
            index.node_closeness_centrality(node, alpha=harmonic_kernel())
            == harmonic[node]
        )

    def test_top_central_matches_helper(self, index, ads_set):
        expected = top_k_central_nodes(
            all_closeness_centralities(ads_set, classic=True), 7
        )
        assert index.top_central(7, classic=True) == expected

    def test_classic_rejects_kernels(self, index):
        with pytest.raises(EstimatorError):
            index.closeness_centrality(classic=True, alpha=harmonic_kernel())

    def test_unknown_node_raises(self, index):
        with pytest.raises(EstimatorError):
            index.node_cardinality_at("not-a-node")


class TestMaterialisation:
    def test_lazy_ads_identical_to_legacy(self, index, ads_set):
        for node in list(ads_set)[:10]:
            legacy, lazy = ads_set[node], index[node]
            assert type(legacy) is type(lazy)
            assert [
                (e.node, e.distance, e.rank, e.tiebreak, e.bucket, e.permutation)
                for e in legacy.entries
            ] == [
                (e.node, e.distance, e.rank, e.tiebreak, e.bucket, e.permutation)
                for e in lazy.entries
            ]
            assert legacy.hip_weights() == lazy.hip_weights()

    def test_materialisation_is_cached(self, index):
        node = index.nodes()[0]
        assert index[node] is index[node]

    def test_to_ads_set_covers_every_node(self, index, graph):
        materialised = index.to_ads_set()
        assert set(materialised) == set(graph.nodes())

    def test_get_returns_none_for_unknown(self, index):
        assert index.get("missing") is None


class TestPersistence:
    def test_roundtrip_preserves_queries(self, index, tmp_path):
        path = tmp_path / "sketches.adsidx"
        index.save(path)
        loaded = AdsIndex.load(path)
        assert loaded.flavor == index.flavor
        assert loaded.k == index.k
        assert loaded.nodes() == index.nodes()
        assert loaded.cardinality_at(2.0) == index.cardinality_at(2.0)
        assert loaded.neighborhood_function() == index.neighborhood_function()
        assert loaded.closeness_centrality(classic=True) == index.closeness_centrality(
            classic=True
        )
        node = index.nodes()[3]
        assert [
            (e.node, e.distance, e.rank, e.tiebreak)
            for e in loaded[node].entries
        ] == [
            (e.node, e.distance, e.rank, e.tiebreak)
            for e in index[node].entries
        ]

    def test_rejects_non_index_files(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(EstimatorError):
            AdsIndex.load(path)

    def test_rejects_corrupt_headers_and_columns(self, index, tmp_path):
        path = tmp_path / "good.adsidx"
        index.save(path)
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:16], "little")
        bogus = dict(json.loads(data[16:16 + header_len]), flavor="bogus")
        bogus_bytes = json.dumps(bogus).encode()
        cases = {
            "huge_header_len": data[:8] + (1 << 40).to_bytes(8, "little")
            + data[16:],
            "garbage_header": data[:16] + b"\xff" * 32 + data[48:],
            "truncated": data[: len(data) // 2],
            "bogus_flavor": data[:8]
            + len(bogus_bytes).to_bytes(8, "little")
            + bogus_bytes
            + data[16 + header_len:],
        }
        for name, payload in cases.items():
            bad = tmp_path / f"{name}.adsidx"
            bad.write_bytes(payload)
            with pytest.raises(EstimatorError):
                AdsIndex.load(bad)

    def test_rejects_out_of_range_node_ids(self, index, tmp_path):
        import struct

        path = tmp_path / "flip.adsidx"
        index.save(path)
        data = bytearray(path.read_bytes())
        # node column starts right after magic+len+header+offsets
        header_len = int.from_bytes(data[8:16], "little")
        node_start = 16 + header_len + 8 * (index.num_nodes + 1)
        struct.pack_into("<q", data, node_start, -1)
        path.write_bytes(bytes(data))
        with pytest.raises(EstimatorError):
            AdsIndex.load(path)

    def test_rejects_unserialisable_labels(self, family, tmp_path):
        from repro.graph import Graph

        graph = Graph()
        graph.add_edge(("tuple", "label"), ("other", "label"))
        index = AdsIndex.build(graph, 2, family=family)
        with pytest.raises(EstimatorError):
            index.save(tmp_path / "bad.adsidx")


class TestBuild:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        k=st.integers(min_value=1, max_value=5),
        flavor=st.sampled_from(FLAVORS),
    )
    def test_random_graphs_batch_equals_per_node(self, seed, k, flavor):
        graph = gnp_random_graph(35, 0.1, seed=seed, directed=seed % 2 == 0)
        family = HashFamily(seed)
        index = AdsIndex.build(graph, k, family=family, flavor=flavor)
        reference = build_ads_set(
            graph, k, family=family, flavor=flavor, backend="legacy"
        )
        batch = index.cardinality_at(2.0)
        for node, ads in reference.items():
            assert batch[node] == ads.cardinality_at(2.0)

    def test_weighted_graph(self, family):
        graph = random_geometric_graph(30, 0.3, seed=12)
        index = AdsIndex.build(graph, 3, family=family)
        reference = build_ads_set(graph, 3, family=family, backend="legacy")
        assert index.cardinality_at(0.2) == {
            node: ads.cardinality_at(0.2) for node, ads in reference.items()
        }

    def test_backward_direction(self, family):
        graph = gnp_random_graph(30, 0.1, seed=13, directed=True)
        index = AdsIndex.build(graph, 3, family=family, direction="backward")
        reference = build_ads_set(
            graph, 3, family=family, direction="backward", backend="legacy"
        )
        counts = index.reachable_counts()
        for node, ads in reference.items():
            assert counts[node] == ads.reachable_count()

    def test_stats_and_metadata(self, graph, family):
        stats = BuildStats()
        index = AdsIndex.build(graph, 4, family=family, stats=stats)
        assert stats.insertions == index.num_entries
        assert index.num_nodes == graph.num_nodes
        assert len(index) == graph.num_nodes
        assert graph.nodes()[0] in index
        assert "AdsIndex" in repr(index)

    def test_parameter_validation(self, graph, family):
        with pytest.raises(ParameterError):
            AdsIndex.build(graph, 4, family=family, flavor="nope")
        with pytest.raises(ParameterError):
            AdsIndex.build(graph, 4, family=family, direction="sideways")
        with pytest.raises(ParameterError):
            AdsIndex.build(graph, 4, family=family, method="local_updates")
