"""mmap-vs-eager load equivalence for ``AdsIndex``.

``AdsIndex.load(path, mmap=True)`` must be an invisible substitution:
every query returns bit-identical floats under both load modes, for the
single-file and the sharded on-disk layouts, in every flavor.  The lazy
side is behavioural: a sharded mmap load must not touch a shard file
until a query lands in its node range.
"""

import math
import os

import pytest

from repro.ads import AdsIndex
from repro.ads.mmap_io import ShardMaps, ShardSpec, ShardedColumn
from repro.errors import EstimatorError
from repro.estimators.statistics import harmonic_kernel
from repro.graph import gnp_random_graph
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(90, 0.06, seed=9, directed=True).to_csr()


def _build(graph, flavor):
    return AdsIndex.build(graph, 6, family=HashFamily(17), flavor=flavor)


def _saved(index, tmp_path, layout):
    if layout == "single":
        path = tmp_path / "index.adsidx"
        index.save(path)
    else:
        path = tmp_path / "layout"
        index.save(path, shards=4)
    return path


def _assert_queries_identical(mmapped, eager):
    beta = lambda u: 1.0 if u % 2 == 0 else 0.0  # noqa: E731
    for d in (0.0, 1.0, 2.0, math.inf):
        assert mmapped.cardinality_at(d) == eager.cardinality_at(d)
    assert mmapped.reachable_counts() == eager.reachable_counts()
    assert (
        mmapped.neighborhood_function() == eager.neighborhood_function()
    )
    assert mmapped.closeness_centrality() == eager.closeness_centrality()
    assert mmapped.closeness_centrality(
        classic=True
    ) == eager.closeness_centrality(classic=True)
    assert mmapped.closeness_centrality(
        alpha=harmonic_kernel()
    ) == eager.closeness_centrality(alpha=harmonic_kernel())
    assert mmapped.closeness_centrality(
        beta=beta
    ) == eager.closeness_centrality(beta=beta)
    assert mmapped.top_central(7) == eager.top_central(7)
    assert mmapped.top_central(
        7, largest=False
    ) == eager.top_central(7, largest=False)
    for label in (0, 13, 89):
        assert mmapped.node_cardinality_at(
            label, 2.0
        ) == eager.node_cardinality_at(label, 2.0)
        assert mmapped.node_neighborhood_function(
            label
        ) == eager.node_neighborhood_function(label)
        assert mmapped.node_closeness_centrality(
            label, classic=True
        ) == eager.node_closeness_centrality(label, classic=True)
        assert mmapped[label].entries == eager[label].entries


class TestEquivalence:
    @pytest.mark.parametrize("flavor", FLAVORS)
    @pytest.mark.parametrize("layout", ("single", "sharded"))
    def test_every_query_bit_identical(
        self, graph, tmp_path, flavor, layout
    ):
        index = _build(graph, flavor)
        path = _saved(index, tmp_path, layout)
        eager = AdsIndex.load(path)
        mmapped = AdsIndex.load(path, mmap=True)
        assert mmapped.mmap_backed and not eager.mmap_backed
        assert mmapped.nodes() == eager.nodes()
        assert mmapped.num_entries == eager.num_entries
        _assert_queries_identical(mmapped, eager)

    @pytest.mark.parametrize("layout", ("single", "sharded"))
    def test_columns_byte_identical(self, graph, tmp_path, layout):
        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, layout)
        mmapped = AdsIndex.load(path, mmap=True)
        for name in ("_node", "_dist", "_rank", "_tiebreak", "_aux",
                     "_hip"):
            assert getattr(mmapped, name).tobytes() == getattr(
                index, name
            ).tobytes()
        assert list(mmapped._offsets) == list(index._offsets)

    def test_resave_from_mmap_load_roundtrips(self, graph, tmp_path):
        """Saving a lazily loaded index (including re-sharding, which
        slices columns across shard boundaries) reproduces the data."""
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        for target, shards in (("again.adsidx", None), ("relayout", 2)):
            destination = tmp_path / target
            mmapped.save(destination, shards=shards)
            reloaded = AdsIndex.load(destination)
            assert reloaded.cardinality_at(2.0) == index.cardinality_at(2.0)
            assert reloaded.num_entries == index.num_entries


class TestLaziness:
    def test_sharded_load_maps_nothing(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        assert mmapped.mapped_shards == 0

    def test_single_node_query_maps_one_shard(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        mmapped.node_cardinality_at(0, 2.0)
        assert mmapped.mapped_shards == 1

    def test_whole_graph_query_maps_all_shards(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        mmapped.neighborhood_function()
        assert mmapped.mapped_shards == 4

    def test_cum_hip_computed_once_under_concurrency(
        self, graph, tmp_path
    ):
        import threading

        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, "single")
        mmapped = AdsIndex.load(path, mmap=True)
        calls = []
        original = mmapped._compute_cum_hip

        def counting():
            calls.append(1)
            return original()

        mmapped._compute_cum_hip = counting
        barrier = threading.Barrier(4)
        expected = index.cardinality_at(2.0)
        results = []

        def worker():
            barrier.wait()
            results.append(mmapped.cardinality_at(2.0))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert results == [expected] * 4
        assert len(calls) == 1  # the O(entries) pass ran exactly once

    def test_cum_hip_deferred_until_batch_query(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, "single")
        mmapped = AdsIndex.load(path, mmap=True)
        assert mmapped._cum_cache is None
        mmapped.node_cardinality_at(3, 2.0)  # local sum, still deferred
        assert mmapped._cum_cache is None
        mmapped.cardinality_at(2.0)
        assert mmapped._cum_cache is not None


class TestFailureModes:
    def test_truncated_single_file(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, "single")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(EstimatorError, match="truncated"):
            AdsIndex.load(path, mmap=True)

    def test_truncated_shard_file(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        shard = sorted(layout.glob("shard-*.adsshd"))[1]
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) - 64])
        with pytest.raises(EstimatorError, match="truncated"):
            AdsIndex.load(layout, mmap=True)

    def test_shard_vanishing_after_load_is_an_estimator_error(
        self, graph, tmp_path
    ):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        for shard in layout.glob("shard-*.adsshd"):
            os.unlink(shard)
        with pytest.raises(EstimatorError, match="vanished"):
            mmapped.neighborhood_function()

    def test_overwriting_the_mapped_single_file_is_refused(
        self, graph, tmp_path
    ):
        # Truncating a file whose bytes are mmap-ed would SIGBUS the
        # interpreter on the next column read; the guard must turn that
        # into an EstimatorError before any byte is written.
        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, "single")
        mmapped = AdsIndex.load(path, mmap=True)
        with pytest.raises(EstimatorError, match="memory-mapped"):
            mmapped.save(path)
        assert AdsIndex.load(path).num_entries == index.num_entries

    def test_write_shard_into_the_mapped_layout_is_refused(
        self, graph, tmp_path
    ):
        index = _build(graph, "bottomk")
        layout = _saved(index, tmp_path, "sharded")
        mmapped = AdsIndex.load(layout, mmap=True)
        mmapped.node_cardinality_at(0, 2.0)  # shard 0 is live-mapped
        with pytest.raises(EstimatorError, match="memory-mapped"):
            mmapped.write_shard(layout, 0)
        with pytest.raises(EstimatorError, match="memory-mapped"):
            mmapped.save(layout, shards=4)
        # an eagerly loaded copy may refresh the layout as before
        AdsIndex.load(layout).write_shard(layout, 0)

    def test_eager_load_unaffected_by_default(self, graph, tmp_path):
        index = _build(graph, "bottomk")
        path = _saved(index, tmp_path, "single")
        loaded = AdsIndex.load(path)
        assert loaded._cum_cache is not None  # eager mode validated fully


class TestShardedColumn:
    def _column(self, tmp_path, chunks):
        from array import array

        specs = []
        base = 0
        for i, chunk in enumerate(chunks):
            path = tmp_path / f"chunk-{i}.bin"
            path.write_bytes(array("q", chunk).tobytes())
            specs.append(ShardSpec(path, 0, len(chunk), base))
            base += len(chunk)
        maps = ShardMaps(specs, ("q",))
        return ShardedColumn(maps, 0, "q")

    def test_indexing_and_iteration(self, tmp_path):
        column = self._column(tmp_path, [[1, 2, 3], [4, 5], [6]])
        assert len(column) == 6
        assert [column[i] for i in range(6)] == [1, 2, 3, 4, 5, 6]
        assert column[-1] == 6
        assert list(column) == [1, 2, 3, 4, 5, 6]
        with pytest.raises(IndexError):
            column[6]

    def test_in_shard_slice_is_zero_copy_view(self, tmp_path):
        column = self._column(tmp_path, [[1, 2, 3], [4, 5], [6]])
        view = column[3:5]
        assert isinstance(view, memoryview)
        assert list(view) == [4, 5]

    def test_cross_shard_slice_gathers(self, tmp_path):
        from array import array

        column = self._column(tmp_path, [[1, 2, 3], [4, 5], [6]])
        assert list(column[1:6]) == [2, 3, 4, 5, 6]
        assert list(column[0:0]) == []
        assert column.tobytes() == array("q", [1, 2, 3, 4, 5, 6]).tobytes()
