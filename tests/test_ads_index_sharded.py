"""AdsIndex persistence edge cases: sharded layouts and odd inputs.

Covers the satellite checklist: empty index, single node, mixed int/str
labels, the sharded directory layout (round-trips, incremental
``write_shard`` rebuilds, loading via directory or manifest path), and
rejection of corrupted manifests and mismatched shard files.
"""

import json
import math

import pytest

from repro.ads import AdsIndex
from repro.ads.index import MANIFEST_NAME, shard_ranges
from repro.errors import EstimatorError, ParameterError
from repro.graph import Graph, barabasi_albert_graph
from repro.rand.hashing import HashFamily

FAMILY = HashFamily(424_242)


def columns(index):
    return (
        index._offsets, index._node, index._dist, index._rank,
        index._tiebreak, index._aux, index._hip, index._cum_hip,
    )


@pytest.fixture
def index():
    return AdsIndex.build(barabasi_albert_graph(40, 2, seed=6), 3,
                          family=FAMILY)


@pytest.fixture
def layout(index, tmp_path):
    directory = tmp_path / "sharded.adsidx"
    index.save(directory, shards=3)
    return directory


class TestSingleFileEdgeCases:
    def test_empty_index_roundtrip(self, tmp_path):
        index = AdsIndex.build(Graph(), 2, family=FAMILY)
        assert index.num_nodes == 0 and index.num_entries == 0
        path = tmp_path / "empty.adsidx"
        index.save(path)
        loaded = AdsIndex.load(path)
        assert loaded.nodes() == [] and loaded.cardinality_at(1.0) == {}

    def test_single_node_roundtrip(self, tmp_path):
        graph = Graph()
        graph.add_node(7)
        index = AdsIndex.build(graph, 2, family=FAMILY)
        path = tmp_path / "one.adsidx"
        index.save(path)
        loaded = AdsIndex.load(path)
        assert loaded.nodes() == [7]
        assert loaded.node_cardinality_at(7, math.inf) == 1.0

    def test_mixed_int_and_str_labels_roundtrip(self, tmp_path):
        graph = Graph()
        graph.add_edge(1, "a")
        graph.add_edge("a", 2)
        graph.add_edge(2, "b")
        index = AdsIndex.build(graph, 2, family=FAMILY)
        path = tmp_path / "mixed.adsidx"
        index.save(path)
        loaded = AdsIndex.load(path)
        assert loaded.nodes() == index.nodes()  # types preserved, 1 != "1"
        assert columns(loaded) == columns(index)


class TestShardedLayout:
    def test_roundtrip_from_directory_and_manifest(self, index, layout):
        for target in (layout, layout / MANIFEST_NAME):
            loaded = AdsIndex.load(target)
            assert loaded.nodes() == index.nodes()
            assert columns(loaded) == columns(index)
            assert loaded.cardinality_at(2.0) == index.cardinality_at(2.0)

    def test_layout_contents(self, index, layout):
        manifest = json.loads((layout / MANIFEST_NAME).read_text())
        assert manifest["n"] == index.num_nodes
        assert manifest["entries"] == index.num_entries
        assert [s["file"] for s in manifest["shards"]] == [
            f"shard-{i:05d}.adsshd" for i in range(3)
        ]
        assert sum(s["entries"] for s in manifest["shards"]) == (
            index.num_entries
        )
        for shard in manifest["shards"]:
            assert (layout / shard["file"]).is_file()

    def test_empty_and_single_node_sharded(self, tmp_path):
        for name, graph in (("empty", Graph()), ("one", Graph())):
            if name == "one":
                graph.add_node("solo")
            index = AdsIndex.build(graph, 2, family=FAMILY)
            directory = tmp_path / name
            index.save(directory, shards=4)  # more shards than nodes
            loaded = AdsIndex.load(directory)
            assert loaded.nodes() == index.nodes()
            assert columns(loaded) == columns(index)

    def test_write_shard_refreshes_one_file(self, index, layout):
        manifest_before = (layout / MANIFEST_NAME).read_text()
        shard_file = layout / "shard-00001.adsshd"
        shard_file.write_bytes(b"garbage overwriting the shard")
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)
        index.write_shard(layout, 1)  # incremental per-shard rebuild
        assert columns(AdsIndex.load(layout)) == columns(index)
        assert (layout / MANIFEST_NAME).read_text() == manifest_before

    def test_write_shard_rejects_mismatched_index(self, layout):
        other = AdsIndex.build(
            barabasi_albert_graph(40, 2, seed=6), 3, family=HashFamily(1)
        )
        with pytest.raises(EstimatorError):
            other.write_shard(layout, 0)
        different_graph = AdsIndex.build(
            barabasi_albert_graph(30, 2, seed=6), 3, family=FAMILY
        )
        with pytest.raises(EstimatorError):
            different_graph.write_shard(layout, 0)

    def test_write_shard_rejects_bad_shard_index(self, index, layout):
        with pytest.raises(ParameterError):
            index.write_shard(layout, 3)
        with pytest.raises(ParameterError):
            index.write_shard(layout, -1)

    def test_shard_ranges_tile_exactly(self):
        for n in (0, 1, 7, 40):
            for shards in (1, 3, 8):
                ranges = shard_ranges(n, shards)
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                assert all(
                    ranges[i][1] == ranges[i + 1][0]
                    for i in range(len(ranges) - 1)
                )
                sizes = [stop - start for start, stop in ranges]
                assert max(sizes) - min(sizes) <= 1


class TestCorruptedLayoutRejection:
    def _mangle(self, layout, mutate):
        manifest_path = layout / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        mutate(manifest)
        manifest_path.write_text(json.dumps(manifest))

    def test_missing_manifest(self, layout):
        (layout / MANIFEST_NAME).unlink()
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_unparseable_manifest(self, layout):
        (layout / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_wrong_format_tag(self, layout):
        self._mangle(layout, lambda m: m.update(format="something-else"))
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_missing_field(self, layout):
        self._mangle(layout, lambda m: m.pop("labels_digest"))
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_non_integer_entry_counts(self, index, layout):
        self._mangle(
            layout,
            lambda m: m["shards"][0].update(entries=str(m["shards"][0]
                                                       ["entries"])),
        )
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)
        with pytest.raises(EstimatorError):
            index.write_shard(layout, 1)  # same guard on the write path

    def test_non_contiguous_ranges(self, layout):
        def shift(manifest):
            manifest["shards"][1]["start"] += 1

        self._mangle(layout, shift)
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_coverage_short_of_n(self, layout):
        self._mangle(layout, lambda m: m.update(n=m["n"] + 5))
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_path_traversal_in_shard_file(self, layout):
        def traverse(manifest):
            manifest["shards"][0]["file"] = "../outside.adsshd"

        self._mangle(layout, traverse)
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_missing_shard_file(self, layout):
        (layout / "shard-00002.adsshd").unlink()
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_truncated_shard_file(self, layout):
        path = layout / "shard-00000.adsshd"
        path.write_bytes(path.read_bytes()[:-24])
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_foreign_shard_file_rejected(self, index, layout, tmp_path):
        """A shard from a different build (different seed => different
        digest) must not be silently spliced in."""
        other = AdsIndex.build(
            barabasi_albert_graph(40, 2, seed=6), 3, family=HashFamily(9)
        )
        other_dir = tmp_path / "other"
        other.save(other_dir, shards=3)
        (layout / "shard-00001.adsshd").write_bytes(
            (other_dir / "shard-00001.adsshd").read_bytes()
        )
        with pytest.raises(EstimatorError):
            AdsIndex.load(layout)

    def test_single_file_is_not_a_manifest(self, index, tmp_path):
        path = tmp_path / "flat.adsidx"
        index.save(path)
        with pytest.raises(EstimatorError):
            AdsIndex._load_sharded(path)
