"""Sharded parallel builds are bit-identical to serial builds.

The contract of :mod:`repro.ads.parallel` is exact equivalence, not
approximate agreement: shard runs retain a superset of the true sketch
entries (fewer competitors = weaker pruning, exact distances either
way), and the replay merge re-runs the rank-ordered competition on that
superset, reproducing every serial accept/reject decision.  The tests
here assert equality of the *raw columns* (entries, scan order, HIP
weights, prefix sums) across random directed/undirected and
weighted/unweighted graphs for workers in {1, 2, 4}, plus the derived
query results and the legacy ``build_ads_set`` surface.

``workers=1, shards=s`` runs the identical shard/replay pipeline
in-process, which is what the hypothesis sweep drives (no process
startup per example); the multi-process paths are exercised by the
explicit worker matrix.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import AdsIndex, BuildStats, build_ads_set
from repro.ads.csr_cores import build_flat_entries
from repro.ads.parallel import build_flat_entries_sharded, plan_shards
from repro.errors import ParameterError
from repro.graph import (
    Graph,
    barabasi_albert_graph,
    gnp_random_graph,
    random_geometric_graph,
)
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")
FAMILY = HashFamily(20_260_728)


def _directed_weighted_graph(n, seed):
    rng = random.Random(seed)
    graph = Graph(directed=True)
    for i in range(n):
        graph.add_node(i)
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, round(0.5 + rng.random(), 3))
    return graph


GRAPHS = {
    "undirected-unweighted": barabasi_albert_graph(60, 2, seed=3),
    "directed-unweighted": gnp_random_graph(55, 0.07, seed=5, directed=True),
    "undirected-weighted": random_geometric_graph(45, 0.3, seed=7),
    "directed-weighted": _directed_weighted_graph(45, seed=11),
}


def columns(index):
    return (
        index._offsets, index._node, index._dist, index._rank,
        index._tiebreak, index._aux, index._hip, index._cum_hip,
    )


class TestBitIdenticalIndex:
    @pytest.mark.parametrize("graph_kind", sorted(GRAPHS))
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bottomk_all_graph_shapes(self, graph_kind, workers):
        graph = GRAPHS[graph_kind]
        serial = AdsIndex.build(graph, 4, family=FAMILY)
        parallel = AdsIndex.build(
            graph, 4, family=FAMILY, workers=workers,
            shards=4 if workers == 1 else None,
        )
        assert columns(parallel) == columns(serial)

    @pytest.mark.parametrize("flavor", ["kmins", "kpartition"])
    @pytest.mark.parametrize(
        "graph_kind", ["directed-unweighted", "undirected-weighted"]
    )
    @pytest.mark.parametrize("workers", [1, 4])
    def test_other_flavors(self, flavor, graph_kind, workers):
        graph = GRAPHS[graph_kind]
        serial = AdsIndex.build(graph, 3, family=FAMILY, flavor=flavor)
        parallel = AdsIndex.build(
            graph, 3, family=FAMILY, flavor=flavor, workers=workers,
            shards=3 if workers == 1 else None,
        )
        assert columns(parallel) == columns(serial)

    def test_dp_method(self):
        graph = GRAPHS["undirected-unweighted"]
        serial = AdsIndex.build(graph, 3, family=FAMILY, method="dp")
        parallel = AdsIndex.build(
            graph, 3, family=FAMILY, method="dp", workers=2
        )
        assert columns(parallel) == columns(serial)

    def test_queries_agree(self):
        graph = GRAPHS["directed-unweighted"]
        serial = AdsIndex.build(graph, 4, family=FAMILY)
        parallel = AdsIndex.build(graph, 4, family=FAMILY, workers=2)
        assert parallel.cardinality_at(2.0) == serial.cardinality_at(2.0)
        assert (
            parallel.neighborhood_function() == serial.neighborhood_function()
        )
        assert parallel.closeness_centrality(
            classic=True
        ) == serial.closeness_centrality(classic=True)

    def test_more_shards_than_nodes(self):
        graph = barabasi_albert_graph(8, 2, seed=1)
        serial = AdsIndex.build(graph, 2, family=FAMILY)
        parallel = AdsIndex.build(graph, 2, family=FAMILY, workers=2,
                                  shards=50)
        assert columns(parallel) == columns(serial)


class TestShardedFlatEntries:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=4000),
        k=st.integers(min_value=1, max_value=5),
        shards=st.integers(min_value=2, max_value=5),
        flavor=st.sampled_from(FLAVORS),
    )
    def test_random_graphs_inline_pipeline(self, seed, k, shards, flavor):
        graph = gnp_random_graph(
            30, 0.12, seed=seed, directed=seed % 2 == 0
        ).to_csr()
        family = HashFamily(seed)
        serial = build_flat_entries(
            graph, k, family, flavor, "pruned_dijkstra", BuildStats()
        )
        sharded = build_flat_entries_sharded(
            graph, k, family, flavor, "pruned_dijkstra", BuildStats(),
            workers=1, shards=shards,
        )
        assert sharded == serial

    def test_stats_count_shard_work(self):
        graph = GRAPHS["undirected-unweighted"].to_csr()
        serial_stats, shard_stats = BuildStats(), BuildStats()
        serial = build_flat_entries(
            graph, 4, FAMILY, "bottomk", "pruned_dijkstra", serial_stats
        )
        sharded = build_flat_entries_sharded(
            graph, 4, FAMILY, "bottomk", "pruned_dijkstra", shard_stats,
            workers=1, shards=4,
        )
        assert sharded == serial
        # Shard runs prune less, so they do at least the serial work and
        # retain at least the final entry count.
        assert shard_stats.insertions >= serial_stats.insertions
        assert shard_stats.relaxations >= serial_stats.relaxations
        assert sum(len(r) for r in serial) == serial_stats.insertions

    def test_empty_graph(self):
        graph = Graph()
        assert build_flat_entries_sharded(
            graph.to_csr(), 2, FAMILY, "bottomk", "pruned_dijkstra",
            BuildStats(), workers=2,
        ) == []


class TestPlanShards:
    def test_round_robin_over_rank_order(self):
        ranks = [0.9, 0.1, 0.5, 0.3, 0.7]
        shards = plan_shards(range(5), ranks, 2)
        # rank order is 1, 3, 2, 4, 0; dealt alternately.
        assert shards == [[1, 2, 0], [3, 4]]

    def test_partition_is_exact(self):
        ranks = [FAMILY.rank(i, 0) for i in range(40)]
        shards = plan_shards(range(40), ranks, 7)
        flat = sorted(c for shard in shards for c in shard)
        assert flat == list(range(40))

    def test_empty_shards_dropped(self):
        assert plan_shards([3, 1], [0.0, 0.1, 0.2, 0.3], 5) == [[1], [3]]

    def test_rejects_bad_counts(self):
        with pytest.raises(ParameterError):
            plan_shards([0], [0.5], 0)


class TestBuildAdsSetParallel:
    def test_bit_identical_entries(self):
        graph = GRAPHS["undirected-weighted"]
        serial = build_ads_set(graph, 3, family=FAMILY)
        parallel = build_ads_set(graph, 3, family=FAMILY, workers=2)
        assert set(serial) == set(parallel)
        for node, ads in serial.items():
            assert [
                (e.node, e.distance, e.rank, e.tiebreak, e.bucket,
                 e.permutation)
                for e in ads.entries
            ] == [
                (e.node, e.distance, e.rank, e.tiebreak, e.bucket,
                 e.permutation)
                for e in parallel[node].entries
            ]
            assert ads.hip_weights() == parallel[node].hip_weights()

    def test_inline_shards_without_extra_workers(self):
        graph = GRAPHS["directed-unweighted"]
        serial = build_ads_set(graph, 3, family=FAMILY, flavor="kmins")
        sharded = build_ads_set(
            graph, 3, family=FAMILY, flavor="kmins", shards=3
        )
        node = graph.nodes()[0]
        assert [
            (e.node, e.distance) for e in serial[node].entries
        ] == [(e.node, e.distance) for e in sharded[node].entries]

    def test_rejects_non_csr_requests(self):
        graph = GRAPHS["undirected-unweighted"]
        with pytest.raises(ParameterError):
            build_ads_set(graph, 3, family=FAMILY, workers=2,
                          backend="legacy")
        with pytest.raises(ParameterError):
            build_ads_set(graph, 3, family=FAMILY, workers=2,
                          method="local_updates")
        with pytest.raises(ParameterError):
            build_ads_set(
                graph, 3, family=FAMILY, workers=2,
                node_weights=lambda v: 1.0,
            )

    def test_rejects_bad_counts(self):
        graph = GRAPHS["undirected-unweighted"]
        with pytest.raises(ParameterError):
            build_ads_set(graph, 3, family=FAMILY, workers=0)
        with pytest.raises(ParameterError):
            build_ads_set(graph, 3, family=FAMILY, shards=0)
        with pytest.raises(ParameterError):
            AdsIndex.build(graph, 3, family=FAMILY, workers=-1)
        with pytest.raises(ParameterError):
            AdsIndex.build(graph, 3, family=FAMILY, shards=0)
