"""Tests for streaming ADS (Section 3.1)."""

import statistics

import pytest

from repro.ads import FirstOccurrenceStreamADS, RecentOccurrenceStreamADS
from repro.errors import ParameterError
from repro.rand.hashing import HashFamily
from repro.sketches import BottomKSketch
from repro.streams import timestamped, zipf_stream


class TestFirstOccurrence:
    def test_entries_are_sketch_update_history(self, family):
        """The recorded entries must be exactly the elements that modified
        a plain bottom-k sketch fed the same stream."""
        ads = FirstOccurrenceStreamADS(4, family)
        sketch = BottomKSketch(4, family)
        expected = []
        for element, t in timestamped(range(200)):
            if sketch.add(element):
                expected.append(element)
            ads.add(element, t)
        assert [e for e, _, _ in ads.entries] == expected

    def test_repeats_never_insert(self, family):
        ads = FirstOccurrenceStreamADS(4, family)
        stream = zipf_stream(50, 400, seed=2)
        for element, t in timestamped(stream):
            ads.add(element, t)
        elements = [e for e, _, _ in ads.entries]
        assert len(elements) == len(set(elements))

    def test_time_monotonicity_enforced(self, family):
        ads = FirstOccurrenceStreamADS(2, family)
        ads.add("a", 5.0)
        with pytest.raises(ParameterError):
            ads.add("b", 4.0)

    def test_distinct_count_unbiased(self):
        n, runs = 1000, 150
        values = []
        for seed in range(runs):
            ads = FirstOccurrenceStreamADS(12, HashFamily(seed))
            for element, t in timestamped(range(n)):
                ads.add(element, t)
            values.append(ads.distinct_count())
        assert statistics.mean(values) == pytest.approx(n, rel=0.06)

    def test_prefix_counts_respect_time(self, family):
        ads = FirstOccurrenceStreamADS(8, family)
        for element, t in timestamped(range(100)):
            ads.add(element, t)
        # distinct count up to time 9 estimates the 10 earliest elements
        early = ads.distinct_count(up_to_time=9.0)
        total = ads.distinct_count()
        assert early <= total
        assert early == pytest.approx(10, rel=0.8)


class TestRecentOccurrence:
    def test_newest_always_inserted(self, family):
        ads = RecentOccurrenceStreamADS(2, family, horizon=1000.0)
        for element, t in timestamped(range(50)):
            ads.add(element, t)
            assert any(e[1] == element for e in ads.entries)

    def test_reoccurrence_moves_element_forward(self, family):
        ads = RecentOccurrenceStreamADS(4, family, horizon=1000.0)
        ads.add("x", 0.0)
        ads.add("y", 1.0)
        ads.add("x", 2.0)
        entries = {e[1]: e[0] for e in ads.entries}
        assert entries["x"] == 998.0  # horizon - most recent time

    def test_bottomk_rule_holds(self, family):
        """Scanning entries by increasing distance, every entry's rank is
        among the k smallest seen so far (the ADS definition)."""
        k = 3
        ads = RecentOccurrenceStreamADS(k, family, horizon=10_000.0)
        stream = zipf_stream(300, 1500, seed=5)
        for element, t in timestamped(stream):
            ads.add(element, t)
        seen = []
        for distance, element, rank in sorted(ads.entries):
            threshold = sorted(seen)[k - 1] if len(seen) >= k else 1.0
            assert rank < threshold or len(seen) < k
            seen.append(rank)

    def test_horizon_enforced(self, family):
        ads = RecentOccurrenceStreamADS(2, family, horizon=10.0)
        with pytest.raises(ParameterError):
            ads.add("a", 10.0)

    def test_window_count_estimate(self):
        """Count of distinct elements in a sliding window."""
        runs, n = 120, 400
        values = []
        for seed in range(runs):
            ads = RecentOccurrenceStreamADS(
                16, HashFamily(seed), horizon=n + 1.0
            )
            for element, t in timestamped(range(n)):  # all distinct
                ads.add(element, t)
            # window = last 100 arrivals
            values.append(ads.distinct_count_within(100.0, now=n - 1.0))
        assert statistics.mean(values) == pytest.approx(100, rel=0.12)

    def test_decayed_sum(self, family):
        ads = RecentOccurrenceStreamADS(8, family, horizon=100.0)
        ads.add("a", 99.0)  # age 0 at now=99
        value = ads.decayed_sum(lambda age: 2.0 ** (-age), now=99.0)
        assert value == pytest.approx(1.0)
