"""Tests for the ADS variants: (1+eps)-approximate (Section 3),
no-tie-breaking (Appendix A), and weighted nodes (Section 9)."""

import statistics

import pytest

from repro.ads import build_ads_set
from repro.ads.no_tiebreak import build_no_tiebreak_ads
from repro.graph import (
    complete_graph,
    gnp_random_graph,
    random_geometric_graph,
    star_graph,
)
from repro.graph.properties import neighborhood_cardinality
from repro.graph.traversal import single_source_distances
from repro.rand.hashing import HashFamily


class TestApproximateADS:
    def test_epsilon_zero_is_exact(self, small_weighted, family):
        exact = build_ads_set(
            small_weighted, 3, family=family, method="local_updates"
        )
        explicit = build_ads_set(
            small_weighted, 3, family=family, method="local_updates",
            epsilon=0.0,
        )
        for v in small_weighted.nodes():
            assert [e.node for e in exact[v].entries] == [
                e.node for e in explicit[v].entries
            ]

    def test_approximate_is_subset_with_guarantee(self, family):
        """(1+eps)-ADS property: an excluded node must be beaten by k
        smaller-rank nodes within (1+eps) of its distance (see the
        local_updates module docstring for why the provable guarantee
        quantifies over nodes rather than sketch entries)."""
        graph = random_geometric_graph(60, 0.3, seed=6)
        k, eps = 3, 0.25
        approx = build_ads_set(
            graph, k, family=family, method="local_updates", epsilon=eps
        )
        exact = build_ads_set(graph, k, family=family)
        for v in list(graph.nodes())[:20]:
            approx_nodes = {e.node for e in approx[v].entries}
            exact_nodes = {e.node for e in exact[v].entries}
            assert approx_nodes <= exact_nodes
            # guarantee for excluded nodes, against all nodes of the ball
            dist = single_source_distances(graph, v)
            for u, d_uv in dist.items():
                if u in approx_nodes:
                    continue
                competitors = sorted(
                    family.rank(x, 0)
                    for x, d_xv in dist.items()
                    if d_xv <= (1.0 + eps) * d_uv and x != u
                )
                threshold = (
                    competitors[k - 1] if len(competitors) >= k else 1.0
                )
                assert family.rank(u, 0) >= threshold

    def test_fewer_updates_than_exact(self, family):
        from repro.ads import BuildStats

        graph = random_geometric_graph(70, 0.3, seed=8)
        stats_exact = BuildStats()
        stats_approx = BuildStats()
        build_ads_set(
            graph, 3, family=family, method="local_updates",
            stats=stats_exact,
        )
        build_ads_set(
            graph, 3, family=family, method="local_updates", epsilon=0.5,
            stats=stats_approx,
        )
        assert stats_approx.insertions <= stats_exact.insertions


class TestNoTiebreakADS:
    def test_at_most_k_entries_per_distance(self, family):
        graph = star_graph(60)  # all leaves at the same distance
        k = 4
        ads_set = build_no_tiebreak_ads(graph, k, family)
        for v, ads in ads_set.items():
            by_distance = {}
            for node, d, rank in ads.entries:
                by_distance.setdefault(d, []).append(rank)
            for d, ranks in by_distance.items():
                assert len(ranks) <= k

    def test_smaller_than_tiebroken_ads(self, family):
        graph = complete_graph(50)  # extreme tie density
        k = 4
        modified = build_no_tiebreak_ads(graph, k, family)
        strict = build_ads_set(graph, k, family=family)
        for v in graph.nodes():
            assert len(modified[v]) <= len(strict[v])
            assert len(modified[v]) <= 2 * k  # <= k per distance class here

    def test_kth_rank_entry_gets_zero_weight(self, family):
        graph = star_graph(40)
        k = 3
        ads_set = build_no_tiebreak_ads(graph, k, family)
        center = ads_set[0]
        weights = center.hip_weights()
        assert any(w == 0.0 for w in weights)  # the k-th rank holder
        assert all(w >= 0.0 for w in weights)

    def test_cardinality_unbiased(self):
        graph = star_graph(200)
        k = 8
        estimates = []
        for seed in range(120):
            ads_set = build_no_tiebreak_ads(graph, k, HashFamily(seed))
            estimates.append(ads_set[0].cardinality_at(1.0))
        true = 200  # center + 199 leaves at distance 1... (center at 0)
        assert statistics.mean(estimates) == pytest.approx(true, rel=0.08)


class TestWeightedNodes:
    def test_weighted_cardinality_unbiased(self):
        """Section 9: estimate sum of beta(j) over a neighborhood."""
        graph = gnp_random_graph(120, 0.05, seed=12)
        beta = lambda v: 1.0 + (v % 5)  # weights 1..5
        v0 = 0
        dist = single_source_distances(graph, v0)
        true = sum(beta(u) for u, d in dist.items() if d <= 2.0)
        estimates = []
        for seed in range(60):
            ads_set = build_ads_set(
                graph, 8, family=HashFamily(seed), node_weights=beta
            )
            estimates.append(ads_set[v0].weighted_cardinality_at(2.0))
        assert statistics.mean(estimates) == pytest.approx(true, rel=0.12)

    def test_heavy_nodes_sampled_more(self):
        graph = star_graph(400)
        heavy = {1, 2, 3}
        beta = lambda v: 100.0 if v in heavy else 1.0
        hits = 0
        for seed in range(30):
            ads_set = build_ads_set(
                graph, 4, family=HashFamily(seed), node_weights=beta
            )
            members = {e.node for e in ads_set[0].entries}
            hits += len(heavy & members)
        # heavy nodes should almost always be present
        assert hits > 60  # out of 90 possible

    def test_presence_weights_unbiased(self):
        """hip_weights are presence estimates: each reachable node's
        weight has expectation 1, so the sum estimates cardinality."""
        graph = gnp_random_graph(100, 0.06, seed=4)
        beta = lambda v: 1.0 + (v % 3)
        v0 = 0
        true = neighborhood_cardinality(graph, v0, 2.0)
        estimates = []
        for seed in range(60):
            ads_set = build_ads_set(
                graph, 8, family=HashFamily(seed), node_weights=beta
            )
            estimates.append(ads_set[v0].cardinality_at(2.0))
        assert statistics.mean(estimates) == pytest.approx(true, rel=0.12)

    def test_rejects_non_bottomk_flavor(self, small_digraph, family):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            build_ads_set(
                small_digraph, 4, family=family, flavor="kmins",
                node_weights=lambda v: 1.0,
            )
